#!/usr/bin/env python
"""Planning under sub-discipline requirements (the Univ-2 scenario).

The Stanford-like M.S. DS program requires a 15-course, 45-unit plan
with per-bucket unit minima across six sub-disciplines (math/stat
foundations, experimentation, scientific computing, applied ML,
practical component, electives) — the paper's hardest hard-constraint
set.  The script trains RL-Planner with Table III's six category
weights, prints the plan with its bucket accounting, and shows the
learning curve converging.

Run:  python examples/degree_requirements.py
"""

from collections import OrderedDict

from repro import RLPlanner
from repro.analysis import render_learning_curve, summarize_learning
from repro.datasets import load_univ2_ds


def main() -> None:
    dataset = load_univ2_ds(seed=0)
    minima = dataset.task.hard.category_credit_map
    print(f"{dataset.name}: {len(dataset.catalog)} courses across "
          f"{len(dataset.catalog.categories())} sub-disciplines")
    print("Required units per bucket:")
    for category, units in sorted(minima.items()):
        print(f"  {category:<24} >= {units:g}")

    planner = RLPlanner(
        dataset.catalog, dataset.task, dataset.default_config,
        mode=dataset.mode,
    )
    result = planner.fit(start_item_ids=[dataset.default_start])

    summary = summarize_learning(result)
    print(f"\nLearning: {result.episodes} episodes, "
          f"mean reward {result.mean_episode_reward:.2f}, "
          f"plateau at episode "
          f"{summary.converged_at if summary.converged else 'n/a'}")
    print(render_learning_curve(result.reward_trace()))

    plan, score = planner.recommend_scored(dataset.default_start)
    print(f"\nRecommended 15-course plan "
          f"(score {score.value:.2f} / 15, "
          f"{score.report.describe()}):")
    earned = OrderedDict((c, 0.0) for c in sorted(minima))
    for i, course in enumerate(plan, 1):
        earned[course.category] = earned.get(course.category, 0.0) \
            + course.credits
        print(f"  {i:>2}. {course.item_id:<10} "
              f"{course.item_type.value:<9} {course.category}")

    print("\nBucket accounting:")
    for category, units in earned.items():
        need = minima.get(category, 0.0)
        status = "OK" if units >= need else "SHORT"
        print(f"  {category:<24} {units:>4g} / {need:g}  {status}")

    gold = planner.score(dataset.gold_plan)
    print(f"\nGold standard score: {gold.value:.2f} / 15")


if __name__ == "__main__":
    main()
