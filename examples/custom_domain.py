#!/usr/bin/env python
"""Bring your own domain: plan a personal fitness program with TPP.

The paper's framework is domain-agnostic: anything expressible as items
with types / costs / antecedents / topic vectors plus hard and soft
constraints can be planned.  This example builds a small *workout
program* domain from scratch — sessions are items, "foundation"
sessions are primary, recovery ordering is an antecedent, muscle groups
are topics — and runs the full RL-Planner pipeline on it.

Run:  python examples/custom_domain.py
"""

from repro import (
    Catalog,
    HardConstraints,
    InterleavingTemplate,
    Item,
    ItemType,
    PlannerConfig,
    Prerequisites,
    RLPlanner,
    SoftConstraints,
    TaskSpec,
)


def build_catalog() -> Catalog:
    """Twelve workout sessions with antecedents and muscle-group topics."""
    def session(sid, name, kind, hours, topics, prereq=None):
        return Item(
            item_id=sid,
            name=name,
            item_type=kind,
            credits=hours,
            prerequisites=prereq or Prerequisites.none(),
            topics=frozenset(topics),
        )

    P, S = ItemType.PRIMARY, ItemType.SECONDARY
    return Catalog(
        [
            session("w01", "Mobility Basics", P, 1.0,
                    {"mobility", "core"}),
            session("w02", "Squat Foundations", P, 1.5,
                    {"legs", "strength"}),
            session("w03", "Hinge Foundations", P, 1.5,
                    {"back", "strength"},
                    Prerequisites.any_of(["w01"])),
            session("w04", "Press Foundations", P, 1.0,
                    {"shoulders", "strength"}),
            session("w05", "Zone-2 Ride", S, 1.5, {"endurance", "legs"}),
            session("w06", "Intervals", S, 1.0,
                    {"endurance", "conditioning"},
                    Prerequisites.any_of(["w05"])),
            session("w07", "Yoga Flow", S, 1.0, {"mobility", "recovery"}),
            session("w08", "Pull Day", S, 1.0, {"back", "arms"},
                    Prerequisites.any_of(["w03"])),
            session("w09", "Core Circuit", S, 0.5, {"core",
                                                    "conditioning"}),
            session("w10", "Sprint Work", S, 0.5,
                    {"speed", "legs"},
                    Prerequisites.all_of(["w02"])),
            session("w11", "Swim Technique", S, 1.0,
                    {"endurance", "shoulders"}),
            session("w12", "Deload Walk", S, 0.5, {"recovery"}),
        ],
        name="12-session workout pool",
    )


def main() -> None:
    catalog = build_catalog()
    # A week of training: 3 foundation (primary) + 4 optional sessions,
    # at least 7 hours total, antecedents at least 2 sessions earlier.
    task = TaskSpec(
        hard=HardConstraints.for_courses(
            min_credits=7.0, num_primary=3, num_secondary=4, gap=2
        ),
        soft=SoftConstraints(
            ideal_topics=frozenset(
                {"strength", "endurance", "mobility", "core", "legs",
                 "back", "recovery"}
            ),
            template=InterleavingTemplate.from_labels(
                [
                    ["P", "S", "P", "S", "S", "P", "S"],
                    ["P", "P", "S", "S", "P", "S", "S"],
                ]
            ),
        ),
        name="weekly program",
    )

    config = PlannerConfig(
        episodes=400, coverage_threshold=1.0, seed=0
    )
    planner = RLPlanner(catalog, task, config)
    result = planner.fit(start_item_ids=["w01"])
    print(f"Trained in {result.elapsed_seconds:.2f}s")

    plan, score = planner.recommend_scored("w01")
    print("\nWeekly program:")
    for i, session in enumerate(plan, 1):
        print(
            f"  day slot {i}: {session.name:<20} "
            f"({session.item_type.value}, {session.credits:g}h, "
            f"{'/'.join(sorted(session.topics))})"
        )
    print(f"\ntotal hours : {plan.total_credits:g}")
    print(f"score       : {score.value:.2f} / "
          f"{planner.scorer.gold_reference_score():.0f}")
    print(f"constraints : {score.report.describe()}")
    print(f"muscle-group coverage: {score.topic_coverage:.0%}")


if __name__ == "__main__":
    main()
