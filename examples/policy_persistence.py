#!/usr/bin/env python
"""Train once, serve forever: persisting and reusing a learned policy.

The deployment pattern the paper motivates ("can therefore make
interactive recommendations"): learning runs offline, the Q-table is
saved as JSON, and a serving process answers per-student requests in
milliseconds from the stored policy — including requests with
different starting courses, without retraining.

Run:  python examples/policy_persistence.py
"""

import tempfile
import time
from pathlib import Path

from repro import RLPlanner
from repro.datasets import load_univ1_dsct


def main() -> None:
    dataset = load_univ1_dsct(seed=0, with_gold=False)

    # ------------------------------------------------------------------
    # Offline: train and save.
    # ------------------------------------------------------------------
    trainer = RLPlanner(
        dataset.catalog, dataset.task, dataset.default_config,
        mode=dataset.mode,
    )
    t0 = time.perf_counter()
    trainer.fit(start_item_ids=[dataset.default_start])
    train_seconds = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        policy_path = Path(tmp) / "dsct_policy.json"
        trainer.save_policy(policy_path)
        size_kb = policy_path.stat().st_size / 1024
        print(f"trained in {train_seconds:.2f}s, policy saved "
              f"({size_kb:.1f} KiB)")

        # --------------------------------------------------------------
        # Online: a fresh process loads the policy and serves requests.
        # --------------------------------------------------------------
        server = RLPlanner(
            dataset.catalog, dataset.task, dataset.default_config,
            mode=dataset.mode,
        )
        server.load_policy(policy_path)

        starts = [
            item.item_id
            for item in dataset.catalog.primaries()
            if item.prerequisites.is_empty
        ][:4]
        print(f"\nserving {len(starts)} students "
              f"(different starting courses):")
        for start in starts:
            t0 = time.perf_counter()
            plan, score = server.recommend_scored(start)
            millis = (time.perf_counter() - t0) * 1000
            print(f"  start {start:<10} score {score.value:>5.2f}  "
                  f"valid={score.is_valid}  {millis:6.1f} ms")

        best_plan, best_score = server.recommend_best(starts)
        print(f"\nbest plan over all starts "
              f"(score {best_score.value:.2f}):")
        print(f"  {best_plan.describe()}")


if __name__ == "__main__":
    main()
