#!/usr/bin/env python
"""Trip planning: a six-hour day in Paris (Example 2 at scale).

A first-time visitor has six hours, wants two must-see POIs plus three
optional ones, refuses two consecutive stops of the same theme, and
will not walk more than 5 km in total.  The script trains RL-Planner on
the synthetic Paris dataset, prints the itinerary with visit times,
leg distances, and themes, and contrasts it with the travel-agent gold
standard — then replans under a tighter afternoon (4 hours, 3 km).

Run:  python examples/trip_planning.py
"""

from repro import RLPlanner
from repro.core.scoring import mean_popularity
from repro.core.validation import haversine_km
from repro.datasets import load_paris
from repro.domains.trips import (
    PARIS,
    build_trip_task,
    gold_trip_plan,
    optimize_route,
)


def describe_itinerary(plan, task) -> None:
    total_distance = 0.0
    previous = None
    for poi in plan:
        leg = ""
        if previous is not None:
            km = haversine_km(
                float(previous.meta("lat")), float(previous.meta("lon")),
                float(poi.meta("lat")), float(poi.meta("lon")),
            )
            total_distance += km
            leg = f"  ({km:.2f} km walk)"
        themes = "/".join(sorted(poi.topics))
        print(
            f"  {poi.name:<28} {poi.item_type.value:<9} "
            f"{poi.credits:.1f}h  pop {float(poi.meta('popularity')):.1f} "
            f" [{themes}]{leg}"
        )
        previous = poi
    print(
        f"  total: {plan.total_credits:.1f}h of "
        f"{task.hard.min_credits:g}h budget, "
        f"{total_distance:.2f} km of {task.hard.max_distance:g} km, "
        f"mean popularity {mean_popularity(plan):.2f}"
    )


def main() -> None:
    dataset = load_paris(seed=0)
    print(
        f"{dataset.name}: {len(dataset.catalog)} POIs, "
        f"{dataset.catalog.num_topics} themes, "
        f"{len(dataset.itineraries)} historical itineraries"
    )

    planner = RLPlanner(
        dataset.catalog, dataset.task, dataset.default_config,
        mode=dataset.mode,
    )
    planner.fit(start_item_ids=[dataset.default_start])
    plan, score = planner.recommend_scored(dataset.default_start)

    print(f"\nRL-Planner itinerary (score {score.value:.2f}, "
          f"{score.report.describe()}):")
    describe_itinerary(plan, dataset.task)

    optimized, before, after = optimize_route(plan, dataset.task)
    if after < before - 1e-6:
        print(f"\nRoute-optimized (same stops, shorter walk: "
              f"{before:.2f} km -> {after:.2f} km):")
        describe_itinerary(optimized, dataset.task)

    print("\nTravel-agent gold standard:")
    describe_itinerary(dataset.gold_plan, dataset.task)

    # ------------------------------------------------------------------
    # Replan for a tight afternoon: 4 hours, 3 km.
    # ------------------------------------------------------------------
    tight_task = build_trip_task(
        PARIS, dataset.catalog, time_budget=4.0, distance_threshold=3.0
    )
    tight = RLPlanner(
        dataset.catalog, tight_task, dataset.default_config,
        mode=dataset.mode,
    )
    tight.fit(start_item_ids=[dataset.default_start])
    tight_plan, tight_score = tight.recommend_scored(dataset.default_start)
    print(f"\nTight afternoon (4h / 3km) itinerary "
          f"(score {tight_score.value:.2f}, "
          f"{tight_score.report.describe()}):")
    describe_itinerary(tight_plan, tight_task)
    if not tight_score.is_valid:
        print(
            "  -> the 4-hour budget cannot fit the full 5-POI template;"
            " an advisor would relax the split or the budget"
            " (see repro.analysis.diagnose)."
        )


if __name__ == "__main__":
    main()
