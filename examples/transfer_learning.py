#!/usr/bin/env python
"""Transfer learning (Section IV-D): reuse a policy across tasks.

Two case studies, matching the paper's Tables V and VII:

1. Course planning — learn on M.S. DS-CT, recommend for M.S. CS (the
   programs share the Table VI course pool, so the Q-table re-keys by
   course id), and vice versa.
2. Trip planning — learn on NYC, recommend for Paris (disjoint POI
   universes: the Q-table re-keys by *theme signature*), and vice versa.

Run:  python examples/transfer_learning.py
"""

from repro import RLPlanner
from repro.datasets import load_nyc, load_paris, load_univ1_cs, load_univ1_dsct


def transfer_case(source, target, strategy: str) -> None:
    print(f"\n=== learn on {source.name}  ->  apply to {target.name} ===")
    planner = RLPlanner(
        source.catalog, source.task, source.default_config,
        mode=source.mode,
    )
    planner.fit(start_item_ids=[source.default_start])

    transferred, result = planner.transfer_to(
        target.catalog, target.task, strategy=strategy,
        config=target.default_config,
    )
    report = result.report
    print(
        f"Q entries transferred: {report.entries_transferred} of "
        f"{report.entries_total} ({report.entry_coverage:.0%}); "
        f"{report.matched_items} target items touched"
    )

    plan, score = transferred.recommend_scored(target.default_start)
    verdict = "Good" if score.is_valid else "Bad"
    print(f"{verdict}: {plan.describe()}")
    print(f"score {score.value:.2f}  ({score.report.describe()})")

    # Reference: training directly on the target from scratch.
    direct = RLPlanner(
        target.catalog, target.task, target.default_config,
        mode=target.mode,
    )
    direct.fit(start_item_ids=[target.default_start])
    _, direct_score = direct.recommend_scored(target.default_start)
    print(f"(direct training on the target scores "
          f"{direct_score.value:.2f})")


def main() -> None:
    dsct = load_univ1_dsct(seed=0, with_gold=False)
    cs = load_univ1_cs(seed=0, with_gold=False)
    transfer_case(dsct, cs, strategy="id")
    transfer_case(cs, dsct, strategy="id")

    nyc = load_nyc(seed=0, with_gold=False)
    paris = load_paris(seed=0, with_gold=False)
    transfer_case(nyc, paris, strategy="theme")
    transfer_case(paris, nyc, strategy="theme")


if __name__ == "__main__":
    main()
