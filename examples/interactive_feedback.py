#!/usr/bin/env python
"""Interactive feedback loop (Section VI future work, implemented).

A student reviews each proposed course plan and reacts — "not that
course", a 1-5 star rating, or an uncertain probability-weighted
opinion.  The session folds every signal into per-item preferences,
adjusts the Equation-2 reward, and replans.  Watch disliked courses
vanish and endorsed ones persist across rounds.

Run:  python examples/interactive_feedback.py
"""

from repro.datasets import load_univ1_dsct
from repro.feedback import Feedback, InteractiveSession


def show_round(round_, note=""):
    print(f"\n--- round {round_.round_index} {note}")
    print(f"plan : {round_.plan.describe()}")
    print(f"score: {round_.score.value:.2f} "
          f"({round_.score.report.describe()})")


def main() -> None:
    dataset = load_univ1_dsct(seed=0, with_gold=False)
    session = InteractiveSession(
        dataset.catalog,
        dataset.task,
        dataset.default_config.replace(episodes=300),
        mode=dataset.mode,
        replan_episodes=150,
    )

    first = session.propose(dataset.default_start)
    show_round(first, "(no feedback yet)")

    # The student reacts to the first proposal: hates the 2nd course,
    # loves the 3rd, is lukewarm-uncertain about the 4th.
    ids = first.plan.item_ids
    session.give_feedback(
        [
            Feedback.binary(ids[1], useful=False),
            Feedback.rating(ids[2], 5),
            Feedback.distribution(
                ids[3], {-1.0: 0.4, 0.0: 0.2, 1.0: 0.4}
            ),
        ]
    )
    print(f"\nfeedback -> {session.preference_summary()}")

    second = session.propose(dataset.default_start)
    show_round(second, "(after feedback)")
    if ids[1] not in second.plan.item_ids:
        print(f"note: rejected course {ids[1]} is gone.")
    if ids[2] in second.plan.item_ids:
        print(f"note: endorsed course {ids[2]} was kept.")

    # One more round of pushback: now the student also drops the
    # previously-uncertain course.
    session.give_feedback([Feedback.rating(ids[3], 1)])
    third = session.propose(dataset.default_start)
    show_round(third, "(after second feedback)")
    print(f"\nfinal preferences: {session.preference_summary()}")


if __name__ == "__main__":
    main()
