#!/usr/bin/env python
"""Group trip planning: one Paris itinerary for three travelers.

Ana wants museums and galleries, Bo wants food and riverside walks,
Cy (whose vote counts double — they organized the trip) wants
architecture and gardens.  The script compares the aggregation
strategies (union / intersection / majority / weighted), reports each
member's satisfaction with every candidate itinerary, and picks the
fairest one; it finishes with an infeasibility diagnosis of an
over-tight variant of the same trip.

Run:  python examples/group_trip.py
"""

from repro.analysis import diagnose, render_table
from repro.core.env import DomainMode
from repro.datasets import load_paris
from repro.domains.trips import PARIS, build_trip_task
from repro.group import AggregationStrategy, GroupMember, GroupPlanner


def main() -> None:
    dataset = load_paris(seed=0, with_gold=False)
    themes = set(dataset.catalog.topic_vocabulary)

    members = [
        GroupMember("ana", frozenset({"museum", "gallery"}) & themes),
        GroupMember("bo", frozenset({"restaurant", "cafe", "river"})
                    & themes),
        GroupMember("cy", frozenset({"architecture", "garden",
                                     "cathedral"}) & themes,
                    weight=2.0),
    ]
    for member in members:
        print(f"{member.name} (weight {member.weight:g}): "
              f"{sorted(member.ideal_topics)}")

    planner = GroupPlanner(
        dataset.catalog,
        dataset.task,
        members,
        config=dataset.default_config.replace(episodes=300),
        mode=DomainMode.TRIP,
    )
    outcomes = planner.compare_strategies(dataset.default_start,
                                          episodes=300)

    rows = []
    for strategy, outcome in outcomes.items():
        sat = outcome.satisfaction
        rows.append(
            [
                strategy.value,
                outcome.score.value,
                sat.of("ana"),
                sat.of("bo"),
                sat.of("cy"),
                sat.minimum,
                sat.disagreement,
            ]
        )
    print()
    print(
        render_table(
            ["strategy", "score", "ana", "bo", "cy", "min",
             "disagreement"],
            rows,
            title="Aggregation strategies, member satisfaction in [0,1]",
        )
    )

    fair = planner.best_for_fairness(outcomes)
    print(f"\nFairest itinerary ({fair.strategy.value}):")
    for poi in fair.plan:
        print(f"  {poi.name:<30} [{'/'.join(sorted(poi.topics))}]")

    # ------------------------------------------------------------------
    # What if the group only had 90 minutes?
    # ------------------------------------------------------------------
    tight = build_trip_task(PARIS, dataset.catalog, time_budget=1.5)
    diagnosis = diagnose(dataset.catalog, tight, DomainMode.TRIP)
    print("\nDiagnosing a 1.5-hour version of the same trip:")
    print(diagnosis.describe())


if __name__ == "__main__":
    main()
