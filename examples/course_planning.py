#!/usr/bin/env python
"""Course planning for an M.S. Data Science student (Example 1 at scale).

Reproduces the paper's flagship scenario: a student entering the Univ-1
M.S. DS Computational Track needs a 10-course plan (5 core + 5
electives, 30 credits, prerequisites one semester apart).  The script
trains RL-Planner on the synthetic Univ-1 catalog, compares its plan to
the advisor-grade gold standard and to the EDA and OMEGA baselines, and
shows how a *personalized* ideal-topic set changes the recommendation.

Run:  python examples/course_planning.py
"""

from repro import RLPlanner
from repro.baselines import EDAPlanner, OmegaPlanner
from repro.core.constraints import SoftConstraints, TaskSpec
from repro.datasets import load_univ1_dsct


def show(label: str, plan, score) -> None:
    print(f"\n{label}")
    print(f"  plan : {plan.describe()}")
    print(f"  score: {score.value:.2f}  valid: {score.report.describe()}")


def main() -> None:
    dataset = load_univ1_dsct(seed=0)
    stats = dataset.catalog.stats()
    print(
        f"{dataset.name}: {stats['num_items']} courses, "
        f"{stats['num_topics']} topics, "
        f"{stats['num_with_prerequisites']} with prerequisites"
    )

    planner = RLPlanner(
        dataset.catalog, dataset.task, dataset.default_config,
        mode=dataset.mode,
    )
    planner.fit(start_item_ids=[dataset.default_start])

    plan, score = planner.recommend_scored(dataset.default_start)
    show("RL-Planner", plan, score)

    gold = planner.score(dataset.gold_plan)
    show("Gold standard (advisor oracle)", dataset.gold_plan, gold)

    eda = EDAPlanner(
        dataset.catalog, dataset.task, dataset.default_config, seed=0
    )
    eda_plan = eda.recommend(dataset.default_start)
    show("EDA baseline (greedy next-step)", eda_plan,
         planner.score(eda_plan))

    omega = OmegaPlanner(dataset.catalog, dataset.task, seed=0)
    omega_plan = omega.recommend(dataset.default_start)
    show("OMEGA baseline (adapted)", omega_plan,
         planner.score(omega_plan))

    # ------------------------------------------------------------------
    # Personalization: the student only cares about ML-flavoured topics.
    # ------------------------------------------------------------------
    ml_topics = {
        t for t in dataset.catalog.topic_vocabulary
        if t in {"learning", "clustering", "classification", "mining",
                 "regression", "statistics", "probability", "networks",
                 "optimization", "inference", "data", "algorithms",
                 "structures", "analytics", "systems", "management"}
    }
    personalized_task = TaskSpec(
        hard=dataset.task.hard,
        soft=SoftConstraints(
            ideal_topics=frozenset(ml_topics),
            template=dataset.task.soft.template,
        ),
        name="DS-CT personalized (ML focus)",
    )
    personal = RLPlanner(
        dataset.catalog, personalized_task, dataset.default_config,
        mode=dataset.mode,
    )
    personal.fit(start_item_ids=[dataset.default_start])
    p_plan, p_score = personal.recommend_scored(dataset.default_start)
    show(f"RL-Planner personalized to {len(ml_topics)} ML topics",
         p_plan, p_score)
    print(f"  ML-topic coverage: {p_score.topic_coverage:.0%} "
          f"(generic plan: "
          f"{plan.topic_coverage_of(frozenset(ml_topics)):.0%})")


if __name__ == "__main__":
    main()
