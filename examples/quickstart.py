#!/usr/bin/env python
"""Quickstart: plan the paper's Table II toy curriculum.

Builds the six-course example of the paper (Table II / Example 1),
trains RL-Planner for a couple hundred episodes, and prints the
recommended course sequence with its validation report and score.

Run:  python examples/quickstart.py
"""

from repro import PlannerConfig, RLPlanner
from repro.datasets import load_toy


def main() -> None:
    dataset = load_toy(seed=0, with_gold=True)
    print(f"Catalog: {dataset.catalog.name}")
    for course in dataset.catalog:
        print(
            f"  {course.item_id}  {course.name:<32} "
            f"{course.item_type.value:<9} "
            f"prereq={course.prerequisites.describe()}"
        )

    print("\nTask:")
    print(f"  hard: >= {dataset.task.hard.min_credits:g} credits, "
          f"{dataset.task.hard.num_primary} core + "
          f"{dataset.task.hard.num_secondary} electives, "
          f"gap {dataset.task.hard.gap}")
    print(f"  ideal topics: {sorted(dataset.task.soft.ideal_topics)}")
    print(f"  template IT:  {dataset.task.soft.template.describe()}")

    config = PlannerConfig(episodes=300, coverage_threshold=1.0, seed=0)
    planner = RLPlanner(dataset.catalog, dataset.task, config)
    result = planner.fit(start_item_ids=[dataset.default_start])
    print(f"\nTrained {result.episodes} episodes "
          f"in {result.elapsed_seconds:.2f}s "
          f"(mean episode reward {result.mean_episode_reward:.2f})")

    plan, score = planner.recommend_scored(dataset.default_start)
    print(f"\nRecommended plan: {plan.describe()}")
    print(f"Score: {score.value:.2f} / "
          f"{planner.scorer.gold_reference_score():.0f}   "
          f"(hard constraints: {score.report.describe()})")
    print(f"Ideal-topic coverage: {score.topic_coverage:.0%}")

    if dataset.gold_plan is not None:
        gold = planner.score(dataset.gold_plan)
        print(f"\nGold standard:    {dataset.gold_plan.describe()}")
        print(f"Gold score: {gold.value:.2f}")


if __name__ == "__main__":
    main()
