"""Tables V & VI: transfer learning between M.S. CS and M.S. DS-CT.

A policy learned on one degree program is applied — without retraining —
to the other.  The programs share the Table VI course pool, so the
Q-table re-keys by course id.  The paper reports "good" transferred
sequences (all hard constraints met) alongside occasional "less
effective" ones; the shape under test is that transfer produces a
full-length, mostly-valid plan with substantial Q-mass carried over,
and that it clearly beats an untrained policy.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, run_transfer
from repro.baselines import RandomPlanner
from repro.core.planner import RLPlanner
from repro.core.scoring import PlanScorer
from repro.datasets import load


def _both_directions():
    dsct = load("njit_dsct", seed=0, with_gold=False)
    cs = load("njit_cs", seed=0, with_gold=False)
    return (
        run_transfer(cs, dsct, strategy="id", seed=0),
        run_transfer(dsct, cs, strategy="id", seed=0),
        dsct,
        cs,
    )


@pytest.mark.benchmark(group="table5")
def test_table5_course_transfer(benchmark, record_table):
    to_dsct, to_cs, dsct, cs = benchmark.pedantic(
        _both_directions, rounds=1, iterations=1
    )

    rows = []
    lines = []
    for outcome, target in ((to_dsct, dsct), (to_cs, cs)):
        quality = "Good" if outcome.is_good else "Bad"
        rows.append(
            [
                outcome.source,
                outcome.target,
                quality,
                outcome.score.value,
                f"{outcome.entry_coverage:.0%}",
            ]
        )
        lines.append(
            f"{outcome.source} -> {outcome.target} ({quality}): "
            f"{outcome.plan.describe()}"
        )
    table = render_table(
        ["learnt policy", "applied policy", "outcome", "score",
         "Q coverage"],
        rows,
        title="Table V — course-planning transfer learning",
    )
    record_table(table + "\n\nSequences:\n" + "\n".join(lines))

    for outcome, target in ((to_dsct, dsct), (to_cs, cs)):
        # Full-length sequences with real Q-mass carried over.
        assert len(outcome.plan) == target.task.hard.plan_length
        assert outcome.entry_coverage > 0.1
        # Transfer beats a random policy on the same task.
        scorer = PlanScorer(target.task)
        random_plan = RandomPlanner(
            target.catalog, target.task, seed=0
        ).recommend(target.default_start)
        assert outcome.score.value >= scorer.score(random_plan).value

    # At least one direction yields a fully valid ("good") sequence.
    assert to_dsct.is_good or to_cs.is_good
