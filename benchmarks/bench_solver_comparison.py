"""Solver comparison: the Section III-C design decision, measured.

The paper argues for a policy-iteration-flavoured TD method (SARSA)
over alternatives.  This bench runs SARSA, Q-learning, Expected SARSA,
and first-visit Monte Carlo with identical budgets on the DS-CT dataset
and reports plan quality + validity — establishing that the framework
is healthy under every classic solver and that SARSA is a sound default
(within noise of the other TD methods).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, summarize
from repro.core.planner import RLPlanner
from repro.datasets import load

RUNS = 3
EPISODES = 200
SOLVERS = ("sarsa", "q_learning", "expected_sarsa", "monte_carlo")


def _run_all():
    dataset = load("njit_dsct", seed=0, with_gold=False)
    rows = []
    for solver in SOLVERS:
        scores = []
        valid = 0
        for run in range(RUNS):
            planner = RLPlanner(
                dataset.catalog,
                dataset.task,
                dataset.default_config.replace(seed=run),
                mode=dataset.mode,
                learner=solver,
            )
            planner.fit(
                start_item_ids=[dataset.default_start],
                episodes=EPISODES,
            )
            _, score = planner.recommend_scored(dataset.default_start)
            scores.append(score.value)
            valid += score.is_valid
        summary = summarize(scores)
        rows.append([solver, summary.mean, summary.std,
                     f"{valid / RUNS:.0%}"])
    return rows


@pytest.mark.benchmark(group="solvers")
def test_solver_comparison(benchmark, record_table):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    record_table(
        render_table(
            ["solver", "mean score", "std", "validity"],
            rows,
            title="Solver comparison on Univ-1 DS-CT "
                  f"({RUNS} runs x {EPISODES} episodes)",
        )
    )
    by_solver = {row[0]: row for row in rows}
    # Every solver produces usable plans on the shared substrate.
    for solver in SOLVERS:
        assert by_solver[solver][1] > 0
    # SARSA (the paper's choice) is competitive: within 30% of the best.
    best = max(row[1] for row in rows)
    assert by_solver["sarsa"][1] >= 0.7 * best
