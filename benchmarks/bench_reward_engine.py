"""Micro-benchmark of the batched incremental reward engine.

One behaviour-policy step of Algorithm 1 scores every remaining item
with Equation 2.  The scalar path recomputes similarity and the
feasibility lookahead per candidate — O(|I| * (|I| + k*|IT|)) per step —
while the batched engine (``RewardFunction.reward_batch``) pools the
step-invariant state once and scores all candidates vectorized,
O(|I|) per step.  This bench times both on the same partial plans,
asserts they agree exactly, and records the speedup to
``BENCH_reward_engine.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py

or with custom sizes / output::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py \
        --sizes 50 200 500 --repeats 30 --output BENCH_reward_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import PlannerConfig
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction
from repro.datasets.synthetic import generate_instance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_reward_engine.json"
DEFAULT_SIZES = (50, 200, 500)


def _make_step(num_items: int, seed: int = 0):
    """One mid-episode learning step: a partial plan plus candidates."""
    catalog, task = generate_instance(
        num_items=num_items,
        num_primary_items=max(12, num_items // 4),
        seed=seed,
    )
    reward = RewardFunction(task, PlannerConfig())
    builder = PlanBuilder(catalog)
    # Greedily grow a short prefix so similarity/feasibility state is
    # non-trivial (mirrors the hot loop a few steps into an episode).
    builder.add(catalog.item_at(0))
    for _ in range(3):
        candidates = builder.remaining_items()
        scores = reward.reward_batch(builder, candidates)
        builder.add(candidates[int(np.argmax(scores))])
    return reward, builder, builder.remaining_items()


def _time_call(fn, repeats: int) -> float:
    """Mean wall-clock seconds per call over ``repeats`` calls."""
    repeats = max(1, repeats)
    fn()  # warm caches (catalog columns, similarity trackers, views)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 30,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Time scalar-loop vs batched scoring at each catalog size."""
    results: List[Dict[str, float]] = []
    for num_items in sizes:
        reward, builder, candidates = _make_step(num_items, seed=seed)

        def scalar() -> List[float]:
            return [reward(builder, item) for item in candidates]

        def batched() -> np.ndarray:
            return reward.reward_batch(builder, candidates)

        # The two engines must agree exactly before timing means much.
        np.testing.assert_allclose(
            batched(), np.array(scalar()), atol=1e-12, rtol=0.0
        )

        scalar_s = _time_call(scalar, repeats)
        batch_s = _time_call(batched, repeats)
        results.append(
            {
                "num_items": int(num_items),
                "num_candidates": len(candidates),
                "scalar_step_us": scalar_s * 1e6,
                "batch_step_us": batch_s * 1e6,
                "speedup": scalar_s / batch_s,
            }
        )
    return results


def render(results: Sequence[Dict[str, float]]) -> str:
    """Plain-text table of the measured speedups."""
    lines = [
        "Reward engine: scalar loop vs batched (mean step time)",
        f"{'|I|':>6} {'cands':>6} {'scalar us':>12} "
        f"{'batch us':>12} {'speedup':>9}",
    ]
    for row in results:
        lines.append(
            f"{row['num_items']:>6} {row['num_candidates']:>6} "
            f"{row['scalar_step_us']:>12.1f} {row['batch_step_us']:>12.1f} "
            f"{row['speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="catalog sizes |I| to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed calls per engine per size",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    results = run(sizes=args.sizes, repeats=args.repeats, seed=args.seed)
    print(render(results))
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
