"""Micro-benchmark of the batched incremental reward engine.

One behaviour-policy step of Algorithm 1 scores every remaining item
with Equation 2.  The scalar path recomputes similarity and the
feasibility lookahead per candidate — O(|I| * (|I| + k*|IT|)) per step —
while the batched engine (``RewardFunction.reward_batch``) pools the
step-invariant state once and scores all candidates vectorized,
O(|I|) per step.  This bench times both on the same partial plans,
asserts they agree exactly, and records the speedup to
``BENCH_reward_engine.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py

or with custom sizes / output::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py \
        --sizes 50 200 500 --repeats 30 --output BENCH_reward_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig, RewardWeights
from repro.core.env import TPPEnvironment
from repro.core.items import Item
from repro.core.plan import PlanBuilder
from repro.core.policy import GreedyPolicy
from repro.core.qtable import QTable, SparseQTable
from repro.core.reward import RewardFunction, batch_rewards
from repro.core.sarsa import SarsaLearner
from repro.datasets.synthetic import generate_instance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_reward_engine.json"
DEFAULT_SIZES = (50, 200, 500)
DEFAULT_SCALE_SIZES = (5_000, 20_000, 50_000)


def _make_step(num_items: int, seed: int = 0):
    """One mid-episode learning step: a partial plan plus candidates."""
    catalog, task = generate_instance(
        num_items=num_items,
        num_primary_items=max(12, num_items // 4),
        seed=seed,
    )
    reward = RewardFunction(task, PlannerConfig())
    builder = PlanBuilder(catalog)
    # Greedily grow a short prefix so similarity/feasibility state is
    # non-trivial (mirrors the hot loop a few steps into an episode).
    builder.add(catalog.item_at(0))
    for _ in range(3):
        candidates = builder.remaining_items()
        scores = reward.reward_batch(builder, candidates)
        builder.add(candidates[int(np.argmax(scores))])
    return reward, builder, builder.remaining_items()


def _time_call(fn, repeats: int) -> float:
    """Mean wall-clock seconds per call over ``repeats`` calls."""
    repeats = max(1, repeats)
    fn()  # warm caches (catalog columns, similarity trackers, views)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 30,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Time scalar-loop vs batched scoring at each catalog size."""
    results: List[Dict[str, float]] = []
    for num_items in sizes:
        reward, builder, candidates = _make_step(num_items, seed=seed)

        def scalar() -> List[float]:
            return [reward(builder, item) for item in candidates]

        def batched() -> np.ndarray:
            return reward.reward_batch(builder, candidates)

        # The two engines must agree exactly before timing means much.
        np.testing.assert_allclose(
            batched(), np.array(scalar()), atol=1e-12, rtol=0.0
        )

        scalar_s = _time_call(scalar, repeats)
        batch_s = _time_call(batched, repeats)
        results.append(
            {
                "num_items": int(num_items),
                "num_candidates": len(candidates),
                "scalar_step_us": scalar_s * 1e6,
                "batch_step_us": batch_s * 1e6,
                "speedup": scalar_s / batch_s,
            }
        )
    return results


def obs_overhead(
    num_items: int = 500, repeats: int = 300, seed: int = 0
) -> Dict[str, float]:
    """Span-instrumentation overhead on one batched reward step.

    ``SarsaLearner`` wraps every ``batch_rewards`` call in a recording
    span when observability is enabled, so the per-call overhead is
    exactly one span enter/exit.  Timing "bare step" vs "wrapped step"
    head-to-head cannot resolve a ~1us delta on a ~300us step through
    scheduler noise, so this measures the span cost in its own tight
    loop and asserts span_cost / step_cost < 5% — the same ratio, with
    both terms measured where they are actually measurable.
    """
    reward, builder, candidates = _make_step(num_items, seed=seed)

    def bare() -> np.ndarray:
        return reward.reward_batch(builder, candidates)

    registry = obs.enable()

    def span_only() -> None:
        with registry.span("sarsa.batch_rewards"):
            pass

    try:
        bare_s = min(_time_call(bare, repeats) for _ in range(3))
        span_s = min(
            _time_call(span_only, repeats * 30) for _ in range(3)
        )
    finally:
        obs.disable()

    overhead = span_s / bare_s
    assert overhead < 0.05, (
        "span instrumentation costs more than 5% of a batched reward "
        f"step: {overhead:.2%} ({span_s * 1e6:.2f}us span on a "
        f"{bare_s * 1e6:.1f}us step)"
    )
    return {
        "num_items": int(num_items),
        "bare_step_us": bare_s * 1e6,
        "span_us": span_s * 1e6,
        "overhead_fraction": overhead,
        "overhead_under_5pct": float(overhead < 0.05),
    }


def _assert_pruning_bit_identity(
    catalog, task, top_k: int = 32, steps: int = 3, start: str = "item000"
) -> int:
    """Greedy-rollout check that pruned selection matches the full argmax.

    Walks ``steps`` reward-greedy steps with two environments over the
    same universe — one with ``candidate_top_k`` set, one without — and
    asserts the exact argmax winner *sets* (ids, in order) agree at
    every step.  Returns the number of steps compared.
    """
    env_full = TPPEnvironment(catalog, task, PlannerConfig())
    env_pruned = TPPEnvironment(
        catalog, task, PlannerConfig(candidate_top_k=top_k)
    )
    env_full.reset(start)
    env_pruned.reset(start)
    compared = 0
    for _ in range(steps):
        if env_full.is_done():
            break
        full = env_full.valid_actions()
        pruned = env_pruned.valid_actions()
        if not full:
            assert not pruned
            break
        r_full = batch_rewards(env_full.reward, env_full.builder, full)
        r_pruned = batch_rewards(
            env_pruned.reward, env_pruned.builder, pruned
        )
        winners_full = [
            full[i].item_id
            for i in np.flatnonzero(r_full == r_full.max())
        ]
        winners_pruned = [
            pruned[i].item_id
            for i in np.flatnonzero(r_pruned == r_pruned.max())
        ]
        assert winners_pruned == winners_full, (
            f"pruned argmax diverged at step {compared}: "
            f"{winners_pruned[:3]} vs {winners_full[:3]}"
        )
        chosen = catalog[winners_full[0]]
        env_full.step(chosen)
        env_pruned.step(chosen)
        compared += 1
    return compared


def run_scale(
    sizes: Sequence[int] = DEFAULT_SCALE_SIZES,
    episodes: int = 8,
    episode_batch: int = 8,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Large-catalog training: the sparse backend where dense cannot fit.

    At each |I| the ``auto`` backend (sparse above the threshold) trains
    a SARSA policy end to end and the row records the wall clock, the
    stored-entry count, and the dense-table footprint the run *avoided*
    (``8 * |I|^2`` bytes — 20 GB at 50k, far beyond the worker's RAM).
    Each row also re-asserts in-bench that two-stage candidate pruning
    is bit-identical to the unpruned argmax on that universe.
    """
    rows: List[Dict[str, object]] = []
    for num_items in sizes:
        t0 = time.perf_counter()
        catalog, task = generate_instance(
            num_items=num_items,
            num_primary_items=max(12, num_items // 4),
            seed=seed,
        )
        generate_s = time.perf_counter() - t0
        config = PlannerConfig(
            seed=seed,
            exploration=0.1,
            qtable_backend="auto",
            mask_invalid_actions=False,
        )
        learner = SarsaLearner(
            TPPEnvironment(catalog, task, config), config
        )
        t0 = time.perf_counter()
        result = learner.learn(
            episodes=episodes, episode_batch=episode_batch
        )
        train_s = time.perf_counter() - t0
        table = result.qtable
        assert isinstance(table, SparseQTable), (
            f"auto backend must go sparse at |I|={num_items}"
        )
        pruned_steps = _assert_pruning_bit_identity(catalog, task)
        rows.append(
            {
                "num_items": int(num_items),
                "episodes": int(episodes),
                "episode_batch": int(episode_batch),
                "backend": type(table).__name__,
                "generate_s": generate_s,
                "train_s": train_s,
                "updates": int(table.update_count),
                "nnz": int(table.nnz),
                "dense_bytes_estimate": int(8 * num_items * num_items),
                "pruning_bit_identical_steps": int(pruned_steps),
            }
        )
    return rows


def run_backends(
    num_items: int = 500, episodes: int = 16, seed: int = 0
) -> Dict[str, object]:
    """Dense vs sparse backend head-to-head on one training run.

    Same universe, same seed, same episode schedule; the two backends
    must learn bit-identical entries (asserted) — the row records the
    wall-clock of each plus the sparse occupancy, i.e. what fraction of
    the dense |I|^2 table training actually touched.
    """
    catalog, task = generate_instance(
        num_items=num_items,
        num_primary_items=max(12, num_items // 4),
        seed=seed,
    )
    timings: Dict[str, float] = {}
    entries = {}
    for backend in ("dense", "sparse"):
        config = PlannerConfig(seed=seed, qtable_backend=backend)
        learner = SarsaLearner(
            TPPEnvironment(catalog, task, config), config
        )
        t0 = time.perf_counter()
        result = learner.learn(episodes=episodes)
        timings[backend] = time.perf_counter() - t0
        entries[backend] = result.qtable.to_entries()
        if backend == "sparse":
            nnz = result.qtable.nnz
    assert entries["dense"] == entries["sparse"], (
        "dense and sparse backends diverged on identical training"
    )
    return {
        "num_items": int(num_items),
        "episodes": int(episodes),
        "dense_train_s": timings["dense"],
        "sparse_train_s": timings["sparse"],
        "entries": len(entries["dense"]),
        "nnz": int(nnz),
        "occupancy": len(entries["dense"]) / float(num_items * num_items),
        "bit_identical": True,
    }


def _tie_free_universe(num_items: int, seed: int):
    """A synthetic universe whose Eq. 2 rewards never tie.

    Every item gets its own category with a distinct category weight, so
    ``delta*sim + beta*weight`` is injective over candidates.  With zero
    exploration the behaviour policy then consumes no RNG inside
    episodes, which is the regime where batched and sequential training
    are byte-identical (see ``SarsaLearner._run_episode_batch``).
    """
    base, task = generate_instance(
        num_items=num_items,
        num_primary_items=max(12, num_items // 4),
        seed=seed,
    )
    items = [
        Item(
            item_id=item.item_id,
            name=item.name,
            item_type=item.item_type,
            credits=item.credits,
            prerequisites=item.prerequisites,
            topics=item.topics,
            category=f"cat{rank:05d}",
        )
        for rank, item in enumerate(base)
    ]
    catalog = Catalog(
        items,
        name=f"tie-free-{num_items}",
        topic_vocabulary=base.topic_vocabulary,
    )
    weights = RewardWeights(
        category_weights=tuple(
            (f"cat{rank:05d}", 1.0 + 1e-5 * rank)
            for rank in range(len(items))
        )
    )
    return catalog, task, weights


def run_episode_batch(
    num_items: int = 5_000,
    episodes: int = 32,
    episode_batch: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Vectorized multi-episode training vs the per-episode loop.

    Runs on a tie-free universe with zero exploration, where the
    episode-batched path provably trains the byte-identical table —
    asserted on ``to_entries()`` and on the recommended plan — so the
    measured speedup buys *nothing but* wall clock.  Asserts >= 2x.
    """
    catalog, task, weights = _tie_free_universe(num_items, seed)
    config = PlannerConfig(
        seed=seed,
        exploration=0.0,
        qtable_backend="sparse",
        mask_invalid_actions=False,
        weights=weights,
    )

    def train(batch: int):
        learner = SarsaLearner(
            TPPEnvironment(catalog, task, config), config
        )
        t0 = time.perf_counter()
        result = learner.learn(episodes=episodes, episode_batch=batch)
        return time.perf_counter() - t0, result.qtable

    train(1)  # warm caches (catalog columns, reward views)
    sequential_s, sequential = train(1)
    batched_s, batched = train(episode_batch)
    assert sequential.to_entries() == batched.to_entries(), (
        "episode-batched training diverged from the sequential loop "
        "on a tie-free universe"
    )
    reward = RewardFunction(task, config)
    start = catalog.item_ids[0]
    plans = [
        GreedyPolicy(table, task, reward=reward)
        .recommend(start, require_trained=False)
        .item_ids
        for table in (sequential, batched)
    ]
    assert plans[0] == plans[1], "final recommended plans diverged"
    speedup = sequential_s / batched_s
    assert speedup >= 2.0, (
        f"episode batching must be >= 2x at |I|={num_items}: "
        f"{speedup:.2f}x"
    )
    return {
        "num_items": int(num_items),
        "episodes": int(episodes),
        "episode_batch": int(episode_batch),
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "tables_bit_identical": True,
        "plans_identical": True,
    }


def render_scale(rows: Sequence[Dict[str, object]]) -> str:
    """Plain-text table of the large-catalog training rows."""
    lines = [
        "Sparse-backend training at catalog scale "
        "(dense footprint avoided)",
        f"{'|I|':>7} {'train s':>9} {'nnz':>8} {'dense GB':>9} "
        f"{'prune ok':>9}",
    ]
    for row in rows:
        dense_gb = row["dense_bytes_estimate"] / 1e9
        lines.append(
            f"{row['num_items']:>7} {row['train_s']:>9.2f} "
            f"{row['nnz']:>8} {dense_gb:>9.1f} "
            f"{row['pruning_bit_identical_steps']:>8}ok"
        )
    return "\n".join(lines)


def render(results: Sequence[Dict[str, float]]) -> str:
    """Plain-text table of the measured speedups."""
    lines = [
        "Reward engine: scalar loop vs batched (mean step time)",
        f"{'|I|':>6} {'cands':>6} {'scalar us':>12} "
        f"{'batch us':>12} {'speedup':>9}",
    ]
    for row in results:
        lines.append(
            f"{row['num_items']:>6} {row['num_candidates']:>6} "
            f"{row['scalar_step_us']:>12.1f} {row['batch_step_us']:>12.1f} "
            f"{row['speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="catalog sizes |I| to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed calls per engine per size",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--obs", action="store_true",
        help="also measure span-instrumentation overhead on a batched "
        "step (asserts < 5%%; always at |I|=500 so the step is large "
        "enough for the ratio to mean something)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the large-catalog sections: sparse-backend "
        "training at --scale-sizes (with the in-bench pruning "
        "bit-identity check), the dense-vs-sparse backend "
        "head-to-head, and the episode-batched >= 2x speedup gate",
    )
    parser.add_argument(
        "--scale-sizes", type=int, nargs="+",
        default=list(DEFAULT_SCALE_SIZES),
        help="catalog sizes |I| for the --scale training section",
    )
    args = parser.parse_args(argv)

    results = run(sizes=args.sizes, repeats=args.repeats, seed=args.seed)
    print(render(results))
    payload: Dict[str, object] = {
        "bench": "reward_engine",
        "sizes": results,
    }
    if args.scale:
        scale_rows = run_scale(sizes=args.scale_sizes, seed=args.seed)
        payload["scale"] = scale_rows
        print()
        print(render_scale(scale_rows))
        payload["qtable_backends"] = run_backends(seed=args.seed)
        print(
            "backend head-to-head at |I|="
            f"{payload['qtable_backends']['num_items']}: dense "
            f"{payload['qtable_backends']['dense_train_s']:.2f}s vs "
            f"sparse {payload['qtable_backends']['sparse_train_s']:.2f}s "
            "(bit-identical entries asserted)"
        )
        batch_size = min(args.scale_sizes)
        payload["episode_batch"] = run_episode_batch(
            num_items=batch_size, seed=args.seed
        )
        print(
            f"episode batching at |I|={batch_size}: "
            f"{payload['episode_batch']['speedup']:.2f}x "
            "(>= 2x asserted, byte-identical table and plan)"
        )
    if args.obs:
        payload["obs_overhead"] = obs_overhead(seed=args.seed)
        print(
            "obs span overhead: "
            f"{payload['obs_overhead']['overhead_fraction']:.2%} "
            "(< 5% asserted)"
        )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
