"""Micro-benchmark of the batched incremental reward engine.

One behaviour-policy step of Algorithm 1 scores every remaining item
with Equation 2.  The scalar path recomputes similarity and the
feasibility lookahead per candidate — O(|I| * (|I| + k*|IT|)) per step —
while the batched engine (``RewardFunction.reward_batch``) pools the
step-invariant state once and scores all candidates vectorized,
O(|I|) per step.  This bench times both on the same partial plans,
asserts they agree exactly, and records the speedup to
``BENCH_reward_engine.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py

or with custom sizes / output::

    PYTHONPATH=src python benchmarks/bench_reward_engine.py \
        --sizes 50 200 500 --repeats 30 --output BENCH_reward_engine.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.config import PlannerConfig
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction
from repro.datasets.synthetic import generate_instance

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_reward_engine.json"
DEFAULT_SIZES = (50, 200, 500)


def _make_step(num_items: int, seed: int = 0):
    """One mid-episode learning step: a partial plan plus candidates."""
    catalog, task = generate_instance(
        num_items=num_items,
        num_primary_items=max(12, num_items // 4),
        seed=seed,
    )
    reward = RewardFunction(task, PlannerConfig())
    builder = PlanBuilder(catalog)
    # Greedily grow a short prefix so similarity/feasibility state is
    # non-trivial (mirrors the hot loop a few steps into an episode).
    builder.add(catalog.item_at(0))
    for _ in range(3):
        candidates = builder.remaining_items()
        scores = reward.reward_batch(builder, candidates)
        builder.add(candidates[int(np.argmax(scores))])
    return reward, builder, builder.remaining_items()


def _time_call(fn, repeats: int) -> float:
    """Mean wall-clock seconds per call over ``repeats`` calls."""
    repeats = max(1, repeats)
    fn()  # warm caches (catalog columns, similarity trackers, views)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 30,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Time scalar-loop vs batched scoring at each catalog size."""
    results: List[Dict[str, float]] = []
    for num_items in sizes:
        reward, builder, candidates = _make_step(num_items, seed=seed)

        def scalar() -> List[float]:
            return [reward(builder, item) for item in candidates]

        def batched() -> np.ndarray:
            return reward.reward_batch(builder, candidates)

        # The two engines must agree exactly before timing means much.
        np.testing.assert_allclose(
            batched(), np.array(scalar()), atol=1e-12, rtol=0.0
        )

        scalar_s = _time_call(scalar, repeats)
        batch_s = _time_call(batched, repeats)
        results.append(
            {
                "num_items": int(num_items),
                "num_candidates": len(candidates),
                "scalar_step_us": scalar_s * 1e6,
                "batch_step_us": batch_s * 1e6,
                "speedup": scalar_s / batch_s,
            }
        )
    return results


def obs_overhead(
    num_items: int = 500, repeats: int = 300, seed: int = 0
) -> Dict[str, float]:
    """Span-instrumentation overhead on one batched reward step.

    ``SarsaLearner`` wraps every ``batch_rewards`` call in a recording
    span when observability is enabled, so the per-call overhead is
    exactly one span enter/exit.  Timing "bare step" vs "wrapped step"
    head-to-head cannot resolve a ~1us delta on a ~300us step through
    scheduler noise, so this measures the span cost in its own tight
    loop and asserts span_cost / step_cost < 5% — the same ratio, with
    both terms measured where they are actually measurable.
    """
    reward, builder, candidates = _make_step(num_items, seed=seed)

    def bare() -> np.ndarray:
        return reward.reward_batch(builder, candidates)

    registry = obs.enable()

    def span_only() -> None:
        with registry.span("sarsa.batch_rewards"):
            pass

    try:
        bare_s = min(_time_call(bare, repeats) for _ in range(3))
        span_s = min(
            _time_call(span_only, repeats * 30) for _ in range(3)
        )
    finally:
        obs.disable()

    overhead = span_s / bare_s
    assert overhead < 0.05, (
        "span instrumentation costs more than 5% of a batched reward "
        f"step: {overhead:.2%} ({span_s * 1e6:.2f}us span on a "
        f"{bare_s * 1e6:.1f}us step)"
    )
    return {
        "num_items": int(num_items),
        "bare_step_us": bare_s * 1e6,
        "span_us": span_s * 1e6,
        "overhead_fraction": overhead,
        "overhead_under_5pct": float(overhead < 0.05),
    }


def render(results: Sequence[Dict[str, float]]) -> str:
    """Plain-text table of the measured speedups."""
    lines = [
        "Reward engine: scalar loop vs batched (mean step time)",
        f"{'|I|':>6} {'cands':>6} {'scalar us':>12} "
        f"{'batch us':>12} {'speedup':>9}",
    ]
    for row in results:
        lines.append(
            f"{row['num_items']:>6} {row['num_candidates']:>6} "
            f"{row['scalar_step_us']:>12.1f} {row['batch_step_us']:>12.1f} "
            f"{row['speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="catalog sizes |I| to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed calls per engine per size",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--obs", action="store_true",
        help="also measure span-instrumentation overhead on a batched "
        "step (asserts < 5%%; always at |I|=500 so the step is large "
        "enough for the ratio to mean something)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    results = run(sizes=args.sizes, repeats=args.repeats, seed=args.seed)
    print(render(results))
    payload: Dict[str, object] = {
        "bench": "reward_engine",
        "sizes": results,
    }
    if args.obs:
        payload["obs_overhead"] = obs_overhead(seed=args.seed)
        print(
            "obs span overhead: "
            f"{payload['obs_overhead']['overhead_fraction']:.2%} "
            "(< 5% asserted)"
        )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
