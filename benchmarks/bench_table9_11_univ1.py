"""Tables IX-XI: Univ-1 M.S. DS-CT robustness sweeps.

One parameter varies while the rest stay at Table III defaults:
Table IX sweeps the coverage threshold epsilon and the type weights
(w1, w2); Table X sweeps N, alpha, gamma; Table XI sweeps the starting
point s1 and (delta, beta).  RL-Planner is reported under both average
and minimum similarity; EDA appears where its parameters apply.

Shape under test (Section IV-E): RL-Planner stays *robust* — scores
remain positive and within a modest band across reasonable values —
while extreme epsilon settings may collapse to 0 exactly as in
Table IX's right edge.
"""

from __future__ import annotations

import pytest

from repro.analysis import SweepRunner, render_sweep
from repro.datasets import load

RUNS = 2
EPISODES = 200


@pytest.fixture(scope="module")
def runner():
    dataset = load("njit_dsct", seed=0, with_gold=False)
    return SweepRunner(dataset, runs=RUNS, episodes=EPISODES)


def _assert_robust(result, allow_zero_tail=False):
    series = result.series("rl_avg_sim")
    positive = [value for value in series if value > 0]
    # Most sweep points stay positive...
    assert len(positive) >= max(1, len(series) - 2)
    # ...and the positive scores stay in a sane band (0 < s <= 10).
    assert all(0 < value <= 10.0 + 1e-9 for value in positive)


@pytest.mark.benchmark(group="table9-11")
def test_table9_coverage_threshold(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_coverage_threshold, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result, allow_zero_tail=True)
    assert all(point.eda is not None for point in result.points)


@pytest.mark.benchmark(group="table9-11")
def test_table9_type_weights(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_type_weights, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table9-11")
def test_table10_episodes(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_episodes, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)
    # N is an RL-only knob.
    assert all(point.eda is None for point in result.points)


@pytest.mark.benchmark(group="table9-11")
def test_table10_learning_rate(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_learning_rate, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table9-11")
def test_table10_discount(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_discount, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table9-11")
def test_table11_starting_points(benchmark, record_table, runner):
    starts = ["CS 644", "CS 636", "CS 675", "MATH 661"]
    result = benchmark.pedantic(
        runner.sweep_starting_points, args=(starts,), rounds=1,
        iterations=1,
    )
    record_table(render_sweep(result))
    # Section IV-E: "starting with any of the acceptable starting core
    # courses has minimal impact" — every start stays positive.
    assert all(point.rl_avg_sim > 0 for point in result.points)


@pytest.mark.benchmark(group="table9-11")
def test_table11_delta_beta(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_delta_beta, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)
