"""Empirical Theorem 1 (extension bench).

Theorem 1 says the reward design satisfies P_hard.  Measured here on a
battery of randomized synthetic instances *and* on the hardest paper
dataset (Univ-2, with its six per-category credit minima), with the
"valid action" masking on and off.  The shape: with masking the
satisfaction rate is 100%; without it, the easy instances still mostly
pass (the reward alone suffices) but Univ-2 collapses — masking is the
operational content of the theorem.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, verify_theorem1
from repro.core.planner import RLPlanner
from repro.datasets import load

INSTANCES = 8
EPISODES = 120


def _univ2_rate(masked: bool, runs: int = 3) -> float:
    dataset = load("univ2_ds", seed=0, with_gold=False)
    valid = 0
    for run in range(runs):
        config = dataset.default_config.replace(
            seed=run, mask_invalid_actions=masked
        )
        planner = RLPlanner(
            dataset.catalog, dataset.task, config, mode=dataset.mode
        )
        planner.fit(start_item_ids=[dataset.default_start])
        _, score = planner.recommend_scored(dataset.default_start)
        valid += score.is_valid
    return valid / runs


def _run():
    masked = verify_theorem1(
        instances=INSTANCES, episodes=EPISODES,
        mask_invalid_actions=True,
    )
    unmasked = verify_theorem1(
        instances=INSTANCES, episodes=EPISODES,
        mask_invalid_actions=False,
    )
    univ2_masked = _univ2_rate(True)
    univ2_unmasked = _univ2_rate(False)
    return masked, unmasked, univ2_masked, univ2_unmasked


@pytest.mark.benchmark(group="theorem1")
def test_theorem1_empirically(benchmark, record_table):
    masked, unmasked, univ2_masked, univ2_unmasked = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    record_table(
        render_table(
            ["battery", "masking", "satisfaction rate"],
            [
                [f"synthetic x{INSTANCES}", "on",
                 f"{masked.satisfaction_rate:.0%}"],
                [f"synthetic x{INSTANCES}", "off",
                 f"{unmasked.satisfaction_rate:.0%}"],
                ["univ2_ds x3", "on", f"{univ2_masked:.0%}"],
                ["univ2_ds x3", "off", f"{univ2_unmasked:.0%}"],
            ],
            title="Theorem 1, measured (hard-constraint satisfaction)",
        )
    )
    # With masking, Theorem 1 holds everywhere.
    assert masked.satisfaction_rate == 1.0
    assert univ2_masked == 1.0
    # Without masking the hardest instance family breaks down.
    assert univ2_unmasked < univ2_masked
