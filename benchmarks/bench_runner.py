"""Benchmark of the parallel experiment runner (repro.runner).

Times the Figure-1 comparison protocol on the synthetic dataset twice —
serial (``workers=1``) and fanned across a process pool — asserts the
two produce *identical* scores (seeds are fixed before dispatch, so the
worker count can only change wall-clock), and exercises the
checkpoint/resume path, asserting kill-and-resume training is
byte-identical to an uninterrupted run.  The ``obs`` section times the
same protocol with the observability layer off vs on and asserts
instrumentation overhead stays under 5% (and that two identical seeded
runs produce equal ``metrics.json`` fingerprints).  Results land in
``BENCH_runner.json`` at the repo root.

Speedup is bounded by the CPUs actually available (``cpu_count`` is
recorded alongside): on a multi-core box ``--workers 4`` approaches 4x;
on a single-core container the pool adds overhead and the number shows
it — the equality assertions are the part that must hold everywhere.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_runner.py

or with custom sizing::

    PYTHONPATH=src python benchmarks/bench_runner.py \
        --runs 8 --episodes 200 --workers 4 --output BENCH_runner.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import tempfile
import time
from typing import Dict

from repro import obs
from repro.analysis import compare_planners
from repro.core.serialization import policy_to_dict
from repro.datasets import load_synthetic
from repro.runner import (
    POLICY_NAME,
    RECOMMENDATION_NAME,
    FaultInjector,
    TrainingCheckpoint,
    resume_training,
    run_training,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_runner.json"


def bench_parallel_compare(
    dataset, runs: int, episodes: int, workers: int
) -> Dict[str, object]:
    """Serial vs parallel comparison protocol on one dataset."""
    t0 = time.perf_counter()
    serial = compare_planners(
        dataset, runs=runs, episodes=episodes, workers=1
    )
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = compare_planners(
        dataset, runs=runs, episodes=episodes, workers=workers
    )
    parallel_seconds = time.perf_counter() - t0

    scores_equal = serial == parallel
    assert scores_equal, (
        "parallel scores diverged from serial:\n"
        f"  serial:   {serial}\n  parallel: {parallel}"
    )
    return {
        "dataset": dataset.key,
        "runs": runs,
        "episodes": episodes,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "scores_equal": bool(scores_equal),
        "rl_mean": serial.rl_planner.mean,
        "eda_mean": serial.eda.mean,
        "omega_mean": serial.omega.mean,
    }


def bench_checkpoint_resume(dataset, episodes: int) -> Dict[str, object]:
    """Uninterrupted vs killed-and-resumed training, byte-compared."""
    every = max(10, episodes // 4)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        t0 = time.perf_counter()
        run_training(
            dataset, tmp / "straight", episodes=episodes,
            checkpoint_every=every,
        )
        straight_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_training(
            dataset, tmp / "resumed", episodes=episodes,
            checkpoint_every=every, limit_episodes=episodes // 2,
        )
        resume_training(tmp / "resumed")
        resumed_seconds = time.perf_counter() - t0

        identical = all(
            (tmp / "straight" / name).read_text()
            == (tmp / "resumed" / name).read_text()
            for name in (POLICY_NAME, RECOMMENDATION_NAME)
        )
    assert identical, "kill-and-resume did not reproduce the policy"
    return {
        "dataset": dataset.key,
        "episodes": episodes,
        "checkpoint_every": every,
        "straight_seconds": straight_seconds,
        "interrupted_plus_resume_seconds": resumed_seconds,
        "bit_identical": bool(identical),
    }


def bench_crash_safety(dataset, episodes: int) -> Dict[str, object]:
    """Cost of checkpoint integrity (checksum + fsync + rotation).

    Times a full no-fault training run, then micro-times the hardened
    checkpoint write against the pre-integrity write (plain json dump +
    rename, no checksum/fsync/rotation) on the same payload.  The
    overhead fraction scales the per-checkpoint delta by the number of
    checkpoints the run wrote, relative to the run's wall-clock — it
    must stay under 5%.
    """
    every = max(10, episodes // 4)
    reps = 20
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        t0 = time.perf_counter()
        outcome = run_training(
            dataset, tmp / "timed", episodes=episodes,
            checkpoint_every=every,
        )
        run_seconds = time.perf_counter() - t0
        checkpoints = max(1, episodes // every)

        state = {
            "episode": episodes,
            "rng_state": {},
            "config_fingerprint": "bench",
            "target_episodes": episodes,
            "start_item": dataset.default_start,
        }
        checkpoint = TrainingCheckpoint(
            qtable=outcome.qtable,
            episode=episodes,
            rng_state={},
            config_fingerprint="bench",
            target_episodes=episodes,
            start_item=dataset.default_start,
        )
        safe_path = tmp / "safe" / "checkpoint.json"
        safe_path.parent.mkdir()
        t0 = time.perf_counter()
        for _ in range(reps):
            checkpoint.save(safe_path)
        safe_seconds = (time.perf_counter() - t0) / reps

        # Pre-integrity write path: serialize + plain write + rename.
        # Serialization happens inside the loop because both the old and
        # the hardened path pay it — only checksum/fsync/rotation are
        # the overhead under test.
        raw_path = tmp / "raw" / "checkpoint.json"
        raw_path.parent.mkdir()
        t0 = time.perf_counter()
        for _ in range(reps):
            raw_text = json.dumps(
                policy_to_dict(outcome.qtable, training_state=state),
                indent=2,
            )
            tmp_file = raw_path.with_name(raw_path.name + ".tmp")
            tmp_file.write_text(raw_text)
            tmp_file.replace(raw_path)
        raw_seconds = (time.perf_counter() - t0) / reps

    per_checkpoint_overhead = max(0.0, safe_seconds - raw_seconds)
    overhead_fraction = per_checkpoint_overhead * checkpoints / run_seconds
    assert overhead_fraction < 0.05, (
        "crash-safety machinery costs more than 5% of the no-fault "
        f"path: {overhead_fraction:.2%}"
    )
    return {
        "dataset": dataset.key,
        "episodes": episodes,
        "checkpoints_per_run": checkpoints,
        "run_seconds": run_seconds,
        "safe_checkpoint_write_seconds": safe_seconds,
        "raw_checkpoint_write_seconds": raw_seconds,
        "per_checkpoint_overhead_seconds": per_checkpoint_overhead,
        "overhead_fraction": overhead_fraction,
        "overhead_under_5pct": bool(overhead_fraction < 0.05),
    }


def bench_fault_recovery(
    dataset, runs: int, episodes: int, workers: int
) -> Dict[str, object]:
    """Worker-kill recovery: a chaotic batch must match the calm one."""
    baseline = compare_planners(
        dataset, runs=runs, episodes=episodes, workers=workers
    )
    injector = FaultInjector.from_spec("kill@1")
    t0 = time.perf_counter()
    chaotic = compare_planners(
        dataset, runs=runs, episodes=episodes, workers=workers,
        fault_injector=injector,
    )
    chaotic_seconds = time.perf_counter() - t0
    scores_equal = chaotic == baseline
    assert scores_equal, (
        "scores diverged after injected worker kill:\n"
        f"  calm:    {baseline}\n  chaotic: {chaotic}"
    )
    return {
        "dataset": dataset.key,
        "runs": runs,
        "episodes": episodes,
        "workers": workers,
        "injected": "kill@1",
        "chaotic_seconds": chaotic_seconds,
        "scores_equal_after_worker_kill": bool(scores_equal),
    }


def bench_obs_overhead(
    dataset, runs: int, episodes: int, repeats: int = 3
) -> Dict[str, object]:
    """Cost of the observability layer on the instrumented hot path.

    Times the serial comparison protocol — the workload whose inner
    loops (``env.step``, action selection, ``runner.map``) carry the
    metric/span instrumentation — with observability disabled (the
    :class:`~repro.obs.NullRegistry` default) and enabled, best-of-N
    each, and asserts recording costs less than 5% on top of the no-op
    path.  Also re-runs the identical seeded batch twice with metrics
    on and asserts the two ``metrics.json`` fingerprints are equal —
    the observability analogue of the manifest fingerprint check.
    """

    def workload(out_dir=None) -> float:
        t0 = time.perf_counter()
        compare_planners(
            dataset, runs=runs, episodes=episodes, workers=1,
            out_dir=out_dir,
        )
        return time.perf_counter() - t0

    # Interleave disabled/enabled passes so slow drift (thermal, noisy
    # neighbours) hits both sides equally; best-of-N each.
    disabled_times, enabled_times = [], []
    for _ in range(max(1, repeats)):
        obs.disable()
        disabled_times.append(workload())
        obs.enable()
        enabled_times.append(workload())
    obs.disable()
    disabled_seconds = min(disabled_times)
    enabled_seconds = min(enabled_times)

    overhead_fraction = (
        max(0.0, enabled_seconds - disabled_seconds) / disabled_seconds
    )
    assert overhead_fraction < 0.05, (
        "observability instrumentation costs more than 5% of the "
        f"uninstrumented hot loop: {overhead_fraction:.2%}"
    )

    fingerprints = []
    for _ in range(2):
        obs.enable()
        with tempfile.TemporaryDirectory() as tmp:
            workload(out_dir=tmp)
            payload = json.loads(
                (pathlib.Path(tmp) / "metrics.json").read_text()
            )
        fingerprints.append(payload["fingerprint"])
        obs.disable()
    assert fingerprints[0] == fingerprints[1], (
        "two identical seeded runs produced different metrics "
        f"fingerprints:\n  {fingerprints[0]}\n  {fingerprints[1]}"
    )
    return {
        "dataset": dataset.key,
        "runs": runs,
        "episodes": episodes,
        "repeats": repeats,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "overhead_fraction": overhead_fraction,
        "overhead_under_5pct": bool(overhead_fraction < 0.05),
        "metrics_fingerprint": fingerprints[0],
        "fingerprints_equal": True,
    }


SECTIONS = ("compare", "checkpoint", "crash", "faults", "obs")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=8)
    parser.add_argument("--episodes", type=int, default=150)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--only", choices=SECTIONS, nargs="+", default=None,
        help="run only these sections (results are printed, and "
        "written only when --output is given explicitly)",
    )
    parser.add_argument("--output", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    # A partial run must not clobber the full BENCH_runner.json.
    output = args.output
    if output is None and args.only is None:
        output = DEFAULT_OUTPUT
    sections = tuple(args.only) if args.only else SECTIONS

    dataset = load_synthetic(seed=0)
    results: Dict[str, object] = {"bench": "parallel_runner"}
    if "compare" in sections:
        results["parallel_compare"] = bench_parallel_compare(
            dataset, args.runs, args.episodes, args.workers
        )
    if "checkpoint" in sections:
        results["checkpoint_resume"] = bench_checkpoint_resume(
            dataset, args.episodes
        )
    if "crash" in sections:
        results["crash_safety"] = bench_crash_safety(
            dataset, args.episodes
        )
    if "faults" in sections:
        results["fault_recovery"] = bench_fault_recovery(
            dataset, min(args.runs, 4), args.episodes, args.workers
        )
    if "obs" in sections:
        results["obs_overhead"] = bench_obs_overhead(
            dataset, min(args.runs, 4), args.episodes
        )
    print(json.dumps(results, indent=2))
    if output is not None:
        output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
