"""Table VII: transfer learning between NYC and Paris.

The POI universes are disjoint, so the policy transfers by *theme
signature* (Section IV-D applies a learned policy across cities).  The
paper reports transferred itineraries with scores 4.3 / 4.5 out of 5;
the shape under test is that theme transfer carries real Q-mass, yields
a non-empty itinerary, and scores well above zero in both directions.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, run_transfer
from repro.datasets import load


def _both_directions():
    nyc = load("nyc", seed=0, with_gold=False)
    paris = load("paris", seed=0, with_gold=False)
    return (
        run_transfer(nyc, paris, strategy="theme", seed=0),
        run_transfer(paris, nyc, strategy="theme", seed=0),
        nyc,
        paris,
    )


@pytest.mark.benchmark(group="table7")
def test_table7_trip_transfer(benchmark, record_table):
    to_paris, to_nyc, nyc, paris = benchmark.pedantic(
        _both_directions, rounds=1, iterations=1
    )

    rows = []
    lines = []
    for outcome in (to_paris, to_nyc):
        rows.append(
            [
                outcome.source,
                outcome.target,
                outcome.score.value,
                "valid" if outcome.is_good else
                outcome.score.report.describe()[:40],
                f"{outcome.entry_coverage:.0%}",
            ]
        )
        lines.append(
            f"{outcome.source} -> {outcome.target}: "
            f"{outcome.plan.describe()}"
        )
    table = render_table(
        ["learnt policy", "applied policy", "score", "constraints",
         "Q coverage"],
        rows,
        title="Table VII — trip-planning transfer learning "
              "(theme-signature mapping)",
    )
    record_table(table + "\n\nItineraries:\n" + "\n".join(lines))

    for outcome in (to_paris, to_nyc):
        assert len(outcome.plan) >= 2  # a usable itinerary, as in Table VII
        assert outcome.entry_coverage > 0.2
        assert outcome.score.raw_value > 0.0
    # The paper's transferred scores are high (4.3-4.5 of 5): at least
    # one direction should produce a fully valid itinerary here too.
    assert to_paris.is_good or to_nyc.is_good
