"""Tables XV-XVI: NYC and Paris robustness sweeps.

Table XV sweeps N, alpha, gamma, and the distance threshold d; Table
XVI sweeps the time threshold t and (delta, beta) — for both cities,
with EDA included on the task-level knobs it shares.

Shape under test (Section IV-E): "changing the learning rate and the
discount factor does not have high impact on the final score and the
results are stable with respect to reward's weights" — scores stay in a
tight band near the 5-point gold reference.
"""

from __future__ import annotations

import pytest

from repro.analysis import SweepRunner, render_sweep
from repro.datasets import load

RUNS = 2
EPISODES = 200


def _runner(city: str) -> SweepRunner:
    dataset = load(city, seed=0, with_gold=False)
    return SweepRunner(dataset, runs=RUNS, episodes=EPISODES)


@pytest.fixture(scope="module")
def nyc():
    return _runner("nyc")


@pytest.fixture(scope="module")
def paris():
    return _runner("paris")


def _assert_stable(result, floor=3.0):
    series = result.series("rl_avg_sim")
    assert all(value > 0 for value in series)
    # Stability: every point near the 5-point reference.
    assert min(series) >= floor
    assert max(series) <= 5.0 + 1e-9


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table15_episodes(benchmark, record_table, city, nyc, paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_episodes, args=((100, 200, 300, 500),), rounds=1,
        iterations=1,
    )
    record_table(render_sweep(result))
    _assert_stable(result)


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table15_learning_rate(benchmark, record_table, city, nyc, paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_learning_rate, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_stable(result)


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table15_discount(benchmark, record_table, city, nyc, paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_discount, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_stable(result)


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table15_distance_threshold(benchmark, record_table, city, nyc,
                                    paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_trip_distance, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    series = result.series("rl_avg_sim")
    assert all(value > 0 for value in series)
    # EDA shares the task, so it is swept too (and trails RL overall).
    eda = [point.eda for point in result.points]
    assert all(value is not None for value in eda)
    assert max(series) >= max(eda)


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table16_time_threshold(benchmark, record_table, city, nyc, paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_trip_time, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    series = result.series("rl_avg_sim")
    # A 5-hour budget is tight; at least the 6h/8h settings succeed.
    assert series[-1] > 0 and series[-2] > 0


@pytest.mark.benchmark(group="table15-16")
@pytest.mark.parametrize("city", ["nyc", "paris"])
def test_table16_delta_beta(benchmark, record_table, city, nyc, paris):
    runner = nyc if city == "nyc" else paris
    result = benchmark.pedantic(
        runner.sweep_delta_beta, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_stable(result)
