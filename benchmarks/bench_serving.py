"""Benchmark of the resilient serving facade (repro.serving).

Measures three things and writes ``BENCH_serving.json`` at the repo
root:

1. **Per-rung latency** — p50/p95 of ``serve()`` when each rung of the
   degradation ladder answers: the trained SARSA policy (happy path),
   EDA (policy rung disabled via an error fault), and constructive
   repair (policy and EDA rungs both faulted).
2. **Facade overhead** — the happy path runs ``RLPlanner.recommend`` +
   one scoring pass + the envelope; its median must stay within 5% of
   a bare ``recommend`` + ``score`` loop, asserted here so the facade
   can never silently grow a hidden cost.
3. **Admission latency** — p50/p95 of the full catalog audit and the
   per-request screen, the costs the serving layer adds at load and on
   every request.
4. **Registry cold vs warm** — the per-request cost of the old
   fit-every-time pattern against a policy-registry warm hit (cached
   table + memoized traversal) and a warm traversal (cached table,
   fresh greedy sweep); asserts warm-hit p50 < cold-fit p50.
5. **Concurrency** — the threaded front-end under load: a closed-loop
   sweep (1/4/16 clients: p50/p95/p99 + SLO attainment per level), an
   open-loop overload run that must shed (shed rate > 0, admitted p99
   still bounded), and a mid-load fault-injection run that must finish
   through the degradation ladder with breaker transitions on record.
6. **Churn** — availability churn and mid-plan replanning: suffix-only
   replan latency under a deadline, byte-identical decision logs when
   the same seeded churn schedule is replayed, and a burst-closure
   load run that must shed/degrade rather than serve a plan
   referencing a closed item.
7. **Durability** — write-ahead journal overhead on ``apply_delta``
   (gated under 5% at catalog scale, fsync on), replay throughput in
   deltas/s, warm-restart state fidelity and the duplicate-seq no-op
   ack.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py

or with custom sizing::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --iterations 200 --episodes 300 --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import tempfile
import time
from typing import Callable, Dict, List

from repro.datasets import load
from repro.runner.faults import FaultInjector, parse_fault_spec
from repro.serving import PlanningService, PolicyRegistry
from repro.serving.admission import audit_catalog, screen_request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"

#: Facade overhead budget vs bare recommend+score (fraction).
OVERHEAD_BUDGET = 0.05


def _percentiles(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    n = len(ordered)
    return {
        "p50_ms": 1e3 * ordered[n // 2],
        "p95_ms": 1e3 * ordered[min(n - 1, int(n * 0.95))],
        "mean_ms": 1e3 * statistics.fmean(ordered),
        "samples": n,
    }


def _time(fn: Callable[[], object], iterations: int) -> List[float]:
    samples = []
    for _ in range(iterations):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def bench_rungs(dataset, episodes: int, iterations: int) -> Dict[str, object]:
    """p50/p95 of serve() with each rung forced to answer."""
    shared = PlanningService.from_dataset(dataset)
    shared.fit(start_item_ids=[dataset.default_start], episodes=episodes)
    start = dataset.default_start
    out: Dict[str, object] = {}

    # sarsa: the trained happy path.
    samples = _time(lambda: shared.serve(start_item_id=start), iterations)
    result = shared.serve(start_item_id=start)
    assert result.rung == "sarsa" and result.ok, result.describe()
    out["sarsa"] = _percentiles(samples)

    # eda / repair: fault the rungs above so the ladder lands where we
    # want; `times` is sized to cover warm-up + all iterations.
    for rung, spec in (
        ("eda", "error@0:times=1000000"),
        ("repair", "error@0:times=1000000;error@1:times=1000000"),
    ):
        injector = FaultInjector(
            parse_fault_spec(spec), state_dir=tempfile.mkdtemp()
        )
        service = PlanningService.from_dataset(
            dataset, planner=shared.planner, fault_injector=injector,
            breaker_threshold=10**9,  # keep the faulted rung in play
        )
        samples = _time(
            lambda: service.serve(start_item_id=start), iterations
        )
        result = service.serve(start_item_id=start)
        assert result.rung == rung and result.ok, result.describe()
        out[rung] = _percentiles(samples)
    return out


def bench_overhead(dataset, episodes: int, iterations: int) -> Dict[str, object]:
    """Happy-path serve() vs bare recommend()+score()."""
    service = PlanningService.from_dataset(dataset)
    service.fit(start_item_ids=[dataset.default_start], episodes=episodes)
    planner = service.planner
    start = dataset.default_start

    def bare():
        plan = planner.recommend(start)
        planner.scorer.score(plan)

    # Interleave warm-up so neither side benefits from cache order.
    bare(); service.serve(start_item_id=start)
    bare_s = _time(bare, iterations)
    serve_s = _time(lambda: service.serve(start_item_id=start), iterations)
    bare_p50 = sorted(bare_s)[len(bare_s) // 2]
    serve_p50 = sorted(serve_s)[len(serve_s) // 2]
    overhead = serve_p50 / bare_p50 - 1.0
    return {
        "bare_recommend": _percentiles(bare_s),
        "serve": _percentiles(serve_s),
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "within_budget": overhead < OVERHEAD_BUDGET,
    }


def bench_registry(
    dataset, episodes: int, iterations: int
) -> Dict[str, object]:
    """Cold-fit serve vs registry warm-hit serve (train-once/serve-many).

    *Cold* is the pre-registry pattern: build a service, fit the policy,
    answer one request — the full per-request cost when nothing is
    amortized.  *Warm hit* is the steady state behind a registry: the
    policy is already in the in-process cache and the request either
    replays the memoized greedy traversal (``warm_hit_serve``) or runs
    it fresh against the cached table (``warm_traversal_serve``) — no
    fit, no disk read either way.
    """
    start = dataset.default_start

    def cold():
        service = PlanningService.from_dataset(dataset)
        service.fit(start_item_ids=[start], episodes=episodes)
        service.serve(start_item_id=start)

    # Cold iterations are expensive (a full fit each); a handful is
    # enough for a stable median of a multi-hundred-ms quantity.
    cold_s = _time(cold, max(3, iterations // 20))

    registry = PolicyRegistry(tempfile.mkdtemp())
    service = PlanningService.from_dataset(dataset)
    service.attach_registry(registry, episodes=episodes)
    first = service.serve(start_item_id=start)  # trains exactly once
    assert first.rung == "sarsa" and first.ok, first.describe()

    warm_s = _time(lambda: service.serve(start_item_id=start), iterations)
    check = service.serve(start_item_id=start)
    assert check.plan_cache_hit and check.ok, check.describe()

    entry = registry.get(dataset.policy_key(), dataset.catalog)

    def warm_traversal():
        entry.plans.clear()  # force the greedy traversal to rerun
        service.serve(start_item_id=start)

    traversal_s = _time(warm_traversal, iterations)

    cold_p50 = sorted(cold_s)[len(cold_s) // 2]
    warm_p50 = sorted(warm_s)[len(warm_s) // 2]
    return {
        "cold_fit_serve": _percentiles(cold_s),
        "warm_hit_serve": _percentiles(warm_s),
        "warm_traversal_serve": _percentiles(traversal_s),
        "speedup_p50": cold_p50 / warm_p50,
        "warm_hit_p50_under_1ms": 1e3 * warm_p50 <= 1.0,
        "warm_faster_than_cold": warm_p50 < cold_p50,
    }


def bench_concurrency(
    dataset, episodes: int, requests: int
) -> Dict[str, object]:
    """The threaded front-end under concurrent load (three scenarios).

    1. Closed-loop sweep at 1/4/16 clients (workers sized to match):
       per-level p50/p95/p99 and SLO attainment.
    2. Open-loop overload against a deliberately undersized server
       (1 worker, queue of 4) at ~3x measured capacity: the shed rate
       must be positive while the *admitted* p99 stays bounded — the
       whole point of admission control.
    3. Mid-load fault injection (``error@0`` breaking the policy rung
       partway through a closed-loop run): every request must still
       complete via the degradation ladder, with the breaker
       transitions on record in the metrics registry.
    """
    from repro import obs as obs_module
    from repro.obs import get_registry, metrics_payload
    from repro.serving import PlanningServer, closed_loop, open_loop

    obs_module.enable()
    service = PlanningService.from_dataset(dataset)
    service.fit(start_item_ids=[dataset.default_start], episodes=episodes)
    deadline_s = 2.0
    slo_s = 0.25
    out: Dict[str, object] = {"deadline_s": deadline_s, "slo_s": slo_s}

    levels: Dict[str, object] = {}
    for level in (1, 4, 16):
        server = PlanningServer(
            service, workers=level, max_queue=4 * level
        )
        try:
            levels[str(level)] = closed_loop(
                server,
                concurrency=level,
                requests=requests,
                deadline_s=deadline_s,
                slo_s=slo_s,
            )
        finally:
            server.close()
    out["closed_loop_levels"] = levels

    # Overload: measure single-request service time, then offer ~3x
    # what one worker can sustain so the bounded queue must shed.
    probe = _time(
        lambda: service.serve(start_item_id=dataset.default_start), 5
    )
    service_p50 = sorted(probe)[len(probe) // 2]
    rate = max(50.0, 3.0 / max(service_p50, 1e-4))
    tight_deadline = max(0.05, 10.0 * service_p50)
    server = PlanningServer(service, workers=1, max_queue=4)
    try:
        overload = open_loop(
            server,
            rate=rate,
            duration_s=2.0,
            deadline_s=tight_deadline,
            slo_s=tight_deadline,
            seed=0,
            burst_every_s=0.5,
            burst_len_s=0.2,
            burst_factor=3.0,
        )
    finally:
        server.close()
    overload["admitted_p99_bounded"] = (
        overload["latency_ms"]["p99"] <= 1e3 * (tight_deadline + 0.5)
    )
    out["overload"] = overload

    # Chaos: break the policy rung mid-run; the ladder must absorb it.
    faulted = PlanningService.from_dataset(
        dataset, planner=service.planner
    )
    server = PlanningServer(faulted, workers=4, max_queue=64)
    try:
        fault_run = closed_loop(
            server,
            concurrency=4,
            requests=requests,
            deadline_s=deadline_s,
            slo_s=slo_s,
            fault_spec="error@0:times=12",
            fault_at=0.3,
        )
    finally:
        server.close()
    transitions = {
        name: count
        for name, count in metrics_payload(get_registry())
        .get("counters", {})
        .items()
        if name.startswith("serve_breaker_transitions_total")
    }
    fault_run["breaker_transitions"] = transitions
    fault_run["completed_all"] = (
        fault_run["requests_completed"] == requests
        and fault_run["errors"] == 0
    )
    out["fault_injection"] = fault_run
    return out


def bench_churn(
    dataset, episodes: int, iterations: int
) -> Dict[str, object]:
    """Availability churn and mid-plan replanning (three drills).

    1. **Suffix-only replan latency** — close one suffix item of a
       partially-executed plan and replan under a deadline; p95 of the
       replan must land inside the budget (the committed prefix is
       pinned, only the suffix is re-planned).
    2. **Replay determinism** — ingesting the same seeded churn
       schedule into two fresh sessions and replanning yields
       byte-identical decision logs (no wall-clock anywhere).
    3. **Burst closures under load** — a single-threaded closed loop
       with a burst churn schedule: the server must shed or degrade
       rather than ever serve a plan referencing a closed item
       (``invalid_served == 0``).
    """
    from repro.core.deltas import DELTA_CLOSE, CatalogDelta
    from repro.scenarios import poisson_schedule
    from repro.serving import PlanningServer, closed_loop

    service = PlanningService.from_dataset(dataset)
    service.fit(start_item_ids=[dataset.default_start], episodes=episodes)
    base = service.serve(start_item_id=dataset.default_start)
    assert base.ok and base.plan is not None, base.describe()
    plan = base.plan
    victim = plan.item_ids[-1]
    replan_deadline_s = 1.0

    latencies: List[float] = []
    outcomes: Dict[str, int] = {}
    suffix_lengths: List[int] = []
    for i in range(max(10, iterations // 10)):
        session = service.open_session(
            plan, executed=2, session_id=f"bench{i}"
        )
        session.ingest(
            CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
        )
        result = session.replan(deadline_s=replan_deadline_s)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        latencies.append(result.deadline_spent)
        if result.plan is not None:
            suffix_lengths.append(len(result.plan) - result.suffix_start)
    lat = _percentiles(latencies)
    suffix_only = {
        "deadline_s": replan_deadline_s,
        "latency": lat,
        "outcomes": outcomes,
        "mean_suffix_length": (
            statistics.fmean(suffix_lengths) if suffix_lengths else 0.0
        ),
        "p95_within_deadline": (
            lat["p95_ms"] <= 1e3 * replan_deadline_s
        ),
    }

    # Replay determinism: same seeded schedule, two fresh sessions.
    schedule = poisson_schedule(
        dataset.catalog, seed=11, rate=5.0, reopen_rate=3.0
    )

    def replay() -> str:
        session = service.open_session(
            plan, executed=1, session_id="replay"
        )
        for event in schedule.events:
            session.ingest(event.delta)
        session.replan(deadline_s=5.0)
        return session.log_json()

    log_a, log_b = replay(), replay()
    determinism = {
        "schedule_events": len(schedule),
        "log_bytes": len(log_a),
        "identical": log_a == log_b,
    }

    # Burst closures under a single-threaded closed loop: deltas and
    # requests interleave on one thread, so the invalid_served check is
    # exact (no completion-time races).
    burst_service = PlanningService.from_dataset(
        dataset, planner=service.planner
    )
    server = PlanningServer(burst_service, workers=1, max_queue=8)
    try:
        burst_run = closed_loop(
            server,
            concurrency=1,
            requests=max(16, iterations // 4),
            deadline_s=2.0,
            churn_spec="burst:every=0.25,len=0.1,per=2,seed=5",
        )
    finally:
        server.close()
    burst = {
        "outcomes": burst_run["outcomes"],
        "churn": burst_run["churn"],
        "invalid_served": burst_run["invalid_served"],
        "shed_not_invalid": burst_run["invalid_served"] == 0,
    }
    return {
        "suffix_only": suffix_only,
        "determinism": determinism,
        "burst": burst,
    }


def bench_durability(iterations: int) -> Dict[str, object]:
    """Journal-append overhead on ``apply_delta`` + replay throughput.

    Sized on a synthetic 5000-item catalog — the large-catalog regime
    PR 9 targets — because that is where the durability tax must be
    honest: ``apply_delta`` re-materializes the live catalog (~ms at
    |I|=5k), so the per-append ``fdatasync`` (~0.2 ms) must stay under
    5% of it.  On a toy catalog the same fsync would dwarf the
    microsecond apply and the gate would be meaningless.

    Also measured: journal replay parse throughput (deltas/s), full
    warm-restart recovery wall time, and the duplicate-seq no-op ack.
    """
    from repro.datasets import SyntheticSpec, generate_instance
    from repro.core.deltas import DELTA_CLOSE, DELTA_REOPEN, CatalogDelta
    from repro.serving import DeltaJournal, PlanningService

    catalog, task = generate_instance(SyntheticSpec(num_items=5000), seed=0)
    pairs = max(20, iterations // 2)
    victims = sorted(catalog.item_ids)[-pairs:]

    def close_reopen_deltas() -> List[CatalogDelta]:
        out = []
        for item_id in victims:
            out.append(CatalogDelta(kind=DELTA_CLOSE, item_id=item_id))
            out.append(CatalogDelta(kind=DELTA_REOPEN, item_id=item_id))
        return out

    plain = PlanningService(catalog, task, audit=False)
    plain_s = []
    for delta in close_reopen_deltas():
        t0 = time.perf_counter()
        plain.apply_delta(delta)
        plain_s.append(time.perf_counter() - t0)

    journal_root = tempfile.mkdtemp()
    journaled = PlanningService(catalog, task, audit=False)
    journal = DeltaJournal(journal_root, compact_every=10 ** 9)
    journaled.attach_journal(journal)
    journaled_s = []
    for delta in close_reopen_deltas():
        t0 = time.perf_counter()
        journaled.apply_delta(delta)
        journaled_s.append(time.perf_counter() - t0)

    plain_p50 = sorted(plain_s)[len(plain_s) // 2]
    journaled_p50 = sorted(journaled_s)[len(journaled_s) // 2]
    overhead = journaled_p50 / plain_p50 - 1.0

    # Duplicate-seq idempotence: a retry of the last acked seq must be
    # a no-op ack, not a double apply.
    version_before = journaled.catalog_version
    last_seq = journaled.journal_seq
    retry = journaled.apply_delta(
        CatalogDelta(kind=DELTA_REOPEN, item_id=victims[-1], seq=last_seq)
    )
    duplicate_noop = (
        retry.duplicate
        and retry.seq == last_seq
        and journaled.catalog_version == version_before
    )
    journal.close()

    # Replay: parse throughput of the tail, then the full warm restart
    # (parse + snapshot restore + per-delta re-materialization).
    reader = DeltaJournal(journal_root)
    t0 = time.perf_counter()
    replayed = reader.replay()
    parse_s = time.perf_counter() - t0
    restarted = PlanningService(catalog, task, audit=False)
    t0 = time.perf_counter()
    recovery = restarted.attach_journal(DeltaJournal(journal_root))
    recover_s = time.perf_counter() - t0
    state_identical = (
        restarted.live_catalog.item_ids == journaled.live_catalog.item_ids
        and restarted.catalog_version == journaled.catalog_version
        and restarted.journal_seq == journaled.journal_seq
    )
    return {
        "num_items": len(catalog),
        "appends": len(journaled_s),
        "plain_apply": _percentiles(plain_s),
        "journaled_apply": _percentiles(journaled_s),
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "within_budget": overhead < OVERHEAD_BUDGET,
        "duplicate_seq_noop": duplicate_noop,
        "replay": {
            "deltas": len(replayed.deltas),
            "parse_s": parse_s,
            "parse_deltas_per_s": (
                len(replayed.deltas) / parse_s if parse_s > 0 else 0.0
            ),
            "recover_s": recover_s,
            "recover_deltas_per_s": (
                recovery.replayed_deltas / recover_s
                if recover_s > 0 else 0.0
            ),
            "state_identical": state_identical,
        },
    }


def bench_admission(dataset, iterations: int) -> Dict[str, object]:
    """Load-time audit and per-request screen latency."""
    audit_s = _time(
        lambda: audit_catalog(
            dataset.catalog, task=dataset.task, mode=dataset.mode
        ),
        iterations,
    )
    screen_s = _time(
        lambda: screen_request(
            dataset.catalog, dataset.task, dataset.mode,
            dataset.default_start,
        ),
        iterations,
    )
    return {
        "audit_catalog": _percentiles(audit_s),
        "screen_request": _percentiles(screen_s),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="njit_cs")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--episodes", type=int, default=300)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    dataset = load(args.dataset, seed=0, with_gold=False)
    payload = {
        "dataset": args.dataset,
        "iterations": args.iterations,
        "episodes": args.episodes,
        "rungs": bench_rungs(dataset, args.episodes, args.iterations),
        "overhead": bench_overhead(
            dataset, args.episodes, args.iterations
        ),
        "admission": bench_admission(dataset, args.iterations),
        "registry": bench_registry(
            dataset, args.episodes, args.iterations
        ),
    }
    # Last: it enables the metrics registry, which would otherwise leak
    # observation overhead into the facade-overhead measurement above.
    payload["concurrency"] = bench_concurrency(
        dataset, args.episodes, max(16, args.iterations // 2)
    )
    payload["churn"] = bench_churn(
        dataset, args.episodes, args.iterations
    )
    payload["durability"] = bench_durability(args.iterations)
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"serving bench on {args.dataset} -> {out}")
    for rung, stats in payload["rungs"].items():
        print(
            f"  {rung:7s} p50 {stats['p50_ms']:8.3f} ms   "
            f"p95 {stats['p95_ms']:8.3f} ms"
        )
    ov = payload["overhead"]
    print(
        f"  facade overhead {ov['overhead_fraction']:+.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%}, "
        f"{'OK' if ov['within_budget'] else 'OVER'})"
    )
    reg = payload["registry"]
    print(
        f"  registry cold-fit p50 {reg['cold_fit_serve']['p50_ms']:8.3f} ms"
        f"   warm-hit p50 {reg['warm_hit_serve']['p50_ms']:8.3f} ms"
        f"   traversal p50 {reg['warm_traversal_serve']['p50_ms']:8.3f} ms"
        f"   ({reg['speedup_p50']:.0f}x)"
    )
    conc = payload["concurrency"]
    for level, run in conc["closed_loop_levels"].items():
        lat = run["latency_ms"]
        print(
            f"  closed x{level:>2s} p50 {lat['p50']:8.3f} ms   "
            f"p95 {lat['p95']:8.3f} ms   p99 {lat['p99']:8.3f} ms   "
            f"slo {run['slo']['attainment']:.0%}"
        )
    over = conc["overload"]
    print(
        f"  overload shed {over['shed_rate']:.0%}  admitted p99 "
        f"{over['latency_ms']['p99']:.3f} ms "
        f"({'bounded' if over['admitted_p99_bounded'] else 'UNBOUNDED'})"
    )
    chaos = conc["fault_injection"]
    print(
        f"  chaos run outcomes {chaos['outcomes']}  "
        f"transitions {len(chaos['breaker_transitions'])}"
    )
    churn = payload["churn"]
    suffix = churn["suffix_only"]
    print(
        f"  replan   p50 {suffix['latency']['p50_ms']:8.3f} ms   "
        f"p95 {suffix['latency']['p95_ms']:8.3f} ms   "
        f"(deadline {suffix['deadline_s']:.1f}s, "
        f"{'OK' if suffix['p95_within_deadline'] else 'OVER'})"
    )
    print(
        f"  churn determinism "
        f"{'OK' if churn['determinism']['identical'] else 'DIVERGED'}  "
        f"burst invalid_served {churn['burst']['invalid_served']}"
    )
    dur = payload["durability"]
    print(
        f"  journal overhead {dur['overhead_fraction']:+.1%} on "
        f"apply_delta @ |I|={dur['num_items']} "
        f"(budget {dur['budget_fraction']:.0%}, "
        f"{'OK' if dur['within_budget'] else 'OVER'})   "
        f"replay {dur['replay']['recover_deltas_per_s']:.0f} deltas/s"
    )
    if not ov["within_budget"]:
        print("  FAIL: facade overhead exceeds budget")
        return 1
    if not reg["warm_faster_than_cold"]:
        print("  FAIL: registry warm-hit serve is not faster than cold fit")
        return 1
    if over["shed_rate"] <= 0:
        print("  FAIL: overload run shed nothing (queue never pushed back)")
        return 1
    if not over["admitted_p99_bounded"]:
        print("  FAIL: admitted p99 unbounded under overload")
        return 1
    if not chaos["completed_all"]:
        print("  FAIL: fault-injection run did not complete all requests")
        return 1
    if not chaos["breaker_transitions"]:
        print("  FAIL: no breaker transitions recorded under faults")
        return 1
    if not suffix["p95_within_deadline"]:
        print("  FAIL: suffix replan p95 exceeds the replan deadline")
        return 1
    if not churn["determinism"]["identical"]:
        print("  FAIL: churn replay produced diverging decision logs")
        return 1
    if not churn["burst"]["shed_not_invalid"]:
        print("  FAIL: served a plan referencing a closed item under burst")
        return 1
    if not dur["within_budget"]:
        print("  FAIL: journal append overhead on apply_delta exceeds budget")
        return 1
    if not dur["duplicate_seq_noop"]:
        print("  FAIL: duplicate-seq delta was not acked as a no-op")
        return 1
    if not dur["replay"]["state_identical"]:
        print("  FAIL: journal replay did not reproduce the live state")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
