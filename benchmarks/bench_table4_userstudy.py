"""Table IV: user-study ratings (simulated panels).

25 simulated students rate the course plans and 50 simulated AMT
workers rate the itineraries, each answering the paper's four questions
on a 1-5 scale for an RL-Planner plan and the gold standard, blind.
Shape under test: both systems land in the upper half of the scale and
the gold standard rates at or slightly above RL-Planner on every
question — the paper reports 3.39 vs 3.74 (courses) and 3.94 vs 4.15
(trips) overall.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, run_user_study
from repro.datasets import load
from repro.userstudy import Question


def _study(course_key: str, trip_key: str):
    course = run_user_study(load(course_key, seed=0), num_raters=25,
                            seed=0)
    trip = run_user_study(load(trip_key, seed=0), num_raters=50, seed=0)
    return course, trip


def _render(course, trip):
    rows = []
    for question in Question:
        q = question.value
        rows.append(
            [
                q,
                course.rl_mean(q),
                course.gold_mean(q),
                trip.rl_mean(q),
                trip.gold_mean(q),
            ]
        )
    return render_table(
        ["Question", "Courses RL", "Courses Gold", "Trips RL",
         "Trips Gold"],
        rows,
        title="Table IV — simulated user-study ratings (1-5)",
    )


@pytest.mark.benchmark(group="table4")
def test_table4_user_study(benchmark, record_table):
    course, trip = benchmark.pedantic(
        _study, args=("njit_dsct", "paris"), rounds=1, iterations=1
    )
    record_table(_render(course, trip))

    for result in (course, trip):
        for question in Question:
            rl = result.rl_mean(question.value)
            gold = result.gold_mean(question.value)
            # Both systems rate well above the scale midpoint...
            assert rl >= 2.5 and gold >= 2.5
            # ...and RL-Planner stays within one point of gold.
            assert gold - rl <= 1.0
    # Overall: gold >= RL (the paper's consistent ordering).
    assert course.gold_mean(Question.OVERALL.value) >= course.rl_mean(
        Question.OVERALL.value
    ) - 0.05
    assert trip.gold_mean(Question.OVERALL.value) >= trip.rl_mean(
        Question.OVERALL.value
    ) - 0.05


@pytest.mark.benchmark(group="table4")
def test_table4_paired_significance(benchmark, record_table):
    """The paired protocol with sign tests / bootstrap CIs: RL-Planner
    is 'highly comparable' to gold — every per-question 95% CI on the
    (gold - RL) rating gap stays below one point."""
    from repro.core.planner import RLPlanner
    from repro.userstudy import StudyProtocol

    def run():
        dataset = load("njit_dsct", seed=0)
        planner = RLPlanner(
            dataset.catalog, dataset.task,
            dataset.default_config, mode=dataset.mode,
        )
        planner.fit(start_item_ids=[dataset.default_start])
        rl_plan = planner.recommend(dataset.default_start)
        protocol = StudyProtocol(
            dataset.task, mode=dataset.mode, num_raters=25, seed=0
        )
        return protocol.run([(rl_plan, dataset.gold_plan)])

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            q.value,
            c.rl_mean,
            c.gold_mean,
            c.mean_gap,
            f"[{c.gap_ci_low:.2f}, {c.gap_ci_high:.2f}]",
            f"{c.sign_test_p:.3f}",
        ]
        for q, c in results.items()
    ]
    record_table(
        render_table(
            ["question", "RL", "Gold", "gap", "95% CI", "sign p"],
            rows,
            title="Table IV (paired): gold-vs-RL gap with significance",
        )
    )
    for comparison in results.values():
        assert comparison.comparable  # CI upper bound < 1 point
