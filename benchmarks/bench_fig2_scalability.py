"""Figure 2: scalability of learning and recommendation.

(a)(c) policy-learning time grows linearly with the number of episodes;
(b)(d) the time to recommend a plan from a learned policy stays
interactive (sub-second) regardless of how long training ran.
"""

from __future__ import annotations

import pytest

from repro.analysis import measure_scalability, render_table
from repro.core.planner import RLPlanner
from repro.datasets import load

EPISODE_GRID = (100, 200, 300, 500, 1000)


def _render(result):
    rows = [
        [p.episodes, p.learn_seconds, p.recommend_seconds * 1000.0]
        for p in result.points
    ]
    return render_table(
        ["episodes (N)", "learn time (s)", "recommend time (ms)"],
        rows,
        title=f"Figure 2 — scalability on {result.dataset}",
        precision=3,
    )


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("key", ["njit_dsct", "nyc"])
def test_fig2_learning_time_linear(benchmark, record_table, key):
    """Fig. 2(a)(c): learning time vs N is (close to) linear."""
    dataset = load(key, seed=0, with_gold=False)
    result = benchmark.pedantic(
        measure_scalability,
        args=(dataset,),
        kwargs={"episode_grid": EPISODE_GRID},
        rounds=1,
        iterations=1,
    )
    record_table(_render(result))
    # Linearity: strong positive correlation and increasing totals.
    assert result.learning_linearity() > 0.95
    assert result.learning_slope() > 0
    xs, ys = result.learn_series()
    assert ys[-1] > ys[0]


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("key", ["njit_dsct", "nyc"])
def test_fig2_recommend_time_interactive(benchmark, record_table, key):
    """Fig. 2(b)(d): recommendation is interactive at any N."""
    dataset = load(key, seed=0, with_gold=False)
    result = benchmark.pedantic(
        measure_scalability,
        args=(dataset,),
        kwargs={"episode_grid": (100, 500, 1000)},
        rounds=1,
        iterations=1,
    )
    record_table(_render(result))
    # "only a few seconds ... can be used in interactive mode";
    # our Q-tables are small, so well under a second.
    assert result.max_recommend_seconds() < 1.0


@pytest.mark.benchmark(group="fig2")
def test_fig2_single_recommendation_microbench(benchmark):
    """Micro-benchmark of one recommendation call (pytest-benchmark
    timing semantics: many rounds of the measured callable)."""
    dataset = load("njit_dsct", seed=0, with_gold=False)
    planner = RLPlanner(
        dataset.catalog, dataset.task, dataset.default_config,
        mode=dataset.mode,
    )
    planner.fit(start_item_ids=[dataset.default_start], episodes=200)
    benchmark(planner.recommend, dataset.default_start)
