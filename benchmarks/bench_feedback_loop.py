"""Feedback-loop bench (the paper's Section VI future work, built).

Protocol: a simulated user has a hidden dislike set (items they will
always rate 1) and a hidden like set (always rated 5).  Each round the
session proposes a plan, the user rates the plan's items from their
hidden taste, and the session replans.  Measured: how fast disliked
items disappear from proposals and whether plan quality survives the
personalization pressure.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.datasets import load
from repro.feedback import Feedback, InteractiveSession

ROUNDS = 4


def _simulate():
    dataset = load("njit_dsct", seed=0, with_gold=False)
    session = InteractiveSession(
        dataset.catalog,
        dataset.task,
        dataset.default_config.replace(episodes=200),
        mode=dataset.mode,
        replan_episodes=100,
    )

    first = session.propose(dataset.default_start)
    # Hidden taste: the user dislikes three non-start items of the
    # first proposal and likes the rest of it.
    candidates = [
        item.item_id
        for item in first.plan.items
        if item.item_id != dataset.default_start
    ]
    disliked = set(candidates[:3])
    liked = set(candidates[3:])

    trace = [
        (
            0,
            first.score.value,
            len(disliked & set(first.plan.item_ids)),
        )
    ]
    for round_no in range(1, ROUNDS):
        plan = session.last_plan()
        signals = []
        for item in plan.items:
            if item.item_id in disliked:
                signals.append(Feedback.rating(item.item_id, 1))
            elif item.item_id in liked:
                signals.append(Feedback.rating(item.item_id, 5))
        session.give_feedback(signals)
        proposal = session.propose(dataset.default_start)
        trace.append(
            (
                round_no,
                proposal.score.value,
                len(disliked & set(proposal.plan.item_ids)),
            )
        )
    return trace, len(disliked)


@pytest.mark.benchmark(group="feedback")
def test_feedback_loop_removes_disliked_items(benchmark, record_table):
    trace, n_disliked = benchmark.pedantic(
        _simulate, rounds=1, iterations=1
    )
    record_table(
        render_table(
            ["round", "plan score", "disliked items in plan"],
            [[r, score, hits] for r, score, hits in trace],
            title=f"Feedback loop — {n_disliked} hidden dislikes, "
                  f"{ROUNDS} rounds",
        )
    )
    first_hits = trace[0][2]
    last_hits = trace[-1][2]
    assert first_hits == n_disliked  # round 0 is taken as the taste seed
    assert last_hits == 0  # feedback purged every disliked item
    assert trace[-1][1] > 0  # quality survives personalization
