"""Tables XII-XIV: Univ-2 M.S. DS robustness sweeps.

Table XII sweeps N, alpha, gamma, and the coverage threshold epsilon;
Table XIII sweeps the six sub-discipline weights w1..w6; Table XIV
sweeps the starting point (STATS 263 / MS&E 237) and (delta, beta).

Shape under test: the Univ-2 instance — the hardest one, with
per-category unit minima — keeps producing valid, well-scoring plans
across the sweeps (the paper's scores hover at 10-12 of 15), with the
starting point having little effect.
"""

from __future__ import annotations

import pytest

from repro.analysis import SweepRunner, render_sweep, render_table
from repro.core.config import RewardWeights
from repro.datasets import load
from repro.domains.courses import UNIV2_CATEGORIES

RUNS = 2

# Table XIII's three w1..w6 settings (in sub-discipline order a..f).
W16_SETTINGS = (
    (0.2, 0.01, 0.16, 0.4, 0.01, 0.22),
    (0.21, 0.01, 0.15, 0.41, 0.02, 0.2),
    (0.25, 0.01, 0.15, 0.4, 0.01, 0.18),
)


@pytest.fixture(scope="module")
def runner():
    dataset = load("univ2_ds", seed=0, with_gold=False)
    return SweepRunner(dataset, runs=RUNS)


def _assert_robust(result, best=15.0):
    series = result.series("rl_avg_sim")
    positive = [value for value in series if value > 0]
    assert len(positive) >= max(1, len(series) - 2)
    assert all(0 < value <= best + 1e-9 for value in positive)
    # The paper's Univ-2 scores stay at/above two thirds of gold.
    assert max(series) >= (2.0 / 3.0) * best


@pytest.mark.benchmark(group="table12-14")
def test_table12_episodes(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_episodes, args=((50, 100, 200, 300),), rounds=1,
        iterations=1,
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table12-14")
def test_table12_learning_rate(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_learning_rate, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table12-14")
def test_table12_discount(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_discount, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table12-14")
def test_table12_coverage_threshold(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_coverage_threshold, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)


@pytest.mark.benchmark(group="table12-14")
def test_table13_category_weights(benchmark, record_table, runner):
    def sweep():
        base = runner.dataset.default_config
        rows = []
        for setting in W16_SETTINGS:
            weights = RewardWeights.with_categories(
                dict(zip(UNIV2_CATEGORIES, setting)),
                delta=base.weights.delta,
                beta=base.weights.beta,
            )
            score = runner.score_config(base.replace(weights=weights))
            rows.append((setting, score))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        render_table(
            ["w1..w6", "RL (AvgSim)"],
            [[str(setting), score] for setting, score in rows],
            title="Table XIII — Univ-2 sub-discipline weight sweep",
        )
    )
    assert all(score > 0 for _, score in rows)
    assert max(score for _, score in rows) >= 10.0


@pytest.mark.benchmark(group="table12-14")
def test_table14_starting_points(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_starting_points, args=(["STATS 263", "MS&E 237"],),
        rounds=1, iterations=1,
    )
    record_table(render_sweep(result))
    # "not much variation in the score with a changing start point".
    scores = result.series("rl_avg_sim")
    assert all(value > 0 for value in scores)
    assert max(scores) - min(scores) <= 7.5


@pytest.mark.benchmark(group="table12-14")
def test_table14_delta_beta(benchmark, record_table, runner):
    result = benchmark.pedantic(
        runner.sweep_delta_beta, rounds=1, iterations=1
    )
    record_table(render_sweep(result))
    _assert_robust(result)
