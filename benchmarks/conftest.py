"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper: it prints the
rows/series to stdout and also writes them under
``benchmarks/results/`` so artifacts survive the run.  Benches assert
the paper's *shape* (who wins, rough factors, trends) — absolute
numbers differ because the substrate is synthetic.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benches persist their rendered tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir, request):
    """Callable(text) that prints a table and writes it to results/."""

    def _record(text: str) -> None:
        print()
        print(text)
        path = results_dir / f"{request.node.name}.txt"
        path.write_text(text + "\n")

    return _record
