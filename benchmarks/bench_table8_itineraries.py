"""Table VIII: RL-Planner itineraries with their threshold compliance.

The paper lists example NYC/Paris itineraries together with the time
threshold, distance threshold, and POI types each one meets.  This
bench regenerates the same table: itineraries under several
(time, distance) settings with their measured totals — every reported
itinerary must actually meet the thresholds it claims.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core.planner import RLPlanner
from repro.core.validation import plan_travel_distance_km
from repro.datasets import load
from repro.domains.trips import CITIES, build_trip_task

SETTINGS = {
    "nyc": [(6.0, 4.0), (8.0, 5.0)],
    "paris": [(6.0, 5.0), (5.0, 5.0)],
}


def _itineraries():
    out = []
    for city, settings in SETTINGS.items():
        dataset = load(city, seed=0, with_gold=False)
        for time_budget, distance in settings:
            task = build_trip_task(
                CITIES[city], dataset.catalog,
                time_budget=time_budget, distance_threshold=distance,
            )
            planner = RLPlanner(
                dataset.catalog, task, dataset.default_config,
                mode=dataset.mode,
            )
            planner.fit(start_item_ids=[dataset.default_start],
                        episodes=300)
            plan, score = planner.recommend_scored(dataset.default_start)
            out.append((city, time_budget, distance, plan, score))
    return out


@pytest.mark.benchmark(group="table8")
def test_table8_itineraries(benchmark, record_table):
    results = benchmark.pedantic(_itineraries, rounds=1, iterations=1)

    rows = []
    for city, t, d, plan, score in results:
        themes = [
            str(poi.meta("primary_theme", "?")) for poi in plan.items
        ]
        measured_d = plan_travel_distance_km(plan)
        rows.append(
            [
                city,
                " -> ".join(poi.name for poi in plan.items),
                f"<= {t:g} (got {plan.total_credits:.1f})",
                f"<= {d:g} (got {measured_d:.1f})",
                "[" + ", ".join(themes) + "]",
            ]
        )
    record_table(
        render_table(
            ["city", "itinerary", "time (h)", "distance (km)",
             "POI themes"],
            rows,
            title="Table VIII — itineraries and threshold compliance",
        )
    )

    for city, t, d, plan, score in results:
        assert plan.total_credits <= t + 1e-9
        assert plan_travel_distance_km(plan) <= d + 1e-9
        assert score.is_valid, score.report.describe()
        # The paper's gap rule: no two consecutive same-theme POIs.
        for a, b in zip(plan.items, plan.items[1:]):
            assert not (a.topics & b.topics)
