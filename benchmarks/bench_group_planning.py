"""Group-planning bench (extension; related-work direction of Section V).

Three members with partially overlapping interests share one DS-CT
course plan.  Measured per aggregation strategy: plan validity, group
score, and the satisfaction profile — checking the structural
trade-off the group literature predicts: UNION maximizes mean
satisfaction, INTERSECTION/MAJORITY trade coverage breadth for
focus on common interests.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core.env import DomainMode
from repro.datasets import load
from repro.group import AggregationStrategy, GroupMember, GroupPlanner

EPISODES = 200


def _run():
    dataset = load("njit_dsct", seed=0, with_gold=False)
    vocabulary = list(dataset.catalog.topic_vocabulary)
    third = len(vocabulary) // 3
    members = [
        GroupMember("ml_person", frozenset(vocabulary[: 2 * third])),
        GroupMember("systems_person", frozenset(vocabulary[third:])),
        GroupMember(
            "generalist",
            frozenset(vocabulary[::2]),
            weight=2.0,
        ),
    ]
    planner = GroupPlanner(
        dataset.catalog,
        dataset.task,
        members,
        config=dataset.default_config,
        mode=DomainMode.COURSE,
    )
    outcomes = planner.compare_strategies(
        dataset.default_start, episodes=EPISODES
    )
    return planner, outcomes


@pytest.mark.benchmark(group="group")
def test_group_planning_strategies(benchmark, record_table):
    planner, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for strategy, outcome in outcomes.items():
        sat = outcome.satisfaction
        rows.append(
            [
                strategy.value,
                outcome.score.value,
                "valid" if outcome.score.is_valid else "invalid",
                sat.mean,
                sat.minimum,
                sat.disagreement,
            ]
        )
    record_table(
        render_table(
            ["strategy", "score", "constraints", "mean sat",
             "min sat", "disagreement"],
            rows,
            title="Group planning on Univ-1 DS-CT (3 members)",
        )
    )

    for outcome in outcomes.values():
        assert outcome.score.is_valid
        assert outcome.score.value > 0
        assert 0.0 <= outcome.satisfaction.mean <= 1.0

    fair = planner.best_for_fairness(outcomes)
    assert fair.satisfaction.minimum == max(
        o.satisfaction.minimum for o in outcomes.values()
    )
