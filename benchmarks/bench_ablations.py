"""Ablation benches for the design choices DESIGN.md calls out.

Not tables from the paper — these quantify the load-bearing pieces of
the reproduction:

* average vs minimum similarity aggregation in Eq. 2 (the paper studies
  both and finds either can win; we check both work),
* gate-based action masking on/off (our operationalization of
  Section III-B-1's "valid action" wording — off reproduces the naive
  reading and hurts validity),
* the lookahead recommendation vs the literal Q-only traversal,
* reward-greedy vs Q-greedy behaviour policy during learning.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, summarize
from repro.core.config import RecommendationMode
from repro.core.planner import RLPlanner
from repro.core.sarsa import ActionSelection
from repro.core.similarity import SimilarityMode
from repro.datasets import load

RUNS = 3
EPISODES = 200


def _mean_score(dataset, config, selection=ActionSelection.REWARD_GREEDY):
    scores = []
    valid = 0
    for run in range(RUNS):
        planner = RLPlanner(
            dataset.catalog,
            dataset.task,
            config.replace(seed=run),
            mode=dataset.mode,
            selection=selection,
        )
        planner.fit(start_item_ids=[dataset.default_start],
                    episodes=EPISODES)
        _, score = planner.recommend_scored(dataset.default_start)
        scores.append(score.value)
        valid += score.is_valid
    return summarize(scores).mean, valid / RUNS


@pytest.mark.benchmark(group="ablations")
def test_ablation_similarity_mode(benchmark, record_table):
    """Avg vs Min similarity: both viable, as in the paper."""
    def run():
        dataset = load("njit_dsct", seed=0, with_gold=False)
        rows = []
        for mode in (SimilarityMode.AVERAGE, SimilarityMode.MINIMUM):
            config = dataset.default_config.replace(similarity=mode)
            mean, validity = _mean_score(dataset, config)
            rows.append([mode.value, mean, f"{validity:.0%}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        render_table(
            ["similarity", "mean score", "validity"],
            rows,
            title="Ablation — Eq. 2 similarity aggregation (DS-CT)",
        )
    )
    for _, mean, _ in rows:
        assert mean > 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_action_masking(benchmark, record_table):
    """Theta-gate masking on vs off: masking protects validity."""
    def run():
        dataset = load("univ2_ds", seed=0, with_gold=False)
        rows = []
        for masked in (True, False):
            config = dataset.default_config.replace(
                mask_invalid_actions=masked
            )
            mean, validity = _mean_score(dataset, config)
            rows.append([f"mask={masked}", mean, validity])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        render_table(
            ["setting", "mean score", "validity"],
            [[r[0], r[1], f"{r[2]:.0%}"] for r in rows],
            title="Ablation — gate-based action masking (Univ-2)",
        )
    )
    masked_row, unmasked_row = rows
    assert masked_row[2] >= unmasked_row[2]  # validity never worse
    assert masked_row[1] >= unmasked_row[1]  # score never worse


@pytest.mark.benchmark(group="ablations")
def test_ablation_recommendation_mode(benchmark, record_table):
    """Lookahead vs the literal Q-only traversal of Algorithm 1."""
    def run():
        dataset = load("njit_dsct", seed=0, with_gold=False)
        rows = []
        for mode in (RecommendationMode.LOOKAHEAD,
                     RecommendationMode.Q_ONLY):
            config = dataset.default_config.replace(recommendation=mode)
            mean, validity = _mean_score(dataset, config)
            rows.append([mode.value, mean, f"{validity:.0%}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        render_table(
            ["recommendation", "mean score", "validity"],
            rows,
            title="Ablation — Q-table traversal strategy (DS-CT)",
        )
    )
    lookahead, q_only = rows
    assert lookahead[1] >= q_only[1]  # lookahead de-aliases the state


@pytest.mark.benchmark(group="ablations")
def test_ablation_behaviour_policy(benchmark, record_table):
    """Reward-greedy (paper) vs epsilon-greedy-on-Q learning."""
    def run():
        dataset = load("njit_dsct", seed=0, with_gold=False)
        rows = []
        for selection in (ActionSelection.REWARD_GREEDY,
                          ActionSelection.Q_GREEDY):
            mean, validity = _mean_score(
                dataset, dataset.default_config, selection=selection
            )
            rows.append([selection.value, mean, f"{validity:.0%}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        render_table(
            ["behaviour policy", "mean score", "validity"],
            rows,
            title="Ablation — learning behaviour policy (DS-CT)",
        )
    )
    for _, mean, _ in rows:
        assert mean > 0
