"""Figure 1: RL-Planner vs OMEGA vs EDA vs the gold standard.

The paper's headline result: averaged over repeated runs, RL-Planner's
plan scores sit close to the handcrafted gold standard and above both
automated baselines, while OMEGA — blind to the constraints — scores
near zero.  (a) covers the four course-planning datasets, (b) the two
trip datasets.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_planners, render_table
from repro.datasets import load

RUNS = 5

COURSE_DATASETS = ("njit_dsct", "njit_cyber", "njit_cs", "univ2_ds")
TRIP_DATASETS = ("nyc", "paris")


def _run_comparison(keys, episodes=None):
    results = []
    for key in keys:
        dataset = load(key, seed=0)
        results.append(compare_planners(dataset, runs=RUNS,
                                        episodes=episodes))
    return results


def _render(results, title):
    rows = []
    for result in results:
        rows.append(
            [
                result.dataset,
                result.rl_planner.mean,
                result.eda.mean,
                result.omega.mean,
                result.gold,
                f"{result.rl_validity:.0%}",
            ]
        )
    return render_table(
        ["dataset", "RL-Planner", "EDA", "OMEGA", "Gold",
         "RL validity"],
        rows,
        title=title,
    )


@pytest.mark.benchmark(group="fig1")
def test_fig1_course(benchmark, record_table):
    """Fig. 1(a): course planning across the four degree programs."""
    results = benchmark.pedantic(
        _run_comparison, args=(COURSE_DATASETS,), rounds=1, iterations=1
    )
    record_table(_render(results, f"Figure 1(a) — course planning "
                                  f"(avg of {RUNS} runs)"))
    for result in results:
        # Shape: RL-Planner beats both baselines and tracks gold.
        assert result.rl_planner.mean >= result.eda.mean
        assert result.rl_planner.mean > result.omega.mean
        assert result.rl_planner.mean >= 0.6 * result.gold
        # OMEGA's constraint blindness: near-zero scores.
        assert result.omega.mean <= 0.25 * result.gold


@pytest.mark.benchmark(group="fig1")
def test_fig1_trip(benchmark, record_table):
    """Fig. 1(b): trip planning for NYC and Paris."""
    results = benchmark.pedantic(
        _run_comparison, args=(TRIP_DATASETS,), rounds=1, iterations=1
    )
    record_table(_render(results, f"Figure 1(b) — trip planning "
                                  f"(avg of {RUNS} runs)"))
    for result in results:
        assert result.rl_planner.mean >= result.eda.mean
        assert result.rl_planner.mean > result.omega.mean
        assert result.rl_planner.mean >= 0.8 * result.gold
        assert result.omega.mean <= 0.25 * result.gold
