"""Route-optimization bench (extension).

Example 2 wants itineraries that are "easily commutable"; the
post-processor in :mod:`repro.domains.trips.routing` shortens the walk
without touching the plan's composition.  Measured: distance before vs
after across RL-Planner itineraries for both cities, with the template
score asserted invariant.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core.planner import RLPlanner
from repro.core.scoring import PlanScorer
from repro.datasets import load
from repro.domains.trips import optimize_route


def _run():
    rows = []
    for city in ("nyc", "paris"):
        dataset = load(city, seed=0, with_gold=False)
        scorer = PlanScorer(dataset.task, mode=dataset.mode)
        for seed in range(3):
            planner = RLPlanner(
                dataset.catalog,
                dataset.task,
                dataset.default_config.replace(seed=seed),
                mode=dataset.mode,
            )
            planner.fit(
                start_item_ids=[dataset.default_start], episodes=200
            )
            plan = planner.recommend(dataset.default_start)
            optimized, before, after = optimize_route(
                plan, dataset.task
            )
            rows.append(
                [
                    city,
                    seed,
                    before,
                    after,
                    scorer.raw_score(plan),
                    scorer.raw_score(optimized),
                    scorer.score(optimized).is_valid,
                ]
            )
    return rows


@pytest.mark.benchmark(group="routing")
def test_route_optimization(benchmark, record_table):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table(
        render_table(
            ["city", "seed", "km before", "km after", "score before",
             "score after", "valid"],
            rows,
            title="Route optimization of RL-Planner itineraries",
        )
    )
    for _, _, before, after, score_before, score_after, valid in rows:
        assert after <= before + 1e-9      # never longer
        assert score_after == score_before  # Eq. 7 score untouched
        assert valid                        # still satisfies P_hard
    # Across the batch the optimizer finds at least some slack.
    total_before = sum(r[2] for r in rows)
    total_after = sum(r[3] for r in rows)
    assert total_after <= total_before
