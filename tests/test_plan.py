"""Unit tests for plans and the incremental builder (repro.core.plan)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import PlanningError
from repro.core.items import ItemType
from repro.core.plan import Plan, PlanBuilder, plan_from_ids

from conftest import make_item


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("a", ItemType.PRIMARY, topics={"t1", "t2"}),
            make_item("b", ItemType.SECONDARY, topics={"t2", "t3"}),
            make_item("c", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


class TestPlanBuilder:
    def test_incremental_state(self, catalog):
        builder = PlanBuilder(catalog)
        assert len(builder) == 0 and builder.last_item is None
        builder.add_by_id("a")
        assert builder.total_credits == 3.0
        assert builder.covered_topics == frozenset({"t1", "t2"})
        builder.add_by_id("b")
        assert builder.covered_topics == frozenset({"t1", "t2", "t3"})
        assert builder.positions == {"a": 0, "b": 1}
        assert builder.last_item.item_id == "b"

    def test_duplicate_add_rejected(self, catalog):
        builder = PlanBuilder(catalog)
        builder.add_by_id("a")
        with pytest.raises(PlanningError):
            builder.add_by_id("a")

    def test_new_topics_is_set_difference(self, catalog):
        builder = PlanBuilder(catalog)
        builder.add_by_id("a")
        assert builder.new_topics(catalog["b"]) == frozenset({"t3"})
        assert builder.new_topics(catalog["c"]) == frozenset({"t4"})

    def test_remaining_items_shrink(self, catalog):
        builder = PlanBuilder(catalog)
        builder.add_by_id("b")
        remaining = {i.item_id for i in builder.remaining_items()}
        assert remaining == {"a", "c"}

    def test_reset_clears_everything(self, catalog):
        builder = PlanBuilder(catalog)
        builder.add_by_id("a")
        builder.reset()
        assert len(builder) == 0
        assert builder.total_credits == 0.0
        assert builder.covered_topics == frozenset()

    def test_build_freezes_snapshot(self, catalog):
        builder = PlanBuilder(catalog)
        builder.add_by_id("a")
        plan = builder.build()
        builder.add_by_id("b")
        assert len(plan) == 1  # the snapshot did not grow


class TestPlan:
    def test_metrics(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b", "c"])
        assert plan.total_credits == 9.0
        assert plan.num_primary == 1 and plan.num_secondary == 2
        assert plan.type_sequence() == (
            ItemType.PRIMARY, ItemType.SECONDARY, ItemType.SECONDARY,
        )
        assert plan.item_ids == ("a", "b", "c")

    def test_topic_coverage(self, catalog):
        plan = plan_from_ids(catalog, ["a", "c"])
        # covers t1, t2, t4 out of ideal {t1, t3}.
        assert plan.topic_coverage_of(frozenset({"t1", "t3"})) == 0.5
        assert plan.topic_coverage_of(frozenset()) == 1.0

    def test_positions(self, catalog):
        plan = plan_from_ids(catalog, ["b", "a"])
        assert plan.positions() == {"b": 0, "a": 1}

    def test_describe_arrow_format(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        assert plan.describe() == "a:primary -> b:secondary"

    def test_indexing_and_iteration(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        assert plan[0].item_id == "a"
        assert [i.item_id for i in plan] == ["a", "b"]

    def test_credits_by_category(self):
        catalog = Catalog(
            [
                make_item("a", category="x"),
                make_item("b", category="x"),
                make_item("c", category="y"),
                make_item("d"),
            ]
        )
        plan = plan_from_ids(catalog, ["a", "b", "c", "d"])
        assert plan.credits_by_category() == {"x": 6.0, "y": 3.0}
