"""Tests for policy persistence (repro.core.serialization)."""

import json

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import ArtifactError, PlanningError
from repro.core.qtable import QTable
from repro.core.serialization import (
    CHECKSUM_KEY,
    load_policy,
    payload_checksum,
    policy_from_dict,
    policy_to_dict,
    read_policy_file,
    save_policy,
)

from conftest import make_item


@pytest.fixture
def catalog():
    return Catalog([make_item(i) for i in ("a", "b", "c")], name="cat")


@pytest.fixture
def table(catalog):
    table = QTable(catalog)
    table.set("a", "b", 1.5)
    table.set("b", "c", -0.25)
    table.update_count = 7
    return table


class TestChecksum:
    def test_writer_embeds_valid_checksum(self, table, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        data = json.loads(path.read_text())
        assert data[CHECKSUM_KEY] == payload_checksum(data)

    def test_checksum_survives_json_round_trip(self, table):
        # The canonical form must be identical before writing and
        # after re-parsing, or every load would "detect corruption".
        payload = policy_to_dict(
            table, training_state={"episode": 3, "big": 2**127}
        )
        reparsed = json.loads(json.dumps(payload, indent=2))
        assert payload_checksum(payload) == payload_checksum(reparsed)

    def test_tampered_value_detected(self, table, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        path.write_text(path.read_text().replace("1.5", "2.5"))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            read_policy_file(path)

    def test_file_without_checksum_still_loads(self, table, catalog, tmp_path):
        # Pre-integrity v2 files (and v1 files) carry no checksum.
        path = tmp_path / "legacy.json"
        payload = policy_to_dict(table)
        assert CHECKSUM_KEY not in payload
        path.write_text(json.dumps(payload))
        rebuilt = load_policy(path, catalog)
        assert rebuilt.to_entries() == table.to_entries()

    def test_unreadable_file_raises_artifact_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\xff\x8b not json")
        with pytest.raises(ArtifactError):
            read_policy_file(path)
        # ArtifactError stays catchable as PlanningError (taxonomy).
        assert issubclass(ArtifactError, PlanningError)


class TestRoundTrip:
    def test_dict_round_trip(self, table, catalog):
        data = policy_to_dict(table)
        rebuilt = policy_from_dict(data, catalog)
        assert rebuilt.get("a", "b") == 1.5
        assert rebuilt.get("b", "c") == -0.25
        assert rebuilt.update_count > 0

    def test_file_round_trip(self, table, catalog, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        rebuilt = load_policy(path, catalog)
        assert rebuilt.to_entries() == table.to_entries()

    def test_json_is_stable_and_readable(self, table, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        data = json.loads(path.read_text())
        assert data["catalog_name"] == "cat"
        assert data["format_version"] == 2
        assert len(data["entries"]) == 2

    def test_cross_catalog_load_skips_missing(self, table, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        other = Catalog([make_item("a"), make_item("b")], name="other")
        rebuilt = load_policy(path, other)
        assert rebuilt.get("a", "b") == 1.5  # survivor
        assert rebuilt.update_count > 0

    def test_strict_load_rejects_missing(self, table, tmp_path):
        path = tmp_path / "policy.json"
        save_policy(table, path)
        other = Catalog([make_item("a"), make_item("b")], name="other")
        with pytest.raises(PlanningError):
            load_policy(path, other, strict=True)


class TestMalformedInputs:
    def test_missing_file(self, catalog, tmp_path):
        with pytest.raises(PlanningError):
            load_policy(tmp_path / "nope.json", catalog)

    def test_not_json(self, catalog, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PlanningError):
            load_policy(path, catalog)

    def test_wrong_version(self, catalog):
        with pytest.raises(PlanningError):
            policy_from_dict(
                {"format_version": 99, "entries": []}, catalog
            )

    def test_missing_entries(self, catalog):
        with pytest.raises(PlanningError):
            policy_from_dict({"format_version": 1}, catalog)

    def test_malformed_entry(self, catalog):
        with pytest.raises(PlanningError):
            policy_from_dict(
                {
                    "format_version": 1,
                    "entries": [{"state": "a"}],
                },
                catalog,
            )

    def test_non_object_file(self, catalog, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PlanningError):
            load_policy(path, catalog)


class TestPlannerWorkflow:
    def test_train_save_load_recommend(self, tmp_path):
        from repro import RLPlanner
        from repro.datasets import load_toy

        dataset = load_toy(seed=0)
        planner = RLPlanner(
            dataset.catalog, dataset.task,
            dataset.default_config.replace(episodes=100),
        )
        planner.fit(start_item_ids=["m1"])
        original = planner.recommend("m1")

        path = tmp_path / "toy_policy.json"
        save_policy(planner.qtable, path)

        fresh = RLPlanner(
            dataset.catalog, dataset.task,
            dataset.default_config.replace(episodes=100),
        )
        fresh.adopt_policy(load_policy(path, dataset.catalog))
        restored = fresh.recommend("m1")
        assert restored.item_ids == original.item_ids


class TestZeroEntryRegression:
    def test_zero_valued_learned_entry_round_trips(self, catalog, tmp_path):
        """A learned Q-value of exactly 0.0 must survive save/load."""
        table = QTable(catalog)
        table.set("a", "b", 0.0)
        table.set("b", "c", 2.0)
        path = tmp_path / "policy.json"
        save_policy(table, path)
        loaded = load_policy(path, catalog)
        entries = loaded.to_entries()
        assert entries[("a", "b")] == 0.0
        assert entries[("b", "c")] == 2.0

    def test_all_zero_table_still_counts_as_trained(self, catalog):
        table = QTable(catalog)
        table.set("a", "b", 0.0)
        table.update_count = 5
        loaded = policy_from_dict(policy_to_dict(table), catalog)
        assert loaded.update_count == 5
        assert ("a", "b") in loaded.to_entries()


class TestV1Compatibility:
    def _v1_payload(self):
        return {
            "format_version": 1,
            "catalog_name": "cat",
            "num_items": 3,
            "entries": [
                {"state": "a", "action": "b", "q": 1.5},
                {"state": "b", "action": "c", "q": -0.25},
            ],
        }

    def test_v1_payload_still_loads(self, catalog):
        loaded = policy_from_dict(self._v1_payload(), catalog)
        assert loaded.get("a", "b") == 1.5
        assert loaded.get("b", "c") == -0.25

    def test_v1_without_counter_infers_trained(self, catalog):
        # Pre-counter files: any entry means the table was trained.
        loaded = policy_from_dict(self._v1_payload(), catalog)
        assert loaded.update_count == 2

    def test_v1_explicit_counter_respected(self, catalog):
        payload = self._v1_payload()
        payload["update_count"] = 9
        assert policy_from_dict(payload, catalog).update_count == 9


class TestTrainingState:
    def test_training_state_round_trips(self, table, catalog, tmp_path):
        from repro.core.serialization import (
            read_policy_file,
            training_state_from_dict,
        )

        state = {"episode": 40, "rng_state": {"state": 1}}
        path = tmp_path / "checkpoint.json"
        save_policy(table, path, training_state=state)
        data = read_policy_file(path)
        assert training_state_from_dict(data) == state
        # The same file still loads as a plain policy.
        assert policy_from_dict(data, catalog).get("a", "b") == 1.5

    def test_plain_policy_has_no_training_state(self, table, tmp_path):
        from repro.core.serialization import (
            read_policy_file,
            training_state_from_dict,
        )

        path = tmp_path / "policy.json"
        save_policy(table, path)
        assert training_state_from_dict(read_policy_file(path)) is None

    def test_malformed_training_state_rejected(self, table):
        from repro.core.serialization import training_state_from_dict

        payload = policy_to_dict(table)
        payload["training_state"] = "not-a-dict"
        with pytest.raises(PlanningError):
            training_state_from_dict(payload)
