"""Tests for the adaptive feedback loop (repro.feedback)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.items import ItemType
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction
from repro.datasets import load_toy
from repro.feedback import (
    Feedback,
    FeedbackAdjustedReward,
    FeedbackError,
    FeedbackStore,
    InteractiveSession,
    feedback_batch,
)

from conftest import make_item, make_task


class TestFeedbackModels:
    def test_binary(self):
        assert Feedback.binary("x", True).utility == 1.0
        assert Feedback.binary("x", False).utility == -1.0

    def test_rating_scale(self):
        assert Feedback.rating("x", 5).utility == 1.0
        assert Feedback.rating("x", 3).utility == 0.0
        assert Feedback.rating("x", 1).utility == -1.0

    def test_rating_off_scale_rejected(self):
        with pytest.raises(FeedbackError):
            Feedback.rating("x", 0)
        with pytest.raises(FeedbackError):
            Feedback.rating("x", 6)

    def test_distribution_expectation(self):
        fb = Feedback.distribution(
            "x", {-1.0: 0.2, 0.0: 0.3, 1.0: 0.5}
        )
        assert fb.utility == pytest.approx(0.3)

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(FeedbackError):
            Feedback.distribution("x", {1.0: 0.5})

    def test_distribution_levels_bounded(self):
        with pytest.raises(FeedbackError):
            Feedback.distribution("x", {2.0: 1.0})

    def test_empty_item_id_rejected(self):
        with pytest.raises(FeedbackError):
            Feedback.binary("", True)

    def test_feedback_batch(self):
        batch = feedback_batch({"a": 5, "b": 1})
        assert [f.item_id for f in batch] == ["a", "b"]
        assert [f.utility for f in batch] == [1.0, -1.0]


class TestFeedbackStore:
    def test_first_signal_sets_preference(self):
        store = FeedbackStore()
        store.add(Feedback.binary("x", True))
        assert store.preference("x") == 1.0
        assert store.count("x") == 1

    def test_exponential_smoothing(self):
        store = FeedbackStore(smoothing=0.5)
        store.add(Feedback.binary("x", True))    # 1.0
        store.add(Feedback.binary("x", False))   # 0.5*-1 + 0.5*1 = 0
        assert store.preference("x") == pytest.approx(0.0)

    def test_unrated_items_are_neutral(self):
        assert FeedbackStore().preference("never") == 0.0

    def test_rejected_and_endorsed(self):
        store = FeedbackStore()
        store.add_all(
            [Feedback.binary("bad", False), Feedback.binary("good", True)]
        )
        assert store.rejected_items() == ("bad",)
        assert store.endorsed_items() == ("good",)

    def test_reset(self):
        store = FeedbackStore()
        store.add(Feedback.binary("x", True))
        store.reset()
        assert len(store) == 0
        assert store.history() == ()

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(FeedbackError):
            FeedbackStore(smoothing=0.0)


class TestAdjustedReward:
    @pytest.fixture
    def setup(self):
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("s1", ItemType.SECONDARY, topics={"t2"}),
                make_item("s2", ItemType.SECONDARY, topics={"t3"}),
                make_item("p2", ItemType.PRIMARY, topics={"t4"}),
            ]
        )
        task = make_task()
        config = PlannerConfig(coverage_threshold=1.0)
        base = RewardFunction(task, config)
        store = FeedbackStore()
        adjusted = FeedbackAdjustedReward(base, store,
                                          feedback_weight=0.5)
        builder = PlanBuilder(catalog)
        builder.add_by_id("p1")
        return catalog, base, store, adjusted, builder

    def test_neutral_items_unchanged(self, setup):
        catalog, base, _, adjusted, builder = setup
        item = catalog["s1"]
        assert adjusted(builder, item) == base(builder, item)

    def test_endorsement_raises_reward(self, setup):
        catalog, base, store, adjusted, builder = setup
        store.add(Feedback.binary("s1", True))
        item = catalog["s1"]
        assert adjusted(builder, item) == pytest.approx(
            base(builder, item) + 0.5
        )

    def test_rejection_lowers_but_never_negative(self, setup):
        catalog, base, store, adjusted, builder = setup
        store.add(Feedback.binary("s1", False))
        item = catalog["s1"]
        assert 0.0 <= adjusted(builder, item) < base(builder, item)

    def test_theta_gate_not_laundered(self, setup):
        catalog, base, store, adjusted, builder = setup
        # s_dup adds no new ideal topic -> theta = 0 for both rewards,
        # regardless of glowing feedback.
        dup = make_item("dup", ItemType.SECONDARY, topics={"t1"})
        store.add(Feedback.binary("dup", True))
        assert base.coverage_gate(builder, dup) == 0
        assert adjusted(builder, dup) == 0.0

    def test_rejected_items_masked(self, setup):
        catalog, base, store, adjusted, builder = setup
        store.add(Feedback.binary("s1", False))
        masked = adjusted.mask_actions(builder, builder.remaining_items())
        assert all(item.item_id != "s1" for item in masked)

    def test_mask_falls_back_when_everything_rejected(self, setup):
        catalog, base, store, adjusted, builder = setup
        for item_id in ("s1", "s2", "p2"):
            store.add(Feedback.binary(item_id, False))
        masked = adjusted.mask_actions(builder, builder.remaining_items())
        assert masked  # never empty


class TestInteractiveSession:
    def test_loop_adapts_to_feedback(self):
        dataset = load_toy(seed=0)
        session = InteractiveSession(
            dataset.catalog,
            dataset.task,
            dataset.default_config.replace(episodes=150),
            mode=dataset.mode,
        )
        first = session.propose("m1")
        assert first.round_index == 0
        assert len(first.plan) == 6

        session.give_feedback([Feedback.rating("m2", 5)])
        second = session.propose("m1")
        assert second.round_index == 1
        assert len(session.rounds) == 2
        # Feedback ids recorded on the round they followed.
        assert "m2" in session.rounds[0].feedback_items

    def test_preference_summary(self):
        dataset = load_toy(seed=0)
        session = InteractiveSession(
            dataset.catalog, dataset.task,
            dataset.default_config.replace(episodes=50),
        )
        assert "no feedback" in session.preference_summary()
        session.give_feedback([Feedback.binary("m5", False)])
        assert "m5:-1.00" in session.preference_summary()

    def test_last_plan(self):
        dataset = load_toy(seed=0)
        session = InteractiveSession(
            dataset.catalog, dataset.task,
            dataset.default_config.replace(episodes=50),
        )
        assert session.last_plan() is None
        session.propose("m1")
        assert session.last_plan() is not None
