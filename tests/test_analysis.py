"""Tests for the experiment harness (repro.analysis)."""

import pytest

from repro.analysis import (
    SweepRunner,
    compare_planners,
    linear_fit,
    mean_confidence_interval,
    measure_scalability,
    pearson_r,
    render_sweep,
    render_table,
    run_transfer,
    run_user_study,
    summarize,
)
from repro.datasets import load_toy


@pytest.fixture(scope="module")
def toy():
    return load_toy(seed=0, with_gold=True)


class TestStats:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.n == 3
        assert summary.std == pytest.approx(1.0)

    def test_summarize_empty(self):
        assert summarize([]).n == 0

    def test_confidence_interval_contains_mean(self):
        lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_linear_fit_recovers_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0 * x + 1.0 for x in xs]
        slope, intercept = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_pearson_r_perfect_and_flat(self):
        xs = [1.0, 2.0, 3.0]
        assert pearson_r(xs, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert pearson_r(xs, [5.0, 5.0, 5.0]) == 0.0

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            pearson_r([1.0, 2.0], [1.0])


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "score"], [["rl", 1.234], ["eda", None]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.23" in text
        assert "—" in text

    def test_render_sweep(self, toy):
        runner = SweepRunner(toy, runs=1, episodes=20)
        result = runner.sweep_learning_rate(values=[0.5, 0.75])
        text = render_sweep(result)
        assert "learning_rate" in text
        assert "RL (AvgSim)" in text


class TestComparison:
    def test_compare_planners_shape(self, toy):
        result = compare_planners(toy, runs=2, episodes=30)
        rows = dict(result.as_rows())
        assert set(rows) == {
            "RL-Planner", "OMEGA", "EDA", "Gold Standard",
        }
        assert 0.0 <= result.rl_validity <= 1.0

    def test_user_study_runs(self, toy):
        result = run_user_study(toy, num_raters=10, seed=0, episodes=30)
        assert result.dataset == "toy"
        for row in result.ratings.values():
            assert 1.0 <= row["rl_planner"] <= 5.0
            assert 1.0 <= row["gold"] <= 5.0

    def test_transfer_between_same_catalog(self, toy):
        outcome = run_transfer(toy, toy, seed=0, episodes=30)
        assert outcome.entry_coverage == 1.0
        assert len(outcome.plan) > 0


class TestSweeps:
    def test_episode_sweep_uses_value_as_n(self, toy):
        runner = SweepRunner(toy, runs=1)
        result = runner.sweep_episodes(values=[10, 20])
        assert [p.value for p in result.points] == [10, 20]
        assert result.points[0].eda is None  # N not applicable to EDA

    def test_coverage_sweep_includes_eda(self, toy):
        runner = SweepRunner(toy, runs=1, episodes=20)
        result = runner.sweep_coverage_threshold(values=[1.0, 2.0])
        assert all(p.eda is not None for p in result.points)

    def test_weight_sweeps(self, toy):
        runner = SweepRunner(toy, runs=1, episodes=20)
        res = runner.sweep_type_weights(values=[(0.6, 0.4), (0.5, 0.5)])
        assert len(res.points) == 2
        res = runner.sweep_delta_beta(values=[(0.5, 0.5)])
        assert res.points[0].parameter == "delta_beta"

    def test_start_sweep(self, toy):
        runner = SweepRunner(toy, runs=1, episodes=20)
        result = runner.sweep_starting_points(values=["m1", "m3"])
        assert [p.value for p in result.points] == ["m1", "m3"]

    def test_best_point_selection(self, toy):
        runner = SweepRunner(toy, runs=1, episodes=20)
        result = runner.sweep_learning_rate(values=[0.5, 0.75])
        best = result.best()
        assert best.rl_avg_sim == max(result.series())


class TestScalability:
    def test_timing_points_and_linearity(self, toy):
        result = measure_scalability(
            toy, episode_grid=(10, 20, 40), recommend_repeats=2
        )
        xs, ys = result.learn_series()
        assert xs == [10, 20, 40]
        assert all(y > 0 for y in ys)
        assert result.max_recommend_seconds() < 1.0
        assert result.learning_slope() > 0


class TestTheorem1:
    def test_masked_battery_satisfies_all(self):
        from repro.analysis import verify_theorem1

        result = verify_theorem1(instances=4, episodes=60)
        assert result.instances == 4
        assert result.satisfaction_rate == 1.0
        assert "all 4 instances" in result.describe()

    def test_violation_counting(self):
        from repro.analysis.theorem1 import Theorem1Result

        result = Theorem1Result(
            instances=5, valid=3,
            violation_counts=(("credits", 2),),
        )
        assert result.satisfaction_rate == 0.6
        assert "credits: 2" in result.describe()

    def test_empty_battery(self):
        from repro.analysis.theorem1 import Theorem1Result

        assert Theorem1Result(0, 0, ()).satisfaction_rate == 0.0
