"""Tests for the Exact and Markov baselines."""

import pytest

from repro.baselines import ExactPlanner, MarkovPlanner
from repro.core.catalog import Catalog
from repro.core.env import DomainMode
from repro.core.exceptions import PlanningError
from repro.core.items import ItemType
from repro.core.scoring import PlanScorer
from repro.datasets import load_toy

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
            make_item("s3", ItemType.SECONDARY, topics={"t1"}),
        ]
    )


class TestExactPlanner:
    def test_finds_template_perfect_plan(self, catalog):
        task = make_task(ideal_topics=("t1", "t2", "t3", "t4"))
        planner = ExactPlanner(catalog, task)
        plan = planner.recommend("p1")
        score = PlanScorer(task).score(plan)
        assert score.value == 4.0  # exact match of a template
        assert score.is_valid

    def test_maximizes_ideal_coverage(self, catalog):
        # s3 only repeats t1; the exact planner must prefer s1/s2.
        task = make_task(ideal_topics=("t1", "t2", "t3", "t4"))
        plan = ExactPlanner(catalog, task).recommend("p1")
        assert "s3" not in plan.item_ids

    def test_toy_matches_gold_score(self):
        dataset = load_toy(seed=0, with_gold=True)
        plan = ExactPlanner(dataset.catalog, dataset.task).recommend("m1")
        scorer = PlanScorer(dataset.task)
        assert scorer.score(plan).value == scorer.score(
            dataset.gold_plan
        ).value == 6.0

    def test_infeasible_start_raises(self, catalog):
        task = make_task()
        # s1 is secondary; every template slot 0 is primary.
        with pytest.raises(PlanningError):
            ExactPlanner(catalog, task).recommend("s1")

    def test_unknown_start_raises(self, catalog):
        with pytest.raises(PlanningError):
            ExactPlanner(catalog, make_task()).recommend("ghost")

    def test_expansion_budget_respected(self, catalog):
        task = make_task(ideal_topics=("t1", "t2", "t3", "t4"))
        planner = ExactPlanner(catalog, task, max_expansions=100000)
        planner.recommend("p1")
        assert planner.expansions <= 100000


class TestMarkovPlanner:
    def test_follows_transition_counts(self, catalog):
        histories = [["p1", "s1", "p2", "s2"]] * 10
        planner = MarkovPlanner(
            catalog, make_task(), histories=histories, seed=0
        )
        plan = planner.recommend("p1")
        assert plan.item_ids[:4] == ("p1", "s1", "p2", "s2")

    def test_transition_probability(self, catalog):
        histories = [["p1", "s1"]] * 9
        planner = MarkovPlanner(
            catalog, make_task(), histories=histories,
            additive_smoothing=0.0,
        )
        assert planner.transition_probability("p1", "s1") == 1.0
        assert planner.transition_probability("s1", "p1") == 0.0

    def test_items_outside_catalog_ignored(self, catalog):
        histories = [["p1", "ghost", "s1"]]
        planner = MarkovPlanner(
            catalog, make_task(), histories=histories
        )
        plan = planner.recommend("p1")
        assert len(plan) == 4

    def test_constraint_blindness_on_real_data(self):
        """Like OMEGA, the Markov miner is blind to P_hard: across
        several starts its average gated score trails the gold
        reference badly (history likelihood != hard constraints)."""
        from repro.datasets import load_nyc

        dataset = load_nyc(seed=0, with_gold=False)
        scorer = PlanScorer(dataset.task, mode=DomainMode.TRIP)
        starts = [item.item_id for item in dataset.catalog.primaries()]
        scores = []
        for i, start in enumerate(starts):
            planner = MarkovPlanner(
                dataset.catalog,
                dataset.task,
                histories=dataset.itineraries,
                mode=DomainMode.TRIP,
                seed=i,
            )
            scores.append(scorer.score(planner.recommend(start)).value)
        mean = sum(scores) / len(scores)
        assert mean < 0.8 * scorer.gold_reference_score()

    def test_unknown_start_raises(self, catalog):
        with pytest.raises(PlanningError):
            MarkovPlanner(catalog, make_task()).recommend("ghost")
