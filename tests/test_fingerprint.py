"""Stability contract of the policy-registry fingerprints.

The registry is only as safe as its keys: identical planning universes
must collide (train once, serve everywhere) and any behaviour-changing
difference must separate (never serve a policy trained under other
constraints).  These tests pin both directions.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.env import DomainMode
from repro.core.items import Item, ItemType, Prerequisites, make_metadata
from repro.serving.fingerprint import (
    canonical_value,
    catalog_fingerprint,
    config_fingerprint,
    constraint_fingerprint,
    policy_key,
    short_key,
)

from conftest import make_item, make_task

pytestmark = pytest.mark.registry


def _catalog(order=("a", "b", "c"), name="cat", credits=3.0):
    items = {
        "a": Item(
            item_id="a",
            name="Alpha",
            item_type=ItemType.PRIMARY,
            credits=credits,
            topics=frozenset({"t1", "t2"}),
            metadata=make_metadata(lat=1.5, lon=2.5, popularity=7),
        ),
        "b": make_item("b", ItemType.SECONDARY, topics=("t2", "t3")),
        "c": make_item(
            "c",
            ItemType.PRIMARY,
            topics=("t3",),
            prereqs=Prerequisites.from_cnf([{"a"}, {"b", "a"}]),
        ),
    }
    return Catalog([items[k] for k in order], name=name)


class TestCatalogFingerprint:
    def test_item_order_does_not_matter(self):
        assert catalog_fingerprint(_catalog(("a", "b", "c"))) == (
            catalog_fingerprint(_catalog(("c", "a", "b")))
        )

    def test_display_names_do_not_matter(self):
        assert catalog_fingerprint(_catalog(name="x")) == (
            catalog_fingerprint(_catalog(name="y"))
        )

    def test_numpy_dtypes_do_not_matter(self):
        plain = _catalog(credits=3.0)
        f64 = _catalog(credits=np.float64(3.0))
        i64 = _catalog(credits=np.int64(3))
        assert catalog_fingerprint(plain) == catalog_fingerprint(f64)
        assert catalog_fingerprint(plain) == catalog_fingerprint(i64)

    def test_content_change_separates(self):
        assert catalog_fingerprint(_catalog(credits=3.0)) != (
            catalog_fingerprint(_catalog(credits=4.0))
        )

    def test_prerequisite_group_order_does_not_matter(self):
        base = make_item("z", prereqs=Prerequisites.from_cnf([{"a"}, {"b"}]))
        flipped = make_item(
            "z", prereqs=Prerequisites.from_cnf([{"b"}, {"a"}])
        )
        deps = [make_item("a"), make_item("b")]
        assert catalog_fingerprint(Catalog(deps + [base])) == (
            catalog_fingerprint(Catalog(deps + [flipped]))
        )

    def test_metadata_key_order_does_not_matter(self):
        first = make_item("a")
        meta_ab = Item(
            "m", "m", ItemType.PRIMARY, 3.0,
            metadata=(("lat", 1.0), ("lon", 2.0)),
        )
        meta_ba = Item(
            "m", "m", ItemType.PRIMARY, 3.0,
            metadata=(("lon", 2.0), ("lat", 1.0)),
        )
        assert catalog_fingerprint(Catalog([first, meta_ab])) == (
            catalog_fingerprint(Catalog([first, meta_ba]))
        )

    def test_timing_like_metadata_keys_participate(self):
        # The manifest hasher strips "seconds"/"created_at"-style *dict*
        # keys; item metadata rides as pair-lists precisely so that a
        # user key spelled the same way still lands in the fingerprint.
        first = make_item("a")
        with_meta = Item(
            "m", "m", ItemType.PRIMARY, 3.0,
            metadata=(("created_at", 123),),
        )
        without = Item("m", "m", ItemType.PRIMARY, 3.0)
        assert catalog_fingerprint(Catalog([first, with_meta])) != (
            catalog_fingerprint(Catalog([first, without]))
        )


class TestConstraintFingerprint:
    def test_same_task_same_hash(self):
        assert constraint_fingerprint(make_task()) == (
            constraint_fingerprint(make_task())
        )

    def test_gap_separates(self):
        assert constraint_fingerprint(make_task(gap=1)) != (
            constraint_fingerprint(make_task(gap=2))
        )

    def test_credit_budget_separates(self):
        assert constraint_fingerprint(make_task(min_credits=12.0)) != (
            constraint_fingerprint(make_task(min_credits=15.0))
        )

    def test_topic_order_does_not_matter(self):
        assert constraint_fingerprint(
            make_task(ideal_topics=("t1", "t2", "t3"))
        ) == constraint_fingerprint(make_task(ideal_topics=("t3", "t1", "t2")))

    def test_template_permutation_order_does_not_matter(self):
        forward = make_task(
            template_labels=[["P", "S", "P", "S"], ["P", "P", "S", "S"]]
        )
        backward = make_task(
            template_labels=[["P", "P", "S", "S"], ["P", "S", "P", "S"]]
        )
        assert constraint_fingerprint(forward) == (
            constraint_fingerprint(backward)
        )


class TestConfigFingerprint:
    def test_same_config_same_hash(self):
        assert config_fingerprint(PlannerConfig(seed=3)) == (
            config_fingerprint(PlannerConfig(seed=3))
        )

    def test_every_knob_separates(self):
        base = PlannerConfig(seed=3)
        for change in (
            {"episodes": base.episodes + 1},
            {"learning_rate": 0.33},
            {"discount": 0.5},
            {"coverage_threshold": 0.123},
            {"exploration": 0.42},
            {"seed": 4},
        ):
            assert config_fingerprint(base) != config_fingerprint(
                base.replace(**change)
            ), change


class TestPolicyKey:
    def test_mode_participates(self, toy_dataset):
        course = policy_key(
            toy_dataset.catalog, toy_dataset.task,
            toy_dataset.default_config, DomainMode.COURSE,
        )
        trip = policy_key(
            toy_dataset.catalog, toy_dataset.task,
            toy_dataset.default_config, DomainMode.TRIP,
        )
        assert course != trip

    def test_dataset_surface_matches_direct_derivation(self, toy_dataset):
        assert toy_dataset.policy_key() == policy_key(
            toy_dataset.catalog, toy_dataset.task,
            toy_dataset.default_config, toy_dataset.mode,
        )

    def test_short_key_is_prefix(self, toy_dataset):
        key = toy_dataset.policy_key()
        assert key.startswith(short_key(key))
        assert len(short_key(key)) == 12

    def test_survives_process_restart(self, toy_dataset):
        """The key from a fresh interpreter equals the in-process key
        (no ``hash()`` randomization, no id()/repr leakage)."""
        script = (
            "from repro.datasets import load_toy;"
            "print(load_toy(seed=0, with_gold=True).policy_key())"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # force a different hash seed
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == toy_dataset.policy_key()


class TestCanonicalValue:
    def test_numpy_scalars_collapse(self):
        assert canonical_value(np.float64(1.5)) == 1.5
        assert canonical_value(np.int32(7)) == 7
        assert canonical_value(np.bool_(True)) is True

    def test_mappings_become_sorted_pairs(self):
        assert canonical_value({"b": 1, "a": 2}) == [["a", 2], ["b", 1]]

    def test_sets_sort(self):
        assert canonical_value({3, 1, 2}) == [1, 2, 3]

    def test_unrepresentable_raises(self):
        with pytest.raises(TypeError):
            canonical_value(object())
