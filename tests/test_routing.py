"""Tests for itinerary route optimization (repro.domains.trips.routing)."""

import pytest

from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.items import Item, ItemType, make_metadata
from repro.core.catalog import Catalog
from repro.core.plan import plan_from_ids
from repro.core.scoring import PlanScorer
from repro.core.env import DomainMode
from repro.core.validation import plan_travel_distance_km
from repro.domains.trips import (
    gold_trip_plan,
    load_city,
    optimize_route,
    route_summary,
)


def _poi(poi_id, lat, lon, kind=ItemType.SECONDARY, theme="t"):
    return Item(
        item_id=poi_id,
        name=poi_id,
        item_type=kind,
        credits=1.0,
        topics=frozenset({theme}),
        metadata=make_metadata(lat=lat, lon=lon, popularity=4.0),
    )


@pytest.fixture
def line_catalog():
    """POIs along a line; visiting them out of order wastes distance."""
    return Catalog(
        [
            _poi("a", 48.850, 2.35, ItemType.PRIMARY, "t0"),
            _poi("b", 48.852, 2.35, theme="t1"),
            _poi("c", 48.854, 2.35, theme="t2"),
            _poi("d", 48.856, 2.35, theme="t3"),
            _poi("e", 48.858, 2.35, ItemType.PRIMARY, "t4"),
        ]
    )


@pytest.fixture
def task():
    return TaskSpec(
        hard=HardConstraints.for_trips(
            10.0, 2, 3, theme_adjacency_gap=True
        ),
        soft=SoftConstraints(
            ideal_topics=frozenset({"t0", "t1", "t2", "t3", "t4"}),
            template=InterleavingTemplate.from_labels(
                [["P", "S", "S", "S", "P"]]
            ),
        ),
    )


class TestOptimizeRoute:
    def test_reduces_zigzag_distance(self, line_catalog, task):
        # a -> d -> c -> b -> e zigzags; a -> b -> c -> d -> e is direct.
        plan = plan_from_ids(line_catalog, ["a", "d", "c", "b", "e"])
        optimized, before, after = optimize_route(plan, task)
        assert after < before
        assert optimized.item_ids == ("a", "b", "c", "d", "e")

    def test_type_sequence_preserved(self, line_catalog, task):
        plan = plan_from_ids(line_catalog, ["a", "d", "c", "b", "e"])
        optimized, _, _ = optimize_route(plan, task)
        assert optimized.type_sequence() == plan.type_sequence()

    def test_score_invariant(self, line_catalog, task):
        scorer = PlanScorer(task, mode=DomainMode.TRIP)
        plan = plan_from_ids(line_catalog, ["a", "d", "c", "b", "e"])
        optimized, _, _ = optimize_route(plan, task)
        assert scorer.raw_score(optimized) == scorer.raw_score(plan)

    def test_start_is_pinned(self, line_catalog, task):
        plan = plan_from_ids(line_catalog, ["a", "d", "c", "b", "e"])
        optimized, _, _ = optimize_route(plan, task)
        assert optimized.item_ids[0] == "a"

    def test_short_plans_unchanged(self, line_catalog, task):
        plan = plan_from_ids(line_catalog, ["a", "b"])
        optimized, before, after = optimize_route(plan, task)
        assert optimized.item_ids == plan.item_ids
        assert before == after

    def test_geoless_plan_unchanged(self, task):
        from conftest import make_item

        catalog = Catalog([make_item("x"), make_item("y"),
                           make_item("z")])
        plan = plan_from_ids(catalog, ["x", "y", "z"])
        optimized, before, after = optimize_route(plan, task)
        assert optimized is plan
        assert before == after == 0.0

    def test_real_gold_itinerary_never_gets_longer(self):
        dataset = load_city("nyc", seed=0)
        plan = gold_trip_plan(
            dataset.catalog, dataset.task,
            start_item_id=dataset.default_start,
        )
        optimized, before, after = optimize_route(plan, dataset.task)
        assert after <= before + 1e-9
        # Optimization must keep the itinerary valid.
        from repro.core.validation import PlanValidator

        validator = PlanValidator(
            dataset.task.hard, credits_are_budget=True
        )
        assert validator.is_valid(optimized)


class TestRouteSummary:
    def test_legs(self, line_catalog):
        plan = plan_from_ids(line_catalog, ["a", "b", "c"])
        legs = route_summary(plan)
        assert [(f, t) for f, t, _ in legs] == [("a", "b"), ("b", "c")]
        assert sum(km for _, _, km in legs) == pytest.approx(
            plan_travel_distance_km(plan)
        )

    def test_geoless_returns_none(self):
        from conftest import make_item

        catalog = Catalog([make_item("x"), make_item("y")])
        plan = plan_from_ids(catalog, ["x", "y"])
        assert route_summary(plan) is None

    def test_single_item_empty(self, line_catalog):
        plan = plan_from_ids(line_catalog, ["a"])
        assert route_summary(plan) == []
