"""Durability suite: write-ahead delta journal + crash-safe restart.

Unit layer: record/checksum round trips, torn-tail tolerance vs
mid-stream corruption, snapshot compaction, quarantine fallback, and
the facade's seq-dedupe contract (at-least-once delivery composing
with exactly-once application).

Chaos layer (``-m chaos``): the restart drill the PR's acceptance
criterion names — a serving process is SIGKILL'd mid-churn and a fresh
process must replay the journal to *byte-identical* live-catalog state
and never serve a closed item afterwards.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core.deltas import (
    DELTA_CLOSE,
    DELTA_CREDIT_CHANGE,
    DELTA_REOPEN,
    CatalogDelta,
    CatalogView,
)
from repro.core.exceptions import ArtifactError, DeltaError
from repro.scenarios.churn import poisson_schedule
from repro.serving import (
    DeltaJournal,
    JOURNAL_SCHEMA,
    PlanningService,
    ServeRequest,
    SnapshotState,
)
from repro.serving.journal import record_checksum

pytestmark = pytest.mark.serving

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _delta(kind, item_id, seq=0, credits=None):
    return CatalogDelta(kind=kind, item_id=item_id, seq=seq, credits=credits)


def _record_line(seq, delta):
    payload = delta.to_dict()
    return json.dumps(
        {
            "schema": JOURNAL_SCHEMA,
            "seq": seq,
            "delta": payload,
            "checksum": record_checksum(seq, payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


@pytest.fixture
def service(toy_catalog, toy_task):
    return PlanningService(toy_catalog, toy_task, audit=False)


class TestJournalFile:
    def test_append_replay_roundtrip(self, tmp_path, toy_catalog):
        ids = sorted(toy_catalog.item_ids)
        with DeltaJournal(tmp_path) as journal:
            journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
            journal.append(_delta(DELTA_REOPEN, ids[0], seq=2))
            journal.append(
                _delta(DELTA_CREDIT_CHANGE, ids[1], seq=3, credits=4.0)
            )
        replay = DeltaJournal(tmp_path).replay()
        assert replay.snapshot is None
        assert replay.last_seq == 3
        assert not replay.torn_tail
        assert [d.seq for d in replay.deltas] == [1, 2, 3]
        assert [d.kind for d in replay.deltas] == [
            DELTA_CLOSE, DELTA_REOPEN, DELTA_CREDIT_CHANGE,
        ]
        assert replay.deltas[2].credits == 4.0

    def test_append_refuses_unstamped_deltas(self, tmp_path, toy_catalog):
        journal = DeltaJournal(tmp_path)
        with pytest.raises(DeltaError, match="positive seq"):
            journal.append(_delta(DELTA_CLOSE, sorted(toy_catalog.item_ids)[0]))

    def test_empty_journal_replays_empty(self, tmp_path):
        replay = DeltaJournal(tmp_path).replay()
        assert replay.empty and replay.last_seq == 0

    def test_torn_trailing_line_is_dropped(self, tmp_path, toy_catalog):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        journal.close()
        # A SIGKILL mid-append truncates the final line mid-JSON.
        with journal.journal_path.open("a") as handle:
            handle.write('{"schema": 1, "seq": 3, "del')
        replay = DeltaJournal(tmp_path).replay()
        assert replay.torn_tail
        assert [d.seq for d in replay.deltas] == [1, 2]
        assert replay.last_seq == 2

    def test_checksum_failing_final_line_raises(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        journal.close()
        # A structurally complete final record whose checksum fails is
        # bit rot on fsync'd+acked bytes, not a torn tail: silently
        # dropping it would lose an acked delta, so replay must raise
        # and let the caller quarantine.
        lines = journal.journal_path.read_text().splitlines()
        rotted = json.loads(lines[-1])
        rotted["checksum"] = "0" * 64
        lines[-1] = json.dumps(rotted, sort_keys=True, separators=(",", ":"))
        journal.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            DeltaJournal(tmp_path).replay()

    def test_structurally_incomplete_final_line_is_torn_tail(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.close()
        # Parses as JSON but is missing record fields: a torn tail
        # (never acked), dropped with a warning.
        with journal.journal_path.open("a") as handle:
            handle.write('{"schema": 1, "seq": 2}\n')
        replay = DeltaJournal(tmp_path).replay()
        assert replay.torn_tail
        assert [d.seq for d in replay.deltas] == [1]
        assert replay.last_seq == 1

    def test_midstream_corruption_raises_artifact_error(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        for seq, item in enumerate(ids[:3], start=1):
            journal.append(_delta(DELTA_CLOSE, item, seq=seq))
        journal.close()
        lines = journal.journal_path.read_text().splitlines()
        lines[0] = lines[0][:20]  # bit rot on a *non-final* record
        journal.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError, match="mid-stream corruption"):
            DeltaJournal(tmp_path).replay()

    def test_midstream_checksum_mismatch_raises(self, tmp_path, toy_catalog):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        journal.close()
        lines = journal.journal_path.read_text().splitlines()
        lines[0] = lines[0].replace(ids[0], ids[2])  # valid JSON, wrong hash
        journal.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            DeltaJournal(tmp_path).replay()

    def test_seq_regression_raises(self, tmp_path, toy_catalog):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=5))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=3))
        journal.close()
        with pytest.raises(ArtifactError, match="seq regression"):
            DeltaJournal(tmp_path).replay()

    def test_snapshot_truncates_tail_and_carries_watermark(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path, compact_every=2)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        assert journal.should_compact()
        journal.write_snapshot(
            {"closed": [ids[0], ids[1]], "credit_overrides": {}, "version": 2},
            seq=2,
        )
        assert journal.tail_records == 0
        assert journal.journal_path.read_text() == ""
        replay = DeltaJournal(tmp_path).replay()
        assert replay.snapshot == SnapshotState(
            closed=(ids[0], ids[1]),
            credit_overrides={},
            version=2,
            seq=2,
        )
        assert replay.deltas == () and replay.last_seq == 2

    def test_crash_between_snapshot_and_truncate_replays(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        journal.append(_delta(DELTA_REOPEN, ids[0], seq=3))
        pre_truncate_tail = journal.journal_path.read_text()
        journal.write_snapshot(
            {"closed": [ids[1]], "credit_overrides": {}, "version": 3},
            seq=3,
        )
        journal.close()
        # Simulate a crash after write_snapshot's atomic rename but
        # *before* the journal truncation: the new snapshot coexists
        # with the old tail, every record at/below the watermark.
        journal.journal_path.write_text(pre_truncate_tail)

        replay = DeltaJournal(tmp_path).replay()
        assert replay.snapshot is not None and replay.snapshot.seq == 3
        assert replay.snapshot.closed == (ids[1],)
        assert replay.stale_records == 3
        assert replay.deltas == ()
        assert replay.last_seq == 3
        assert not replay.torn_tail

    def test_stale_prefix_then_live_tail_replays_both(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        stale_tail = journal.journal_path.read_text()
        journal.write_snapshot(
            {"closed": [ids[0], ids[1]], "credit_overrides": {}, "version": 2},
            seq=2,
        )
        # Crash window left the old tail, then the restarted process
        # appended a post-watermark delta before the *next* crash.
        journal.journal_path.write_text(stale_tail)
        journal.append(_delta(DELTA_REOPEN, ids[0], seq=3))
        journal.close()

        replay = DeltaJournal(tmp_path).replay()
        assert replay.stale_records == 2
        assert [d.seq for d in replay.deltas] == [3]
        assert replay.last_seq == 3

    def test_seq_regression_after_live_tail_still_raises(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.write_snapshot(
            {"closed": [], "credit_overrides": {}, "version": 0}, seq=3
        )
        # A pre-watermark seq *after* a post-watermark record is not a
        # stale-prefix artifact — it is a genuinely non-monotonic tail.
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=5))
        journal.append(_delta(DELTA_CLOSE, ids[1], seq=2))
        journal.close()
        with pytest.raises(ArtifactError, match="seq regression"):
            DeltaJournal(tmp_path).replay()

    def test_corrupt_snapshot_raises(self, tmp_path):
        journal = DeltaJournal(tmp_path)
        journal.snapshot_path.write_text('{"schema": 1, "seq": true}\n')
        with pytest.raises(ArtifactError):
            journal.replay()
        journal.snapshot_path.write_text("not json at all\n")
        with pytest.raises(ArtifactError, match="unreadable snapshot"):
            journal.replay()

    def test_quarantine_moves_files_aside_deterministically(
        self, tmp_path, toy_catalog
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        journal.snapshot_path.write_text("garbage\n")
        moved = journal.quarantine()
        assert sorted(p.name for p in moved) == [
            "journal.jsonl.quarantined-0",
            "snapshot.json.quarantined-0",
        ]
        assert not journal.journal_path.exists()
        # A second corrupt generation gets the next free suffix.
        journal.append(_delta(DELTA_CLOSE, ids[0], seq=1))
        moved = journal.quarantine()
        assert [p.name for p in moved] == ["journal.jsonl.quarantined-1"]

    def test_closed_journal_refuses_appends(self, tmp_path, toy_catalog):
        journal = DeltaJournal(tmp_path)
        journal.close()
        with pytest.raises(ArtifactError, match="closed"):
            journal.append(
                _delta(DELTA_CLOSE, sorted(toy_catalog.item_ids)[0], seq=1)
            )


class TestFacadeDurability:
    def test_attach_empty_journal_serves_pristine(self, tmp_path, service):
        recovery = service.attach_journal(DeltaJournal(tmp_path))
        assert not recovery.restored
        assert "journal empty" in recovery.describe()
        assert service.journal_seq == 0
        assert service.live_catalog is service.catalog

    def test_unstamped_deltas_get_the_next_seq(self, tmp_path, service):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        first = service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        second = service.apply_delta(_delta(DELTA_REOPEN, ids[0]))
        assert (first.seq, second.seq) == (1, 2)
        assert service.journal_seq == 2

    def test_duplicate_seq_is_acked_as_noop(self, tmp_path, service):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        report = service.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        assert not report.duplicate
        version = service.catalog_version
        retry = service.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        assert retry.duplicate and retry.seq == 1
        assert retry.findings == ()
        assert service.catalog_version == version
        # The journal holds exactly one record, not two.
        assert len(service.journal.journal_path.read_text().splitlines()) == 1

    def test_duplicate_seq_with_different_payload_raises(
        self, tmp_path, service
    ):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        version = service.catalog_version
        # A miscounting client reusing seq 1 for a *new* world event
        # must be rejected, not silently acked as a duplicate no-op.
        with pytest.raises(DeltaError, match="seq-space collision"):
            service.apply_delta(_delta(DELTA_CLOSE, ids[1], seq=1))
        assert service.catalog_version == version
        assert len(service.journal.journal_path.read_text().splitlines()) == 1
        # A true retry (identical payload) still acks as a no-op.
        retry = service.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        assert retry.duplicate

    def test_duplicate_verification_survives_restart(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        service.journal.close()

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        restarted.attach_journal(DeltaJournal(tmp_path))
        retry = restarted.apply_delta(_delta(DELTA_CLOSE, ids[0], seq=1))
        assert retry.duplicate
        with pytest.raises(DeltaError, match="seq-space collision"):
            restarted.apply_delta(_delta(DELTA_REOPEN, ids[0], seq=1))

    def test_crash_between_snapshot_and_truncate_recovers_state(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path, compact_every=2))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        pre_truncate_tail = service.journal.journal_path.read_text()
        service.apply_delta(_delta(DELTA_CLOSE, ids[1]))  # snapshot fires
        tail_after = service.journal.journal_path.read_text()
        service.journal.close()
        # Crash after the snapshot rename, before the truncation: the
        # old tail precedes whatever the truncation would have kept.
        service.journal.journal_path.write_text(
            pre_truncate_tail
            + _record_line(2, _delta(DELTA_CLOSE, ids[1], seq=2))
            + "\n"
            + tail_after
        )

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(tmp_path))
        assert recovery.restored
        assert recovery.stale_records == 2
        assert not recovery.quarantined
        assert restarted.journal_seq == service.journal_seq
        assert restarted.catalog_version == service.catalog_version
        assert restarted.live_catalog.item_ids == service.live_catalog.item_ids
        assert restarted.live_catalog.name == service.live_catalog.name

    def test_unknown_item_rejected_before_journaling(
        self, tmp_path, service
    ):
        journal = DeltaJournal(tmp_path)
        service.attach_journal(journal)
        with pytest.raises(DeltaError, match="unknown to base catalog"):
            service.apply_delta(_delta(DELTA_CLOSE, "no-such-item"))
        assert service.journal_seq == 0
        assert not journal.journal_path.exists() or (
            journal.journal_path.read_text() == ""
        )

    def test_restart_replays_to_identical_state(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        service.apply_delta(_delta(DELTA_CREDIT_CHANGE, ids[1], credits=5.0))
        service.apply_delta(_delta(DELTA_REOPEN, ids[0]))
        service.journal.close()

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(tmp_path))
        assert recovery.restored
        assert recovery.replayed_deltas == 3 and recovery.skipped_deltas == 0
        assert restarted.journal_seq == service.journal_seq == 3
        assert restarted.catalog_version == service.catalog_version == 3
        assert restarted.live_catalog.item_ids == service.live_catalog.item_ids
        assert restarted.live_catalog.name == service.live_catalog.name
        assert restarted.live_catalog[ids[1]].credits == 5.0

    def test_compaction_through_facade_then_recover(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path, compact_every=2))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        service.apply_delta(_delta(DELTA_CLOSE, ids[1]))  # triggers snapshot
        service.apply_delta(_delta(DELTA_REOPEN, ids[0]))
        journal = service.journal
        assert journal.snapshot_path.exists()
        assert len(journal.journal_path.read_text().splitlines()) == 1
        journal.close()

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(tmp_path))
        assert recovery.restored and recovery.snapshot_seq == 2
        assert recovery.replayed_deltas == 1
        assert restarted.journal_seq == 3
        assert restarted.live_catalog.item_ids == service.live_catalog.item_ids
        assert restarted.catalog_version == service.catalog_version

    def test_corrupt_journal_quarantined_not_crash_loop(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        service.apply_delta(_delta(DELTA_CLOSE, ids[1]))
        service.journal.close()
        path = service.journal.journal_path
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:15]  # mid-stream corruption, not a torn tail
        path.write_text("\n".join(lines) + "\n")

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(tmp_path))
        assert not recovery.restored
        assert recovery.quarantined
        assert "CORRUPT" in recovery.describe()
        assert restarted.live_catalog is restarted.catalog
        assert not path.exists()
        # The quarantined directory accepts fresh durable state.
        report = restarted.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        assert report.seq == 1 and restarted.journal_seq == 1

    def test_wrong_universe_snapshot_quarantined(
        self, tmp_path, service
    ):
        journal = DeltaJournal(tmp_path)
        journal.write_snapshot(
            {"closed": ["alien-item"], "credit_overrides": {}, "version": 1},
            seq=1,
        )
        recovery = service.attach_journal(DeltaJournal(tmp_path))
        assert not recovery.restored and recovery.quarantined
        assert service.live_catalog is service.catalog

    def test_replay_skips_deterministically_rejected_delta(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        ids = sorted(toy_catalog.item_ids)
        journal = DeltaJournal(tmp_path)
        # Journal closes for every item: the trailing ones were
        # journaled pre-crash but rejected at apply (closing the last
        # open item, or pruning the live catalog empty) — replay must
        # reject them identically and keep serving.
        for seq, item in enumerate(ids, start=1):
            journal.append(_delta(DELTA_CLOSE, item, seq=seq))
        journal.close()

        reference = CatalogView(toy_catalog)
        rejected = 0
        for seq, item in enumerate(ids, start=1):
            try:
                reference.apply(_delta(DELTA_CLOSE, item, seq=seq))
            except DeltaError:
                rejected += 1
        assert rejected >= 1  # the drill must actually exercise a skip

        recovery = service.attach_journal(DeltaJournal(tmp_path))
        assert recovery.restored
        assert recovery.skipped_deltas == rejected
        assert recovery.replayed_deltas == len(ids) - rejected
        assert service.live_catalog.item_ids == reference.live.item_ids
        assert service.catalog_version == reference.version
        assert service.journal_seq == len(ids)

    def test_torn_tail_never_acked_so_retry_reapplies(
        self, tmp_path, service, toy_catalog, toy_task
    ):
        service.attach_journal(DeltaJournal(tmp_path))
        ids = sorted(service.catalog.item_ids)
        service.apply_delta(_delta(DELTA_CLOSE, ids[0]))
        service.journal.close()
        with service.journal.journal_path.open("a") as handle:
            handle.write('{"schema": 1, "se')  # crash mid-append of seq 2

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(tmp_path))
        assert recovery.restored and recovery.torn_tail
        assert restarted.journal_seq == 1
        # The client that never got an ack retries; it must apply, not
        # dedupe (the torn record was dropped, not folded).
        report = restarted.apply_delta(_delta(DELTA_CLOSE, ids[1], seq=2))
        assert not report.duplicate and restarted.journal_seq == 2


# ----------------------------------------------------------------------
# The restart drill: SIGKILL mid-churn, replay, serve
# ----------------------------------------------------------------------

_CHURN_CHILD = textwrap.dedent(
    """
    import os
    import sys
    import time

    from repro.datasets import toy_course_catalog, toy_course_task
    from repro.scenarios.churn import poisson_schedule
    from repro.serving import DeltaJournal, PlanningService

    journal_dir, progress_path, seed = (
        sys.argv[1], sys.argv[2], int(sys.argv[3])
    )
    catalog, task = toy_course_catalog(), toy_course_task()
    service = PlanningService(catalog, task, audit=False)
    service.attach_journal(DeltaJournal(journal_dir))
    schedule = poisson_schedule(
        catalog, seed=seed, rate=40.0, reopen_rate=25.0
    )
    with open(progress_path, "a") as fh:
        for event in schedule.events:
            report = service.apply_delta(event.delta)
            fh.write(f"{report.seq}\\n")
            fh.flush()
            os.fsync(fh.fileno())
            time.sleep(0.05)
    print("completed without being killed", file=sys.stderr)
    """
)


@pytest.mark.chaos
@pytest.mark.slow
class TestRestartDrill:
    def test_kill9_midchurn_recovers_byte_identical_state(
        self, tmp_path, toy_catalog, toy_task
    ):
        journal_dir = tmp_path / "journal"
        progress = tmp_path / "progress.txt"
        script = tmp_path / "churn_child.py"
        script.write_text(_CHURN_CHILD)
        seed = 11

        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        child = subprocess.Popen(
            [
                sys.executable, str(script),
                str(journal_dir), str(progress), str(seed),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if progress.exists() and len(
                    progress.read_text().splitlines()
                ) >= 4:
                    break
                if child.poll() is not None:
                    _, err = child.communicate()
                    pytest.fail(
                        f"churn child exited early: {err.decode()!r}"
                    )
                time.sleep(0.01)
            else:
                pytest.fail("churn child made no progress before timeout")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
            if child.poll() is None:  # pragma: no cover
                child.kill()

        acked = [int(s) for s in progress.read_text().split()]
        assert len(acked) >= 4

        restarted = PlanningService(toy_catalog, toy_task, audit=False)
        recovery = restarted.attach_journal(DeltaJournal(journal_dir))
        assert recovery.restored
        watermark = restarted.journal_seq
        # fsync-before-ack: every acked delta survived the SIGKILL.
        assert watermark >= max(acked)

        # Reference fold: the same seeded schedule, truncated at the
        # recovered watermark, applied to a fresh view.
        schedule = poisson_schedule(
            toy_catalog, seed=seed, rate=40.0, reopen_rate=25.0
        )
        reference = CatalogView(toy_catalog)
        for event in schedule.events:
            if event.delta.seq > watermark:
                break
            reference.apply(event.delta)
        assert restarted.catalog_version == reference.version
        assert restarted.live_catalog.item_ids == reference.live.item_ids
        assert restarted.live_catalog.name == reference.live.name

        # Zero closed items served post-restart: every plan the
        # recovered service emits draws only on the live catalog — and
        # when the recovered closures make the task infeasible, the
        # request is *rejected* against the replayed world (a pristine
        # fallback would have served), never answered with dead items.
        closed = set(toy_catalog.item_ids) - set(reference.live.item_ids)
        result = restarted.serve(ServeRequest(deadline_s=10.0))
        if result.plan is not None:
            assert not set(result.plan.item_ids) & closed
            assert set(result.plan.item_ids) <= set(
                restarted.live_catalog.item_ids
            )
        else:
            assert result.outcome in ("rejected", "failed")
            assert result.catalog_version == reference.version
