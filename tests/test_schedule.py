"""Tests for schedule folding (repro.core.schedule)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import PlanningError
from repro.core.items import ItemType, Prerequisites
from repro.core.plan import plan_from_ids
from repro.core.schedule import fold_plan, fold_trip_day

from conftest import make_item


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("a", ItemType.PRIMARY, topics={"t1"}),
            make_item("b", ItemType.SECONDARY, topics={"t2"}),
            make_item("c", ItemType.SECONDARY, topics={"t3"}),
            make_item(
                "d",
                ItemType.PRIMARY,
                topics={"t4"},
                prereqs=Prerequisites.all_of(["a"]),
            ),
            make_item("e", ItemType.SECONDARY, topics={"t5"}),
            make_item("f", ItemType.SECONDARY, topics={"t6"}),
        ]
    )


class TestFoldPlan:
    def test_periods_of_requested_size(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b", "c", "d", "e", "f"])
        schedule = fold_plan(plan, items_per_period=3)
        assert len(schedule) == 2
        assert [i.item_id for i in schedule.periods[0].items] == [
            "a", "b", "c",
        ]
        assert schedule.periods[0].label == "Semester 1"
        assert schedule.periods[0].total_credits == 9.0

    def test_ragged_final_period(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b", "c", "d"])
        schedule = fold_plan(plan, items_per_period=3)
        assert len(schedule.periods[1].items) == 1

    def test_period_of(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b", "c", "d"])
        schedule = fold_plan(plan, items_per_period=3)
        assert schedule.period_of("a") == 0
        assert schedule.period_of("d") == 1
        with pytest.raises(PlanningError):
            schedule.period_of("zzz")

    def test_invalid_period_size(self, catalog):
        plan = plan_from_ids(catalog, ["a"])
        with pytest.raises(PlanningError):
            fold_plan(plan, items_per_period=0)

    def test_gap_valid_plan_respects_prerequisites(self, catalog):
        # d requires a; with gap=3 semantics, a in semester 1 and d in
        # semester 2 is the advisor-facing reading.
        plan = plan_from_ids(catalog, ["a", "b", "c", "d", "e", "f"])
        schedule = fold_plan(plan, items_per_period=3)
        assert schedule.respects_prerequisites()

    def test_same_period_prerequisite_fails(self, catalog):
        plan = plan_from_ids(catalog, ["a", "d", "b", "c", "e", "f"])
        schedule = fold_plan(plan, items_per_period=3)
        assert not schedule.respects_prerequisites()

    def test_describe_lists_periods(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        schedule = fold_plan(plan, items_per_period=2,
                             label_format="Term {n}")
        text = schedule.describe()
        assert "Term 1" in text and "- a:" in text

    def test_prerequisite_in_later_period_fails(self, catalog):
        plan = plan_from_ids(catalog, ["d", "b", "c", "a", "e", "f"])
        schedule = fold_plan(plan, items_per_period=3)
        assert not schedule.respects_prerequisites()

    def test_prerequisite_absent_from_schedule_fails(self, catalog):
        # d requires a, which is not scheduled at all.
        plan = plan_from_ids(catalog, ["b", "c", "d"])
        schedule = fold_plan(plan, items_per_period=2)
        assert not schedule.respects_prerequisites()


class TestLabelFormatValidation:
    """fold_plan rejects label formats that cannot label periods."""

    def test_unknown_field_rejected_up_front(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        with pytest.raises(PlanningError, match="label_format"):
            fold_plan(plan, items_per_period=2, label_format="Sem {m}")

    def test_positional_field_rejected(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        with pytest.raises(PlanningError, match="label_format"):
            fold_plan(plan, items_per_period=2, label_format="Sem {}")

    def test_constant_format_rejected(self, catalog):
        # Formats, but every period would get the same label.
        plan = plan_from_ids(catalog, ["a", "b"])
        with pytest.raises(PlanningError, match="never varies"):
            fold_plan(plan, items_per_period=2, label_format="Semester")

    def test_format_spec_on_n_accepted(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b", "c"])
        schedule = fold_plan(
            plan, items_per_period=2, label_format="Sem {n:02d}"
        )
        assert [p.label for p in schedule.periods] == ["Sem 01", "Sem 02"]


class TestFoldTripDay:
    def test_clock_progression(self, catalog):
        plan = plan_from_ids(catalog, ["a", "b"])
        windows = fold_trip_day(plan, day_start_hour=9.0,
                                leg_minutes=30.0)
        (id1, s1, e1), (id2, s2, e2) = windows
        assert (id1, s1) == ("a", 9.0)
        assert e1 == 12.0  # 3h visit
        assert s2 == pytest.approx(12.5)  # 30-minute leg
        assert e2 == pytest.approx(15.5)

    def test_empty_plan(self):
        from repro.core.plan import Plan

        assert fold_trip_day(Plan(items=())) == []
