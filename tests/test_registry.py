"""Cache semantics of the policy registry and the warm serving path.

Covers the ISSUE-6 satellite matrix: LRU eviction order, a hit during an
in-flight background refit serving the old version, corrupt on-disk
artifacts quarantining instead of poisoning the cache, the counters and
gauge landing in ``metrics.json``, and the warm facade path producing
zero fit spans.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    load_metrics,
    use_registry,
    write_metrics,
)
from repro.serving import (
    PlanningService,
    PolicyRegistry,
    RUNG_EDA,
    RUNG_SARSA,
    SOURCE_CACHE,
    SOURCE_DISK,
    SOURCE_TRAINED,
    short_key,
)
from repro.serving.registry import META_NAME, QUARANTINE_SUFFIX

pytestmark = [pytest.mark.serving, pytest.mark.registry]


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture(scope="module")
def toy_qtable(toy_dataset):
    """One trained toy table reused as a cheap trainer stub."""
    from repro import RLPlanner

    planner = RLPlanner(
        toy_dataset.catalog,
        toy_dataset.task,
        toy_dataset.default_config,
        mode=toy_dataset.mode,
    )
    planner.fit(start_item_ids=[toy_dataset.default_start], episodes=50)
    return planner.qtable


def _universe(toy_dataset, seed: int):
    """Same catalog/task, distinct config → distinct policy key."""
    return (
        toy_dataset.catalog,
        toy_dataset.task,
        toy_dataset.default_config.replace(seed=seed),
        toy_dataset.mode,
    )


def _span_names(tree):
    for name, node in tree.items():
        yield name
        yield from _span_names(node.get("children", {}))


class TestLRUCache:
    def test_eviction_order(self, tmp_path, toy_dataset, toy_qtable):
        obs = MetricsRegistry()
        with use_registry(obs):
            reg = PolicyRegistry(tmp_path, cache_size=2)
            trainer = lambda: toy_qtable  # noqa: E731
            keys = []
            for seed in (1, 2, 3):
                entry, source = reg.acquire(
                    *_universe(toy_dataset, seed), trainer=trainer
                )
                assert source == SOURCE_TRAINED
                keys.append(entry.meta.key)
            k1, k2, k3 = keys
            # Capacity 2: the oldest (k1) fell out.
            assert reg.cached_keys == (k2, k3)
            # Touching k2 makes k3 the LRU victim...
            _, source = reg.acquire(
                *_universe(toy_dataset, 2), trainer=trainer
            )
            assert source == SOURCE_CACHE
            # ...so re-acquiring k1 (disk, not retrain) evicts k3.
            _, source = reg.acquire(
                *_universe(toy_dataset, 1), trainer=trainer
            )
            assert source == SOURCE_DISK
            assert reg.cached_keys == (k2, k1)
        counters = obs.snapshot()["counters"]
        assert counters["registry_cache_evictions_total"] == 2
        assert counters["registry_cache_hits_total"] == 1
        assert counters["registry_cache_misses_total"] == 4

    def test_explicit_evict_and_delete(self, tmp_path, toy_dataset, toy_qtable):
        reg = PolicyRegistry(tmp_path, cache_size=2)
        entry, _ = reg.acquire(
            *_universe(toy_dataset, 1), trainer=lambda: toy_qtable
        )
        key = entry.meta.key
        assert reg.evict(key)
        assert reg.cached_keys == ()
        # Still on disk: next acquire loads instead of retraining.
        _, source = reg.acquire(
            *_universe(toy_dataset, 1), trainer=lambda: toy_qtable
        )
        assert source == SOURCE_DISK
        assert reg.evict(key, delete=True)
        assert reg.entries() == []

    def test_get_full_miss_returns_none(self, tmp_path, toy_dataset):
        reg = PolicyRegistry(tmp_path)
        assert reg.get("no-such-key", toy_dataset.catalog) is None


class TestBackgroundRefit:
    def test_hit_during_refit_serves_old_version(
        self, tmp_path, toy_dataset, toy_qtable
    ):
        clock = FakeClock()
        reg = PolicyRegistry(tmp_path, max_age_s=10.0, clock=clock)
        universe = _universe(toy_dataset, 1)
        entry, _ = reg.acquire(*universe, trainer=lambda: toy_qtable)
        assert entry.meta.version == 1

        release = threading.Event()

        def slow_trainer():
            release.wait(timeout=30)
            return toy_qtable

        clock.now = 100.0  # stale now
        stale, source = reg.acquire(*universe, trainer=slow_trainer)
        assert source == SOURCE_CACHE
        assert stale.meta.version == 1  # old version keeps serving
        assert reg.refit_in_flight(stale.meta.key)
        # Another hit while the refit is blocked: still the old version.
        again, _ = reg.acquire(*universe, trainer=slow_trainer)
        assert again.meta.version == 1

        release.set()
        reg.drain(timeout=30)
        fresh, source = reg.acquire(*universe, trainer=slow_trainer)
        assert source == SOURCE_CACHE
        assert fresh.meta.version == 2
        assert fresh.meta.trained_at == 100.0
        # The swap also landed on disk.
        meta = json.loads(
            (tmp_path / fresh.meta.key / META_NAME).read_text()
        )
        assert meta["version"] == 2

    def test_refit_failure_keeps_old_version(
        self, tmp_path, toy_dataset, toy_qtable
    ):
        clock = FakeClock()
        obs = MetricsRegistry()
        with use_registry(obs):
            reg = PolicyRegistry(tmp_path, max_age_s=10.0, clock=clock)
            universe = _universe(toy_dataset, 1)
            reg.acquire(*universe, trainer=lambda: toy_qtable)

            def broken_trainer():
                raise RuntimeError("training cluster on fire")

            clock.now = 100.0
            entry, _ = reg.acquire(*universe, trainer=broken_trainer)
            reg.drain(timeout=30)
            assert entry.meta.version == 1
            after, _ = reg.acquire(*universe, trainer=lambda: toy_qtable)
            assert after.meta.version == 1
        counters = obs.snapshot()["counters"]
        assert counters["registry_refit_failures_total"] >= 1


class TestQuarantine:
    def test_corrupt_artifact_quarantines_and_retrains(
        self, tmp_path, toy_dataset, toy_qtable
    ):
        writer = PolicyRegistry(tmp_path)
        entry, _ = writer.acquire(
            *_universe(toy_dataset, 1), trainer=lambda: toy_qtable
        )
        key = entry.meta.key
        policy_path = tmp_path / key / "policy.v1.json"
        # Bit rot: valid JSON, wrong checksum.
        payload = json.loads(policy_path.read_text())
        payload["entries"] = []
        policy_path.write_text(json.dumps(payload))

        obs = MetricsRegistry()
        with use_registry(obs):
            reader = PolicyRegistry(tmp_path)  # cold cache, same disk
            fresh, source = reader.acquire(
                *_universe(toy_dataset, 1), trainer=lambda: toy_qtable
            )
        assert source == SOURCE_TRAINED  # fell through to retrain
        assert fresh.qtable.update_count == toy_qtable.update_count
        quarantined = list((tmp_path / key).glob(f"*{QUARANTINE_SUFFIX}"))
        assert quarantined  # the rotten file was sidelined, not deleted
        counters = obs.snapshot()["counters"]
        assert counters["registry_artifacts_quarantined_total"] == 1
        # The retrained artifact is immediately loadable again.
        reloaded = PolicyRegistry(tmp_path)
        _, source = reloaded.acquire(
            *_universe(toy_dataset, 1), trainer=lambda: toy_qtable
        )
        assert source == SOURCE_DISK


class TestMetricsExport:
    def test_counters_and_gauge_land_in_metrics_json(
        self, tmp_path, toy_dataset, toy_qtable
    ):
        obs = MetricsRegistry()
        with use_registry(obs):
            reg = PolicyRegistry(
                tmp_path / "reg", cache_size=1, clock=FakeClock(5.0)
            )
            reg.acquire(*_universe(toy_dataset, 1), trainer=lambda: toy_qtable)
            reg.acquire(*_universe(toy_dataset, 1), trainer=lambda: toy_qtable)
            reg.acquire(*_universe(toy_dataset, 2), trainer=lambda: toy_qtable)
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        write_metrics(run_dir, obs)
        exported = load_metrics(run_dir)
        counters = exported["counters"]
        assert counters["registry_cache_hits_total"] == 1
        assert counters["registry_cache_misses_total"] == 2
        assert counters["registry_cache_evictions_total"] == 1
        assert "registry_policy_age_seconds" in exported["gauges"]
        assert "registry.lookup" in exported["spans"]


class TestWarmServing:
    def test_warm_hit_produces_zero_fit_spans(self, tmp_path, toy_dataset):
        service = PlanningService.from_dataset(toy_dataset)
        service.attach_registry(PolicyRegistry(tmp_path), episodes=50)
        cold_obs = MetricsRegistry()
        with use_registry(cold_obs):
            cold = service.serve()
        assert cold.outcome == "ok" and cold.rung == RUNG_SARSA
        assert "sarsa.learn" in set(
            _span_names(cold_obs.snapshot()["spans"])
        ) or "registry.train" in set(
            _span_names(cold_obs.snapshot()["spans"])
        )

        warm_obs = MetricsRegistry()
        with use_registry(warm_obs):
            warm = service.serve()
        assert warm.outcome == "ok" and warm.rung == RUNG_SARSA
        assert warm.plan_cache_hit
        assert warm.plan.item_ids == cold.plan.item_ids
        names = set(_span_names(warm_obs.snapshot()["spans"]))
        assert "sarsa.learn" not in names  # zero fit spans
        assert "registry.train" not in names
        assert "registry.load" not in names  # no disk read either
        counters = warm_obs.snapshot()["counters"]
        assert counters["registry_cache_hits_total"] == 1
        assert counters["serve_plan_memo_hits_total"] == 1

    def test_policy_provenance_in_envelope(self, tmp_path, toy_dataset):
        service = PlanningService.from_dataset(toy_dataset)
        service.attach_registry(PolicyRegistry(tmp_path), episodes=50)
        result = service.serve()
        key = toy_dataset.policy_key()
        assert result.policy == f"{short_key(key)}@v1"

    def test_two_services_share_one_artifact(self, tmp_path, toy_dataset):
        a = PlanningService.from_dataset(toy_dataset)
        a.attach_registry(PolicyRegistry(tmp_path), episodes=50)
        a.serve()
        b = PlanningService.from_dataset(toy_dataset)
        b.attach_registry(PolicyRegistry(tmp_path), episodes=50)
        obs = MetricsRegistry()
        with use_registry(obs):
            result = b.serve()
        assert result.ok
        names = set(_span_names(obs.snapshot()["spans"]))
        assert "sarsa.learn" not in names  # loaded, never refitted
        assert "registry.load" in names

    def test_unfitted_service_degrades_with_clear_error(self, toy_dataset):
        service = PlanningService.from_dataset(toy_dataset)
        obs = MetricsRegistry()
        with use_registry(obs):
            result = service.serve()
        assert result.outcome == "degraded"
        assert result.rung == RUNG_EDA
        sarsa_attempt = result.attempts[0]
        assert sarsa_attempt.rung == RUNG_SARSA
        assert "UntrainedPolicyError" in sarsa_attempt.error
        assert "fit()" in sarsa_attempt.error
        counters = obs.snapshot()["counters"]
        assert counters["serve_untrained_policy_total"] == 1


class TestRegistryCLI:
    def test_prewarm_list_serve_evict_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "reg")
        assert main(
            ["registry", "prewarm", root, "toy", "--episodes", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "source  : trained" in out
        # Prewarm again (fresh process-level cache): loads from disk.
        assert main(
            ["registry", "prewarm", root, "toy", "--episodes", "30"]
        ) == 0
        assert "source  : disk" in capsys.readouterr().out

        assert main(["registry", "list", root]) == 0
        listing = capsys.readouterr().out
        assert "toy" in listing

        assert main(["serve", "toy", "--registry", root]) == 0
        served = capsys.readouterr().out
        assert "rung     : sarsa" in served
        assert "policy   : " in served

        key_prefix = listing.splitlines()[3].split("|")[0].strip()
        assert main(
            ["registry", "evict", root, key_prefix, "--delete"]
        ) == 0
        assert "deleted" in capsys.readouterr().out
        assert main(["registry", "list", root]) == 0
        assert key_prefix not in capsys.readouterr().out


# ----------------------------------------------------------------------
# ISSUE-8 satellite: availability churn vs. the registry
# ----------------------------------------------------------------------

def _slack_catalog():
    """Ten 3-credit items: make_task() (12 credits) survives closures."""
    from conftest import make_item

    from repro.core.catalog import Catalog
    from repro.core.items import ItemType, Prerequisites

    items = [
        make_item("p1", ItemType.PRIMARY, topics={"t1"}),
        make_item("p2", ItemType.PRIMARY, topics={"t2"}),
        make_item("p3", ItemType.PRIMARY, topics={"t3"}),
        make_item("p4", ItemType.PRIMARY, topics={"t4"}),
        make_item("p5", ItemType.PRIMARY, topics={"t1", "t3"}),
        make_item("s1", ItemType.SECONDARY, topics={"t1"}),
        make_item(
            "s2",
            ItemType.SECONDARY,
            topics={"t2"},
            prereqs=Prerequisites.all_of(["p1"]),
        ),
        make_item(
            "s3",
            ItemType.SECONDARY,
            topics={"t3"},
            prereqs=Prerequisites.any_of(["p2", "p3"]),
        ),
        make_item("s4", ItemType.SECONDARY, topics={"t4"}),
        make_item("s5", ItemType.SECONDARY, topics={"t2", "t4"}),
    ]
    return Catalog(items, name="registry-churn")


class TestChurnInvalidation:
    """A changed catalog fingerprint invalidates without blocking serving."""

    pytestmark = [pytest.mark.scenarios]

    def _world(self, tmp_path):
        from conftest import make_task

        from repro.core.config import PlannerConfig

        catalog = _slack_catalog()
        registry = PolicyRegistry(tmp_path / "reg", cache_size=4)
        service = PlanningService(
            catalog, make_task(), PlannerConfig(episodes=200, seed=3)
        )
        service.attach_registry(registry, episodes=200)
        return service, registry

    def test_churn_delta_misses_cache_and_refits_exactly_once(
        self, tmp_path
    ):
        from repro.core.deltas import DELTA_CLOSE, CatalogDelta
        from repro.serving.facade import OUTCOME_DEGRADED, OUTCOME_OK

        obs = MetricsRegistry()
        with use_registry(obs):
            service, registry = self._world(tmp_path)
            first = service.serve()
            assert first.outcome == OUTCOME_OK
            victim = first.plan.item_ids[-1]

            report = service.apply_delta(
                CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
            )
            assert report.fingerprint_changed
            # The post-delta key was in neither the warm cache nor the
            # disk store, so a single-flight background refit started.
            assert report.refit_scheduled
            new_key = registry.key_for(
                service.live_catalog,
                service.task,
                service.config,
                service.mode,
            )

            # The stale policy keeps serving while the refit is in
            # flight -- restricted to live items.
            stale = service.serve()
            assert stale.outcome in (OUTCOME_OK, OUTCOME_DEGRADED)
            assert victim not in stale.plan.item_ids

            registry.drain(timeout=120.0)
            assert not registry.refit_in_flight(new_key)
            assert registry.peek(new_key) is not None

            # First request after landing adopts the refit table.
            swapped = service.serve()
            assert swapped.outcome == OUTCOME_OK
            assert victim not in swapped.plan.item_ids
            assert swapped.policy != first.policy

            counters = obs.snapshot()["counters"]
            assert counters["registry_invalidations_total"] == 1
            assert counters["registry_refits_scheduled_total"] == 1
            assert counters["serve_policy_swaps_total"] == 1

    def test_invalidate_is_single_flight(self, tmp_path, toy_dataset,
                                          toy_qtable):
        reg = PolicyRegistry(tmp_path, cache_size=2)
        release = threading.Event()

        def trainer():
            release.wait(30.0)
            return toy_qtable

        catalog, task, config, mode = _universe(toy_dataset, seed=77)
        key = reg.key_for(catalog, task, config, mode)
        assert reg.invalidate(
            key, catalog, task, config, mode, trainer=trainer
        )
        # Second invalidation for the same key while the first refit is
        # still training: no second thread.
        assert not reg.invalidate(
            key, catalog, task, config, mode, trainer=trainer
        )
        release.set()
        reg.drain(timeout=30.0)
        assert reg.peek(key) is not None
        # A key the cache already holds never refits.
        assert not reg.invalidate(
            key, catalog, task, config, mode, trainer=trainer
        )

    def test_close_reopen_cycles_key_back_without_swap(self, tmp_path):
        from repro.core.deltas import (
            DELTA_CLOSE,
            DELTA_REOPEN,
            CatalogDelta,
        )
        from repro.serving.facade import OUTCOME_OK

        obs = MetricsRegistry()
        with use_registry(obs):
            service, registry = self._world(tmp_path)
            first = service.serve()
            victim = first.plan.item_ids[-1]
            r1 = service.apply_delta(
                CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
            )
            r2 = service.apply_delta(
                CatalogDelta(kind=DELTA_REOPEN, item_id=victim, seq=2)
            )
            assert r1.fingerprint_changed
            # Reopen restored the original universe: same fingerprint,
            # nothing new scheduled, the pending refit target retired.
            assert not r2.fingerprint_changed
            assert not r2.refit_scheduled
            registry.drain(timeout=120.0)
            after = service.serve()
            assert after.outcome == OUTCOME_OK
            assert after.policy == first.policy
            counters = obs.snapshot()["counters"]
            assert counters.get("serve_policy_swaps_total", 0) == 0

    def test_adopt_refit_recheck_preserves_newer_pending_key(
        self, tmp_path, monkeypatch
    ):
        """A delta arming a newer refit target while an adopt is mid-swap
        must not be clobbered by the stale adopt (REVIEW: medium)."""
        from repro.core.deltas import DELTA_CLOSE, CatalogDelta

        import repro.serving.facade as facade_mod

        service, registry = self._world(tmp_path)
        first = service.serve()
        victim = first.plan.item_ids[-1]
        service.apply_delta(
            CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
        )
        k1 = service._pending_policy_key
        assert k1 is not None
        registry.drain(timeout=120.0)
        entry = registry.peek(k1)
        assert entry is not None

        old_key = service._policy_key
        real_planner = facade_mod.RLPlanner

        def racing_planner(*args, **kwargs):
            # Simulates apply_delta scheduling a newer refit target
            # while _adopt_refit is rebuilding the planner for k1.
            with service._delta_lock:
                service._pending_policy_key = "k2-newer"
            return real_planner(*args, **kwargs)

        monkeypatch.setattr(facade_mod, "RLPlanner", racing_planner)
        service._adopt_refit(k1, entry)
        # The stale k1 swap was discarded; the newer target stays armed.
        assert service._pending_policy_key == "k2-newer"
        assert service._policy_key == old_key

    def test_session_suffix_replan_never_refits(self, tmp_path):
        from repro.core.deltas import DELTA_CLOSE, CatalogDelta

        obs = MetricsRegistry()
        with use_registry(obs):
            service, registry = self._world(tmp_path)
            plan = service.serve().plan
            session = service.open_session(plan, executed=1)
            session.ingest(
                CatalogDelta(
                    kind=DELTA_CLOSE, item_id=plan.item_ids[-1], seq=1
                )
            )
            result = session.replan(deadline_s=10.0)
            assert result.ok
            # Session-scoped deltas stay off the registry: no
            # invalidation, no refit, world version untouched.
            assert service.catalog_version == 0
            counters = obs.snapshot()["counters"]
            assert counters.get("registry_invalidations_total", 0) == 0
            assert counters.get("registry_refits_scheduled_total", 0) == 0
