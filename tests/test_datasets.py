"""Tests for dataset loaders and the Table II toy (repro.datasets)."""

import pytest

from repro.core.env import DomainMode
from repro.core.exceptions import DatasetError
from repro.datasets import (
    LOADERS,
    load,
    load_toy,
    toy_course_catalog,
    toy_course_task,
    toy_template,
    TOY_TOPICS,
)


class TestRegistry:
    def test_all_keys_loadable(self):
        for key in LOADERS:
            dataset = load(key, seed=0, with_gold=False)
            assert dataset.key == key
            assert dataset.default_start in dataset.catalog

    def test_unknown_key_rejected(self):
        with pytest.raises(DatasetError):
            load("atlantis")

    def test_modes(self):
        assert load("njit_dsct", with_gold=False).mode is DomainMode.COURSE
        assert load("nyc", with_gold=False).mode is DomainMode.TRIP

    def test_gold_plans_attached_when_requested(self):
        dataset = load("toy", with_gold=True)
        assert dataset.gold_plan is not None
        dataset = load("toy", with_gold=False)
        assert dataset.gold_plan is None

    def test_trip_datasets_expose_itineraries(self):
        assert load("nyc", with_gold=False).itineraries
        assert not load("toy", with_gold=False).itineraries

    def test_default_config_matches_dataset(self):
        # Table III: Univ-2 trains 100 episodes, the others 500.
        assert load("univ2_ds", with_gold=False).default_config.episodes == 100
        assert load("njit_dsct", with_gold=False).default_config.episodes == 500


class TestToyExample:
    """Pins the paper's Table II values exactly."""

    def test_six_courses(self):
        catalog = toy_course_catalog()
        assert len(catalog) == 6
        assert catalog.item_ids == ("m1", "m2", "m3", "m4", "m5", "m6")

    def test_thirteen_topics_in_order(self):
        catalog = toy_course_catalog()
        assert catalog.topic_vocabulary == TOY_TOPICS
        assert len(TOY_TOPICS) == 13

    def test_table2_topic_vectors(self):
        catalog = toy_course_catalog()
        # T^m2 = [0,1,1,0,0,0,0,0,0,0,0,0,0] (Data Mining).
        assert catalog["m2"].topic_vector(TOY_TOPICS) == (
            0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        )
        # T^m1 covers algorithms + data structure.
        assert catalog["m1"].topic_vector(TOY_TOPICS) == (
            1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
        )

    def test_table2_prerequisites(self):
        catalog = toy_course_catalog()
        # m5: Data Mining OR Data Analytics.
        assert catalog["m5"].prerequisites.groups == (
            frozenset({"m2", "m3"}),
        )
        # m6: Linear Algebra AND Data Mining.
        assert set(catalog["m6"].prerequisites.groups) == {
            frozenset({"m4"}), frozenset({"m2"}),
        }

    def test_table2_types(self):
        catalog = toy_course_catalog()
        primaries = {i.item_id for i in catalog.primaries()}
        assert primaries == {"m1", "m3", "m6"}

    def test_example1_ideal_vector(self):
        task = toy_course_task()
        # T_ideal = [0,1,1,0,0,0,1,0,0,1,0,0,0] from Example 1.
        assert task.soft.ideal_vector(TOY_TOPICS) == (
            0, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0,
        )

    def test_template_has_three_permutations(self):
        template = toy_template()
        assert len(template) == 3
        assert template.length == 6

    def test_paper_illustrative_sequence_is_valid(self):
        """m1 -> m2 -> m4 -> m5 -> m6 -> m3 'fully satisfies I2'."""
        from repro.core.plan import plan_from_ids
        from repro.core.similarity import template_similarity
        from repro.core.validation import PlanValidator

        catalog = toy_course_catalog()
        task = toy_course_task()
        plan = plan_from_ids(
            catalog, ["m1", "m2", "m4", "m5", "m6", "m3"]
        )
        i2 = task.soft.template.permutations[1]  # [P,S,S,S,P,P]
        assert template_similarity(plan.type_sequence(), i2) == 6.0
        assert PlanValidator(task.hard).is_valid(plan)

    def test_toy_gold_is_perfect(self):
        dataset = load_toy(seed=0, with_gold=True)
        from repro.core.scoring import PlanScorer

        score = PlanScorer(dataset.task).score(dataset.gold_plan)
        assert score.value == 6.0
