"""Concurrent front-end suite: server, load generator, and the
thread-safety regressions behind them.

The regression classes are deliberate re-creations of the races this
sweep fixed — each is constructed so it FAILS against the pre-fix code:

* ``TestContextIsolation`` — request provenance lived on the service
  instance, so a memo hit on thread B stamped thread A's envelope.
* ``TestBreakerSingleTrial`` — half-open admitted every concurrent
  caller instead of exactly one trial.
* ``TestMetricsExactness`` — unlocked instruments tore under GIL
  preemption: ``Histogram.observe`` (a multi-step update with a loop,
  so preemptible mid-write) could be half-visible to an unlocked
  snapshot (``test_histogram_snapshot_is_never_torn`` catches exactly
  that pre-fix).  The exact-total tests pin the stronger invariant the
  locks now guarantee on every platform, not just CPython builds where
  straight-line ``+=`` happens to be preemption-free.

Run with ``make test-serving`` (``pytest -m serving``).
"""

import json
import socket
import sys
import threading
import time

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.serving import (
    CircuitBreaker,
    Deadline,
    OUTCOME_SHED,
    PlanningServer,
    PlanningService,
    PolicyRegistry,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    ServeRequest,
    ServeResult,
    ServerClosed,
    closed_loop,
    open_loop,
    request_from_payload,
    result_to_payload,
)

pytestmark = pytest.mark.serving


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubService:
    """Minimal facade stand-in with a controllable serve body.

    Exposes just what :class:`PlanningServer` touches: the screen
    inputs (catalog/task/mode), ``fault_injector``, and ``serve``.
    """

    def __init__(self, dataset, serve_fn=None):
        self.catalog = dataset.catalog
        self.task = dataset.task
        self.mode = dataset.mode
        self.fault_injector = None
        self._serve_fn = serve_fn

    @property
    def live_catalog(self):
        # No churn support in the stub: the world never changes.
        return self.catalog

    def serve(self, request, deadline=None):
        if self._serve_fn is not None:
            return self._serve_fn(request, deadline)
        return ServeResult(outcome="ok", deadline_s=request.deadline_s)


@pytest.fixture(scope="module")
def toy_service(toy_dataset, fitted_toy_planner):
    return PlanningService.from_dataset(
        toy_dataset, planner=fitted_toy_planner
    )


# ----------------------------------------------------------------------
# Regression: per-request provenance must not bleed across threads
# ----------------------------------------------------------------------


class TestContextIsolation:
    def test_memo_hit_on_one_thread_does_not_stamp_another(
        self, toy_dataset, tmp_path, monkeypatch
    ):
        """Thread A (slow traversal) must not inherit thread B's memo hit.

        Pre-fix, ``_serve_inner`` parked ``plan_cache_hit`` on the
        service instance: B's memo hit flipped it to True while A was
        still inside ``recommend_anytime``, so A's envelope lied.
        """
        service = PlanningService.from_dataset(toy_dataset)
        service.attach_registry(PolicyRegistry(tmp_path), episodes=60)
        first = service.serve(ServeRequest())
        assert first.ok and first.rung == "sarsa"
        memo = service.serve(ServeRequest())
        assert memo.plan_cache_hit, memo.describe()

        horizon = len(first.plan)  # memo key differs from (None, None)
        entered = threading.Event()
        release = threading.Event()
        original = service.planner.recommend_anytime

        def blocking(*args, **kwargs):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            service.planner, "recommend_anytime", blocking
        )
        results = {}

        def slow_request():
            results["a"] = service.serve(ServeRequest(horizon=horizon))

        thread = threading.Thread(target=slow_request)
        thread.start()
        assert entered.wait(timeout=10.0)
        # B completes an entire memo-hit request while A sits in the rung.
        results["b"] = service.serve(ServeRequest())
        release.set()
        thread.join(timeout=10.0)

        assert results["b"].plan_cache_hit is True
        assert results["a"].plan_cache_hit is False, (
            "thread B's memo hit bled into thread A's envelope"
        )
        assert results["a"].policy is not None
        assert results["a"].ok

    def test_concurrent_envelopes_carry_their_own_policy(
        self, toy_dataset, tmp_path
    ):
        """A burst of concurrent serves all report consistent provenance."""
        service = PlanningService.from_dataset(toy_dataset)
        service.attach_registry(PolicyRegistry(tmp_path), episodes=60)
        service.serve(ServeRequest())
        results = []
        lock = threading.Lock()

        def client():
            result = service.serve(ServeRequest())
            with lock:
                results.append(result)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 8
        policies = {r.policy for r in results}
        assert len(policies) == 1 and None not in policies
        assert all(r.ok for r in results)


# ----------------------------------------------------------------------
# Regression: half-open admits exactly one trial under contention
# ----------------------------------------------------------------------


class TestBreakerSingleTrial:
    def test_half_open_admits_exactly_one_concurrent_trial(self):
        """Pre-fix every racer got True; the rung saw a thundering herd."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "rung", failure_threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        racers = 8
        barrier = threading.Barrier(racers)
        admitted = []

        def probe():
            barrier.wait(timeout=10.0)
            admitted.append(breaker.allows())

        threads = [threading.Thread(target=probe) for _ in range(racers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert sum(admitted) == 1, (
            f"half-open admitted {sum(admitted)} concurrent trials"
        )
        assert breaker.state == STATE_HALF_OPEN

    def test_trial_token_released_on_each_resolution(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "rung", failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allows() is True  # the trial
        assert breaker.allows() is False  # token held
        breaker.record_failure()  # trial failed -> re-open
        clock.advance(1.0)
        assert breaker.allows() is True  # fresh token after cooldown
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allows() and breaker.allows()  # closed: no token

    def test_failure_counter_exact_under_contention(self):
        breaker = CircuitBreaker(
            "rung", failure_threshold=10**9, cooldown_s=0.0
        )
        old = sys.getswitchinterval()
        sys.setswitchinterval(5e-6)
        try:
            per_thread = 2000

            def hammer():
                for _ in range(per_thread):
                    breaker.record_failure()

            threads = [
                threading.Thread(target=hammer) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
        finally:
            sys.setswitchinterval(old)
        assert breaker.consecutive_failures == 8 * per_thread


# ----------------------------------------------------------------------
# Regression: metric updates are never lost
# ----------------------------------------------------------------------


class TestMetricsExactness:
    THREADS = 8
    PER_THREAD = 5000

    def _hammer(self, op):
        old = sys.getswitchinterval()
        sys.setswitchinterval(5e-6)
        try:
            def worker():
                for _ in range(self.PER_THREAD):
                    op()

            threads = [
                threading.Thread(target=worker)
                for _ in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
        finally:
            sys.setswitchinterval(old)

    def test_counter_total_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        self._hammer(counter.inc)
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_histogram_count_and_buckets_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", (0.5, 1.0))
        self._hammer(lambda: histogram.observe(0.25))
        expected = self.THREADS * self.PER_THREAD
        assert histogram.count == expected
        assert histogram.counts[0] == expected  # <= 0.5
        assert histogram.counts[-1] == expected  # +Inf
        assert histogram.total == pytest.approx(0.25 * expected)

    def test_histogram_snapshot_is_never_torn(self):
        """A reader must never see ``count`` disagree with ``+Inf``.

        ``observe`` contains a loop, so the interpreter can preempt a
        writer between the count bump and the bucket bumps; pre-fix the
        unlocked snapshot read that half-applied update.  Post-fix both
        sides take the instrument lock, so every snapshot is a
        consistent cut.
        """
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", (0.5, 1.0))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(0.25)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(5e-6)
        try:
            for t in threads:
                t.start()
            for _ in range(3000):
                snap = registry.snapshot()["histograms"]["lat_seconds"]
                assert snap["count"] == snap["counts"][-1], (
                    "snapshot observed a half-applied histogram update"
                )
        finally:
            stop.set()
            sys.setswitchinterval(old)
            for t in threads:
                t.join(timeout=10.0)

    def test_concurrent_first_use_creates_one_instrument(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        grabbed = []

        def race():
            barrier.wait(timeout=10.0)
            grabbed.append(registry.counter("raced_total"))

        threads = [threading.Thread(target=race) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len({id(c) for c in grabbed}) == 1

    def test_span_counts_exact_across_threads(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(200):
                with registry.span("outer"):
                    with registry.span("inner"):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        spans = registry.snapshot()["spans"]
        assert spans["outer"]["count"] == 1600
        assert spans["outer"]["children"]["inner"]["count"] == 1600


# ----------------------------------------------------------------------
# The server: admission, shedding, deadlines, drain
# ----------------------------------------------------------------------


class TestPlanningServer:
    def test_happy_path_serves_through_real_facade(self, toy_service):
        server = PlanningServer(toy_service, workers=2, max_queue=8)
        try:
            result = server.handle(ServeRequest(deadline_s=5.0))
            assert result.ok and result.rung == "sarsa"
        finally:
            server.close()

    def test_screen_reject_never_occupies_a_queue_slot(
        self, toy_dataset
    ):
        gate = threading.Event()

        def stuck(request, deadline):
            gate.wait(10.0)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, stuck)
        server = PlanningServer(service, workers=1, max_queue=1)
        try:
            blocker = server.submit(ServeRequest())
            time.sleep(0.05)  # the worker is now parked in the gate
            result = server.handle(
                ServeRequest(start_item_id="no-such-item")
            )
            assert result.outcome == "rejected"
            assert result.admission is not None
            assert "unknown_start" in result.admission.codes()
            assert server.stats()["queued"] == 0
        finally:
            gate.set()
            blocker.result(timeout=10.0)
            server.close()

    def test_queue_full_sheds_instead_of_blocking(self, toy_dataset):
        gate = threading.Event()
        started = threading.Event()

        def stuck(request, deadline):
            started.set()
            gate.wait(10.0)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, stuck)
        registry = MetricsRegistry()
        with use_registry(registry):
            server = PlanningServer(service, workers=1, max_queue=2)
            inflight = server.submit(ServeRequest())
            assert started.wait(timeout=10.0)
            queued = [server.submit(ServeRequest()) for _ in range(2)]
            shed = server.handle(ServeRequest())
        assert shed.outcome == OUTCOME_SHED
        assert (
            registry.counter(
                'server_shed_total{reason="queue_full"}'
            ).value == 1
        )
        gate.set()
        assert inflight.result(timeout=10.0).outcome == "ok"
        for future in queued:
            assert future.result(timeout=10.0).outcome == "ok"
        server.close()

    def test_estimated_wait_sheds_unreachable_deadline(
        self, toy_dataset
    ):
        gate = threading.Event()
        started = threading.Event()

        def stuck(request, deadline):
            started.set()
            gate.wait(10.0)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, stuck)
        registry = MetricsRegistry()
        with use_registry(registry):
            server = PlanningServer(service, workers=1, max_queue=32)
            inflight = server.submit(ServeRequest())
            assert started.wait(timeout=10.0)
            server._ewma_service_s = 10.0  # as if requests take 10s
            shed = server.handle(ServeRequest(deadline_s=0.5))
            # An unbounded-deadline request is still admitted.
            patient = server.submit(ServeRequest())
        assert shed.outcome == OUTCOME_SHED
        assert (
            registry.counter(
                'server_shed_total{reason="deadline_unreachable"}'
            ).value == 1
        )
        gate.set()
        assert inflight.result(timeout=10.0).outcome == "ok"
        assert patient.result(timeout=10.0).outcome == "ok"
        server.close()

    def test_deadline_expired_in_queue_sheds_at_dequeue(
        self, toy_dataset
    ):
        """Queue wait counts against the budget (arrival anchoring)."""
        gate = threading.Event()

        def stuck(request, deadline):
            gate.wait(10.0)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, stuck)
        registry = MetricsRegistry()
        with use_registry(registry):
            server = PlanningServer(service, workers=1, max_queue=8)
            blocker = server.submit(ServeRequest())
            time.sleep(0.05)
            doomed = server.submit(ServeRequest(deadline_s=0.01))
            time.sleep(0.1)  # budget dies while queued
            gate.set()
            result = doomed.result(timeout=10.0)
        assert result.outcome == OUTCOME_SHED
        assert result.deadline_exceeded
        assert (
            registry.counter(
                'server_shed_total{reason="queue_expired"}'
            ).value == 1
        )
        blocker.result(timeout=10.0)
        server.close()

    def test_deadline_is_arrival_anchored_into_the_facade(
        self, toy_dataset
    ):
        seen = {}

        def capture(request, deadline):
            seen["deadline"] = deadline
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, capture)
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            server.handle(ServeRequest(deadline_s=5.0))
            assert isinstance(seen["deadline"], Deadline)
            assert 0 < seen["deadline"].remaining() <= 5.0
        finally:
            server.close()

    def test_drain_completes_inflight_and_sheds_new(self, toy_dataset):
        gate = threading.Event()
        started = threading.Event()

        def stuck(request, deadline):
            started.set()
            gate.wait(10.0)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, stuck)
        server = PlanningServer(service, workers=1, max_queue=8)
        inflight = server.submit(ServeRequest())
        assert started.wait(timeout=10.0)
        drainer = threading.Thread(target=server.drain)
        drainer.start()
        time.sleep(0.05)
        shed = server.handle(ServeRequest())
        assert shed.outcome == OUTCOME_SHED
        gate.set()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        assert inflight.result(timeout=1.0).outcome == "ok"
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(ServeRequest())

    def test_default_deadline_applied_to_bare_requests(
        self, toy_dataset
    ):
        seen = {}

        def capture(request, deadline):
            seen["request"] = request
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, capture)
        server = PlanningServer(
            service, workers=1, max_queue=4, default_deadline_s=2.5
        )
        try:
            server.handle(ServeRequest())
            assert seen["request"].deadline_s == 2.5
        finally:
            server.close()

    def test_server_metrics_outcomes_and_latency(self, toy_dataset):
        service = StubService(toy_dataset)
        registry = MetricsRegistry()
        with use_registry(registry):
            server = PlanningServer(service, workers=2, max_queue=8)
            for _ in range(5):
                server.handle(ServeRequest())
            server.close()
        assert (
            registry.counter(
                'server_requests_total{outcome="ok"}'
            ).value == 5
        )
        snapshot = registry.snapshot()
        latency = snapshot["histograms"]["server_latency_seconds"]
        assert latency["count"] == 5
        assert snapshot["histograms"][
            "server_queue_wait_seconds"
        ]["count"] == 5

    def test_constructor_validation(self, toy_dataset):
        service = StubService(toy_dataset)
        with pytest.raises(ValueError):
            PlanningServer(service, workers=0)
        with pytest.raises(ValueError):
            PlanningServer(service, max_queue=0)


# ----------------------------------------------------------------------
# JSON-lines socket front-end
# ----------------------------------------------------------------------


class TestSocketFrontend:
    def test_round_trip_and_error_lines(self, toy_service):
        server = PlanningServer(toy_service, workers=2, max_queue=8)
        try:
            host, port = server.listen()
            with socket.create_connection((host, port), timeout=10.0) as conn:
                reader = conn.makefile("r", encoding="utf-8")
                conn.sendall(b'{"deadline_s": 5.0}\n')
                reply = json.loads(reader.readline())
                assert reply["outcome"] in ("ok", "degraded")
                assert reply["valid"] is True
                assert isinstance(reply["plan"], list) and reply["plan"]
                assert reply["rung"] == "sarsa"
                # pipelined second request on the same connection
                conn.sendall(b'{"start": "no-such-item"}\n')
                reply = json.loads(reader.readline())
                assert reply["outcome"] == "rejected"
                # malformed JSON and unknown fields answer, not hang up
                conn.sendall(b'this is not json\n')
                assert json.loads(reader.readline())["outcome"] == "error"
                conn.sendall(b'{"frobnicate": 1}\n')
                reply = json.loads(reader.readline())
                assert reply["outcome"] == "error"
                assert "frobnicate" in reply["error"]
        finally:
            server.close()

    def test_listen_twice_refused(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            server.listen()
            with pytest.raises(RuntimeError):
                server.listen()
        finally:
            server.close()

    def test_request_codec_validation(self):
        request = request_from_payload(
            {"start": "a", "deadline_s": 1.5, "horizon": 3}
        )
        assert request == ServeRequest(
            start_item_id="a", deadline_s=1.5, horizon=3
        )
        with pytest.raises(ValueError):
            request_from_payload([1, 2])
        with pytest.raises(ValueError):
            request_from_payload({"deadline_s": -1})
        with pytest.raises(ValueError):
            request_from_payload({"horizon": 0})
        with pytest.raises(ValueError):
            request_from_payload({"start": 7})

    def test_result_codec_shape(self):
        payload = result_to_payload(ServeResult(outcome="failed"))
        assert payload["outcome"] == "failed"
        assert payload["plan"] is None
        assert payload["valid"] is False
        assert payload["attempts"] == []


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------


class TestLoadGenerator:
    def test_closed_loop_report_is_exact(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(service, workers=4, max_queue=32)
        try:
            report = closed_loop(
                server, concurrency=4, requests=40, slo_s=5.0
            )
        finally:
            server.close()
        assert report["requests_issued"] == 40
        assert report["requests_completed"] == 40
        assert report["outcomes"] == {"ok": 40}
        assert report["errors"] == 0
        assert report["latency_ms"]["count"] == 40
        assert (
            report["latency_ms"]["p50"]
            <= report["latency_ms"]["p95"]
            <= report["latency_ms"]["p99"]
        )
        assert report["shed_rate"] == 0.0

    def test_closed_loop_slo_counts_valid_in_time_only(
        self, toy_service
    ):
        server = PlanningServer(toy_service, workers=2, max_queue=16)
        try:
            report = closed_loop(
                server, concurrency=2, requests=10,
                deadline_s=5.0, slo_s=5.0,
            )
        finally:
            server.close()
        assert report["slo"]["attained"] == 10
        assert report["slo"]["attainment"] == 1.0
        assert report["rungs"].get("sarsa") == 10

    def test_open_loop_overload_sheds_and_reports(self, toy_dataset):
        def slowish(request, deadline):
            time.sleep(0.02)
            return ServeResult(outcome="ok")

        service = StubService(toy_dataset, slowish)
        server = PlanningServer(service, workers=1, max_queue=2)
        try:
            report = open_loop(
                server, rate=300.0, duration_s=0.7,
                deadline_s=0.5, slo_s=0.5, seed=3,
                burst_every_s=0.3, burst_len_s=0.1, burst_factor=3.0,
            )
        finally:
            server.close()
        assert report["requests_completed"] == report["requests_issued"]
        assert report["outcomes"].get(OUTCOME_SHED, 0) > 0
        assert report["shed_rate"] > 0
        assert report["burst"]["factor"] == 3.0
        # Latency percentiles cover admitted requests only.
        assert report["latency_ms"]["count"] == report["outcomes"]["ok"]

    def test_fault_spec_arms_mid_run_and_ladder_absorbs(
        self, toy_dataset, fitted_toy_planner
    ):
        service = PlanningService.from_dataset(
            toy_dataset, planner=fitted_toy_planner
        )
        server = PlanningServer(service, workers=2, max_queue=32)
        try:
            report = closed_loop(
                server, concurrency=2, requests=24,
                deadline_s=5.0, slo_s=5.0,
                fault_spec="error@0:times=6", fault_at=0.25,
            )
        finally:
            server.close()
        assert report["errors"] == 0
        assert report["requests_completed"] == 24
        assert report["faults"]["spec"] == "error@0:times=6"
        assert report["faults"]["armed_at_request"] is not None
        assert report["faults"]["fired"].get("error", 0) > 0
        assert report["outcomes"].get("degraded", 0) > 0
        assert report["rungs"].get("eda", 0) > 0
        assert service.fault_injector is not None

    def test_input_validation(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            with pytest.raises(ValueError):
                closed_loop(server, concurrency=0, requests=1)
            with pytest.raises(ValueError):
                closed_loop(server, concurrency=1, requests=0)
            with pytest.raises(ValueError):
                open_loop(server, rate=0.0, duration_s=1.0)
            with pytest.raises(ValueError):
                open_loop(server, rate=1.0, duration_s=0.0)
        finally:
            server.close()


# ----------------------------------------------------------------------
# Wire hardening: fuzzed lines, idle peers, restarts
# ----------------------------------------------------------------------


class TestWireHardening:
    @staticmethod
    def _connect(host, port):
        conn = socket.create_connection((host, port), timeout=10.0)
        return conn, conn.makefile("r", encoding="utf-8")

    def test_oversized_line_errors_and_disconnects(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(
            service, workers=1, max_queue=4, wire_max_line_bytes=1024
        )
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(b'{"start": "' + b"x" * 4096 + b'"}\n')
                reply = json.loads(reader.readline())
                assert reply["outcome"] == "error"
                assert "exceeds 1024 bytes" in reply["error"]
                # ...and the connection is gone, not left half-parsed.
                assert reader.readline() == ""
        finally:
            server.close()

    def test_fuzzed_garbage_answers_error_and_keeps_connection(
        self, toy_dataset
    ):
        service = StubService(toy_dataset)
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                for garbage in (
                    b"\x00\xff\xfe\x01\n",        # binary noise
                    b'{"deadline_s": 5.0\n',      # truncated JSON line
                    b"[1, 2, 3]\n",               # JSON, wrong shape
                    b'{"op": "frobnicate"}\n',    # unknown op
                    b'{"op": "ready", "x": 1}\n',  # op with stray fields
                ):
                    conn.sendall(garbage)
                    reply = json.loads(reader.readline())
                    assert reply["outcome"] == "error"
                # Blank lines are skipped without a reply, and the
                # connection survived every malformed line.
                conn.sendall(b"\n")
                conn.sendall(b'{"deadline_s": 5.0}\n')
                assert json.loads(reader.readline())["outcome"] == "ok"
        finally:
            server.close()

    def test_idle_timeout_closes_connection(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(
            service, workers=1, max_queue=4, wire_idle_timeout_s=0.2
        )
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                time.sleep(0.6)
                assert reader.readline() == ""
            # The server itself is still accepting fresh connections.
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(b'{"deadline_s": 5.0}\n')
                assert json.loads(reader.readline())["outcome"] == "ok"
        finally:
            server.close()

    def test_client_vanishing_mid_exchange_does_not_wedge(
        self, toy_dataset
    ):
        service = StubService(toy_dataset)
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            host, port = server.listen()
            for _ in range(3):
                conn = socket.create_connection((host, port), timeout=10.0)
                conn.sendall(b'{"deadline_s": 5.0}\n')
                conn.close()  # gone before reading the reply
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(b'{"deadline_s": 5.0}\n')
                assert json.loads(reader.readline())["outcome"] == "ok"
        finally:
            server.close()

    def test_health_and_ready_probe_ops(self, toy_dataset):
        # health() reports catalog/journal provenance, so it needs the
        # real facade rather than the stub.
        service = PlanningService(
            toy_dataset.catalog, toy_dataset.task, audit=False
        )
        server = PlanningServer(service, workers=1, max_queue=4)
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(b'{"op": "ready"}\n')
                reply = json.loads(reader.readline())
                assert reply == {"outcome": "ready", "ready": True}
                conn.sendall(b'{"op": "health"}\n')
                health = json.loads(reader.readline())
                assert health["ready"] is True
                assert health["journal_attached"] is False
                assert "catalog_version" in health
                assert health["journal_seq"] == 0
                assert "inflight" in health and "draining" in health
        finally:
            server.close()

    def test_not_ready_sheds_until_marked(self, toy_dataset):
        service = StubService(toy_dataset)
        server = PlanningServer(
            service, workers=1, max_queue=4, ready=False
        )
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(b'{"op": "ready"}\n')
                assert json.loads(reader.readline())["ready"] is False
                conn.sendall(b'{"deadline_s": 5.0}\n')
                assert json.loads(reader.readline())["outcome"] == "shed"
                server.mark_ready()
                conn.sendall(b'{"op": "ready"}\n')
                assert json.loads(reader.readline())["ready"] is True
                conn.sendall(b'{"deadline_s": 5.0}\n')
                assert json.loads(reader.readline())["outcome"] == "ok"
        finally:
            server.close()

    def test_duplicate_seq_delta_over_wire_is_noop(
        self, tmp_path, toy_dataset
    ):
        from repro.serving import DeltaJournal

        service = PlanningService(
            toy_dataset.catalog, toy_dataset.task, audit=False
        )
        service.attach_journal(DeltaJournal(tmp_path))
        server = PlanningServer(service, workers=1, max_queue=4)
        item = sorted(toy_dataset.catalog.item_ids)[0]
        line = json.dumps(
            {"delta": {"kind": "close", "item": item, "seq": 1}}
        ).encode() + b"\n"
        try:
            host, port = server.listen()
            conn, reader = self._connect(host, port)
            with conn:
                conn.sendall(line)
                first = json.loads(reader.readline())
                assert first["outcome"] == "delta_applied"
                assert (first["seq"], first["duplicate"]) == (1, False)
                conn.sendall(line)  # client retry after a lost ack
                second = json.loads(reader.readline())
                assert second["outcome"] == "delta_applied"
                assert (second["seq"], second["duplicate"]) == (1, True)
                assert second["catalog_version"] == first["catalog_version"]
        finally:
            server.close()

    def test_line_client_rides_through_server_restart(self, toy_dataset):
        from repro.serving import LineClient, RetryPolicy

        service = StubService(toy_dataset)
        first = PlanningServer(service, workers=1, max_queue=8)
        host, port = first.listen()
        client = LineClient(
            host, port,
            retry=RetryPolicy(base_s=0.01, cap_s=0.1, max_attempts=200),
            timeout_s=10.0,
        )
        second = None
        try:
            assert client.request({"deadline_s": 5.0})["outcome"] == "ok"
            first.close()
            # A crashed process takes its TCP connections with it; drop
            # the client's stale socket so the next request exercises
            # the refused-connect backoff path, as in a real kill -9.
            client.close()

            def restart():
                time.sleep(0.3)
                srv = PlanningServer(service, workers=1, max_queue=8)
                srv.listen(host, port)
                return srv

            holder = {}
            thread = threading.Thread(
                target=lambda: holder.update(srv=restart())
            )
            thread.start()
            # The request spans the outage: refused connects back off
            # and retry until the reborn server answers.
            reply = client.request({"deadline_s": 5.0})
            thread.join(timeout=30)
            second = holder.get("srv")
            assert reply["outcome"] == "ok"
            assert client.reconnects >= 1
            assert client.retries >= 1
            assert client.restart_gap_seconds > 0.0
        finally:
            client.close()
            first.close()
            if second is not None:
                second.close()
