"""Unit tests for plan scoring (repro.core.scoring)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.env import DomainMode
from repro.core.items import Item, ItemType, make_metadata
from repro.core.plan import Plan, plan_from_ids
from repro.core.scoring import (
    PlanScorer,
    average_score,
    mean_popularity,
    score_plans,
    validity_rate,
)

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


@pytest.fixture
def scorer():
    return PlanScorer(make_task())


class TestTemplateScore:
    def test_perfect_plan_scores_h(self, catalog, scorer):
        # Template includes [P,S,P,S]: an exact match scores 4.
        plan = plan_from_ids(catalog, ["p1", "s1", "p2", "s2"])
        assert scorer.score(plan).value == 4.0

    def test_gold_reference_score_is_plan_length(self, scorer):
        assert scorer.gold_reference_score() == 4.0

    def test_invalid_plan_gated_to_zero(self, catalog, scorer):
        plan = plan_from_ids(catalog, ["s1", "s2", "p1"])  # too short
        score = scorer.score(plan)
        assert score.value == 0.0
        assert score.raw_value > 0.0  # the raw similarity survives
        assert not score.is_valid

    def test_best_template_is_selected(self, catalog, scorer):
        # [P,P,S,S] matches the second template permutation exactly.
        plan = plan_from_ids(catalog, ["p1", "p2", "s1", "s2"])
        assert scorer.score(plan).value == 4.0

    def test_empty_plan_scores_zero(self, scorer):
        assert scorer.raw_score(Plan(items=())) == 0.0

    def test_topic_coverage_reported(self, catalog, scorer):
        plan = plan_from_ids(catalog, ["p1", "s1", "p2", "s2"])
        assert scorer.score(plan).topic_coverage == 1.0


class TestTripScoring:
    def _trip_setup(self):
        items = [
            Item(
                item_id=f"x{i}",
                name=f"x{i}",
                item_type=(
                    ItemType.PRIMARY if i < 1 else ItemType.SECONDARY
                ),
                credits=1.0,
                topics=frozenset({f"theme{i}"}),
                metadata=make_metadata(popularity=4.0 + 0.2 * i),
            )
            for i in range(3)
        ]
        catalog = Catalog(items)
        task = TaskSpec(
            hard=HardConstraints.for_trips(
                10, 1, 2, theme_adjacency_gap=False
            ),
            soft=SoftConstraints(
                ideal_topics=frozenset(
                    {"theme0", "theme1", "theme2"}
                ),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "S"]]
                ),
            ),
        )
        return catalog, task

    def test_trip_template_score(self):
        catalog, task = self._trip_setup()
        scorer = PlanScorer(task, mode=DomainMode.TRIP)
        plan = plan_from_ids(catalog, ["x0", "x1", "x2"])
        assert scorer.score(plan).value == 3.0

    def test_budget_overrun_gated(self):
        catalog, task = self._trip_setup()
        tight = TaskSpec(
            hard=HardConstraints.for_trips(
                1.5, 1, 2, theme_adjacency_gap=False
            ),
            soft=task.soft,
        )
        scorer = PlanScorer(tight, mode=DomainMode.TRIP)
        plan = plan_from_ids(catalog, ["x0", "x1", "x2"])  # 3h > 1.5h
        assert scorer.score(plan).value == 0.0

    def test_mean_popularity(self):
        catalog, _ = self._trip_setup()
        plan = plan_from_ids(catalog, ["x0", "x1", "x2"])
        assert mean_popularity(plan) == pytest.approx(4.2)

    def test_mean_popularity_none_without_metadata(self, catalog):
        plan = plan_from_ids(catalog, ["p1"])
        assert mean_popularity(plan) is None


class TestBatchHelpers:
    def test_score_plans_and_average(self, catalog, scorer):
        good = plan_from_ids(catalog, ["p1", "s1", "p2", "s2"])
        bad = plan_from_ids(catalog, ["s1", "s2"])
        scores = score_plans(scorer, (good, bad))
        assert average_score(scores) == pytest.approx(2.0)
        assert validity_rate(scores) == 0.5

    def test_empty_batches(self):
        assert average_score(()) == 0.0
        assert validity_rate(()) == 0.0
