"""Tests for recommendation explanations (repro.analysis.explain)."""

import pytest

from repro.analysis import explain_plan
from repro.core.plan import plan_from_ids


class TestExplainPlan:
    @pytest.fixture(scope="class")
    def explanation(self, fitted_toy_planner):
        return explain_plan(fitted_toy_planner, "m1")

    def test_one_step_per_item(self, explanation):
        assert len(explanation.steps) == len(explanation.plan)
        assert [s.item_id for s in explanation.steps] == list(
            explanation.plan.item_ids
        )

    def test_first_step_has_no_breakdown(self, explanation):
        assert explanation.steps[0].breakdown is None
        assert explanation.steps[0].candidates_considered == 1

    def test_later_steps_have_breakdowns(self, explanation):
        for step in explanation.steps[1:]:
            assert step.breakdown is not None
            assert step.candidates_considered >= 1

    def test_new_topics_are_ideal_subset(
        self, explanation, fitted_toy_planner
    ):
        ideal = fitted_toy_planner.task.soft.ideal_topics
        for step in explanation.steps:
            assert set(step.new_ideal_topics) <= ideal

    def test_render_is_a_table(self, explanation):
        text = explanation.render()
        assert "Plan explanation" in text
        assert "m1" in text

    def test_explaining_given_plan(self, fitted_toy_planner):
        plan = plan_from_ids(
            fitted_toy_planner.catalog,
            ["m1", "m2", "m4", "m5", "m6", "m3"],
        )
        explanation = explain_plan(
            fitted_toy_planner, "m1", plan=plan
        )
        assert explanation.plan is plan
        assert [s.item_id for s in explanation.steps] == list(
            plan.item_ids
        )

    def test_cli_explain_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["plan", "toy", "--episodes", "40", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "Plan explanation" in out
