"""Smoke test: the reward-engine bench runs and reports sane numbers.

The full benchmark (``make bench``) times |I| up to 500 and writes
``BENCH_reward_engine.json``; here we only prove the harness works —
tiny sizes, few repeats, temporary output — so a refactor that breaks
the bench is caught by the ordinary test suite.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "bench_reward_engine.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_reward_engine", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_runs_and_scores_agree():
    bench = _load_bench()
    results = bench.run(sizes=(30,), repeats=2)
    assert len(results) == 1
    row = results[0]
    assert row["num_items"] == 30
    assert row["num_candidates"] > 0
    assert row["scalar_step_us"] > 0.0
    assert row["batch_step_us"] > 0.0
    assert row["speedup"] > 0.0
    # The table renderer accepts what run() produces.
    assert "speedup" in bench.render(results)


def test_bench_main_writes_json(tmp_path):
    bench = _load_bench()
    out = tmp_path / "bench.json"
    bench.main(
        ["--sizes", "25", "--repeats", "2", "--output", str(out)]
    )
    payload = json.loads(out.read_text())
    rows = payload["sizes"]
    assert rows and rows[0]["num_items"] == 25
    # --obs not passed: no overhead section, and no registry left active.
    assert "obs_overhead" not in payload
