"""Tests for the course domain: generators, programs, gold oracle."""

import pytest

from repro.core.items import ItemType
from repro.core.scoring import PlanScorer
from repro.core.validation import PlanValidator
from repro.domains.courses import (
    NJIT_CS,
    NJIT_CYBERSECURITY,
    NJIT_DSCT,
    TABLE_VI_COURSES,
    UNIV2_DS,
    default_template_labels,
    generate_njit_university,
    generate_univ2_program,
    gold_course_plan,
)


@pytest.fixture(scope="module")
def njit():
    return generate_njit_university(seed=0)


@pytest.fixture(scope="module")
def univ2():
    return generate_univ2_program(seed=0)


class TestPaperStatistics:
    """Section IV-A-1's dataset statistics must be reproduced exactly."""

    def test_program_course_counts(self, njit, univ2):
        assert len(njit["njit_dsct"].catalog) == 31
        assert len(njit["njit_cyber"].catalog) == 30
        assert len(njit["njit_cs"].catalog) == 32
        assert len(univ2.catalog) == 36

    def test_program_topic_counts(self, njit, univ2):
        assert njit["njit_dsct"].catalog.num_topics == 60
        assert njit["njit_cyber"].catalog.num_topics == 61
        assert njit["njit_cs"].catalog.num_topics == 100
        assert univ2.catalog.num_topics == 73

    def test_theorem1_core_minority(self, njit, univ2):
        # Theorem 1 assumes #core < #elective in every catalog.
        for program in list(njit.values()) + [univ2]:
            catalog = program.catalog
            assert len(catalog.primaries()) < len(catalog.secondaries())

    def test_every_topic_is_used(self, njit):
        for program in njit.values():
            catalog = program.catalog
            used = set()
            for item in catalog:
                used |= item.topics
            assert used == set(catalog.topic_vocabulary)

    def test_prerequisites_present_and_resolvable(self, njit):
        for program in njit.values():
            catalog = program.catalog
            with_prereqs = [
                i for i in catalog if not i.prerequisites.is_empty
            ]
            assert with_prereqs  # the datasets do have antecedents
            for item in with_prereqs:
                for ref in item.prerequisites.referenced_ids():
                    assert ref in catalog


class TestSharedPool:
    def test_table_vi_courses_shared_between_dsct_and_cs(self, njit):
        dsct = njit["njit_dsct"].catalog
        cs = njit["njit_cs"].catalog
        shared = set(dsct.shared_item_ids(cs))
        table_vi_ids = {cid for cid, _ in TABLE_VI_COURSES}
        assert table_vi_ids <= shared

    def test_roles_may_differ_across_programs(self, njit):
        # CS 675 is core in DS-CT; the CS program may type it either way
        # but the item identity (name/topics) is shared.
        dsct = njit["njit_dsct"].catalog["CS 675"]
        cs = njit["njit_cs"].catalog["CS 675"]
        assert dsct.name == cs.name
        assert dsct.topics == cs.topics
        assert dsct.item_type is ItemType.PRIMARY

    def test_default_starts_are_core_without_prereqs(self, njit):
        for program in njit.values():
            start = program.catalog[program.default_start]
            assert start.is_primary
            assert start.prerequisites.is_empty


class TestUniv2Categories:
    def test_six_buckets_evenly_filled(self, univ2):
        catalog = univ2.catalog
        assert len(catalog.categories()) == 6
        for category in catalog.categories():
            assert len(catalog.in_category(category)) == 6

    def test_cores_spread_across_buckets(self, univ2):
        catalog = univ2.catalog
        for category in catalog.categories():
            cores = [
                i for i in catalog.in_category(category) if i.is_primary
            ]
            assert len(cores) >= 2

    def test_task_carries_category_minima(self, univ2):
        task = univ2.spec.task(univ2.catalog.topic_vocabulary)
        assert task.hard.category_credit_map["applied_ml_ds"] == 9.0


class TestDeterminism:
    def test_same_seed_reproduces_catalog(self):
        a = generate_njit_university(seed=3)["njit_dsct"].catalog
        b = generate_njit_university(seed=3)["njit_dsct"].catalog
        assert a.item_ids == b.item_ids
        assert all(
            a[i].topics == b[i].topics for i in a.item_ids
        )

    def test_different_seed_differs(self):
        a = generate_njit_university(seed=3)["njit_dsct"].catalog
        b = generate_njit_university(seed=4)["njit_dsct"].catalog
        assert a.item_ids != b.item_ids


class TestDefaultTemplates:
    def test_counts_match_split(self):
        for labels in default_template_labels(5, 5):
            assert labels.count("P") == 5
            assert labels.count("S") == 5

    def test_all_permutations_distinct(self):
        labels = default_template_labels(7, 8)
        assert len(set(labels)) == len(labels)


class TestGoldOracle:
    @pytest.mark.parametrize("key", ["njit_dsct", "njit_cyber", "njit_cs"])
    def test_gold_scores_ten_on_univ1(self, njit, key):
        program = njit[key]
        task = program.spec.task(program.catalog.topic_vocabulary)
        plan = gold_course_plan(
            program.catalog, task, start_item_id=program.default_start
        )
        score = PlanScorer(task).score(plan)
        assert score.value == 10.0  # the paper's Univ-1 gold score
        assert score.is_valid

    def test_gold_scores_fifteen_on_univ2(self, univ2):
        task = univ2.spec.task(univ2.catalog.topic_vocabulary)
        plan = gold_course_plan(
            univ2.catalog, task, start_item_id=univ2.default_start
        )
        score = PlanScorer(task).score(plan)
        assert score.value == 15.0  # the paper's Univ-2 gold score
        assert score.is_valid

    def test_gold_satisfies_validator_independently(self, njit):
        program = njit["njit_dsct"]
        task = program.spec.task(program.catalog.topic_vocabulary)
        plan = gold_course_plan(program.catalog, task)
        assert PlanValidator(task.hard).is_valid(plan)
