"""Tests for the parallel experiment runner (repro.runner)."""

import json
import time
import warnings

import pytest

from repro.analysis import compare_planners
from repro.core.exceptions import PlanningError
from repro.datasets import load_toy
from repro.runner import (
    EPISODES_NAME,
    ExperimentRunner,
    RunManifest,
    RunSpec,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    child_seeds,
    execute_spec,
)


# Worker functions must be importable top-level names so the process
# pool can pickle them.

def _square(x):
    return x * x


def _boom(x):
    if x == "boom":
        raise ValueError("exploding payload")
    return x


def _fail_until_marker_exists(marker_path):
    """Fails on the first attempt, succeeds once the marker is on disk."""
    import pathlib

    marker = pathlib.Path(marker_path)
    if not marker.exists():
        marker.write_text("seen")
        raise RuntimeError("transient failure")
    return "recovered"


def _sleep_forever(_):
    time.sleep(60)


def _always_raises(_):
    raise RuntimeError("permanent failure")


def _interrupt(_):
    raise KeyboardInterrupt


def _exit(_):
    raise SystemExit(3)


def _timeout_once_then_fast(marker_path):
    """Sleeps past the timeout on the first attempt, instant after."""
    import pathlib

    marker = pathlib.Path(marker_path)
    if not marker.exists():
        marker.write_text("seen")
        time.sleep(60)
    return "fast"


class TestChildSeeds:
    def test_deterministic(self):
        assert child_seeds(42, 5) == child_seeds(42, 5)

    def test_prefix_stable(self):
        # Growing the batch never reshuffles earlier runs' seeds.
        assert child_seeds(42, 8)[:5] == child_seeds(42, 5)

    def test_distinct_within_batch(self):
        seeds = child_seeds(7, 32)
        assert len(set(seeds)) == 32

    def test_root_seed_matters(self):
        assert child_seeds(1, 4) != child_seeds(2, 4)


class TestExperimentRunner:
    def test_serial_map(self):
        results = ExperimentRunner(workers=1).map(_square, [1, 2, 3])
        assert [r.value for r in results] == [1, 4, 9]
        assert all(r.status == STATUS_OK for r in results)

    def test_serial_keyboard_interrupt_not_swallowed(self):
        # Ctrl-C must abort the batch, not be retried and recorded as a
        # task failure by the broad exception handler.
        with pytest.raises(KeyboardInterrupt):
            ExperimentRunner(workers=1, max_retries=3).map(
                _interrupt, ["x"]
            )

    def test_serial_system_exit_not_swallowed(self):
        with pytest.raises(SystemExit):
            ExperimentRunner(workers=1, max_retries=3).map(_exit, ["x"])

    def test_parallel_matches_serial_in_order(self):
        payloads = list(range(12))
        serial = ExperimentRunner(workers=1).map(_square, payloads)
        parallel = ExperimentRunner(workers=4).map(_square, payloads)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.index for r in parallel] == payloads

    def test_failure_captured_not_raised(self):
        results = ExperimentRunner(workers=2, max_retries=0).map(
            _boom, [1, "boom", 3]
        )
        assert [r.status for r in results] == [
            STATUS_OK, STATUS_ERROR, STATUS_OK,
        ]
        assert "exploding payload" in results[1].error
        assert results[0].value == 1 and results[2].value == 3

    def test_serial_failure_captured_too(self):
        results = ExperimentRunner(workers=1, max_retries=0).map(
            _boom, ["boom"]
        )
        assert results[0].status == STATUS_ERROR
        assert "exploding payload" in results[0].error

    @pytest.mark.parametrize("workers", [1, 2])
    def test_bounded_retry_recovers_transient_failure(
        self, tmp_path, workers
    ):
        marker = tmp_path / f"marker-{workers}"
        results = ExperimentRunner(workers=workers, max_retries=1).map(
            _fail_until_marker_exists, [str(marker)]
        )
        assert results[0].status == STATUS_OK
        assert results[0].value == "recovered"
        assert results[0].attempts == 2

    def test_timeout_reported(self):
        results = ExperimentRunner(
            workers=2, task_timeout=1, max_retries=0
        ).map(_sleep_forever, [None])
        assert results[0].status == STATUS_TIMEOUT
        assert "timed out" in results[0].error

    def test_timeout_once_then_success_accounting(self, tmp_path):
        """attempts counts the timed-out try; seconds spans both."""
        marker = tmp_path / "marker"
        results = ExperimentRunner(
            workers=2, task_timeout=1, max_retries=1, retry_backoff=0.01
        ).map(_timeout_once_then_fast, [str(marker)])
        assert results[0].status == STATUS_OK
        assert results[0].value == "fast"
        assert results[0].attempts == 2
        # Wall-clock covers the full timed-out first attempt.
        assert results[0].seconds >= 1.0

    def test_timeout_exhausts_retry_budget_accounting(self):
        results = ExperimentRunner(
            workers=2, task_timeout=1, max_retries=1, retry_backoff=0.01
        ).map(_sleep_forever, [None])
        assert results[0].status == STATUS_TIMEOUT
        assert results[0].attempts == 2
        assert results[0].seconds >= 2.0  # two timed-out attempts

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_exhausts_retry_budget_accounting(self, workers):
        results = ExperimentRunner(
            workers=workers, max_retries=2, retry_backoff=0.0
        ).map(_always_raises, [None])
        assert results[0].status == STATUS_ERROR
        assert results[0].attempts == 3
        assert results[0].seconds > 0.0
        assert "permanent failure" in results[0].error

    def test_serial_transient_failure_accounting(self, tmp_path):
        results = ExperimentRunner(workers=1, max_retries=1).map(
            _fail_until_marker_exists, [str(tmp_path / "m")]
        )
        assert results[0].status == STATUS_OK
        assert results[0].attempts == 2
        assert results[0].seconds > 0.0

    def test_serial_timeout_warns_once(self):
        from repro.runner import pool

        pool._SERIAL_TIMEOUT_WARNED = False
        with pytest.warns(RuntimeWarning, match="ignored in serial mode"):
            ExperimentRunner(workers=1, task_timeout=5).map(
                _square, [1, 2]
            )
        # Second map in the same process stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ExperimentRunner(workers=1, task_timeout=5).map(_square, [3])

    def test_keys_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner().map(_square, [1, 2], keys=["only-one"])

    def test_empty_batch(self):
        assert ExperimentRunner(workers=4).map(_square, []) == []


class TestSpecExecution:
    def test_unknown_kind_rejected(self):
        spec = RunSpec(kind="nope", dataset_key="toy")
        with pytest.raises(ValueError):
            execute_spec(spec)

    def test_spec_key_is_stable(self):
        spec = RunSpec(kind="rl_score", dataset_key="toy", seed=3, index=7)
        assert spec.key == "rl_score:toy:7:seed3"


class TestParallelCompare:
    def test_worker_count_does_not_change_scores(self):
        dataset = load_toy(with_gold=False)
        serial = compare_planners(dataset, runs=3, episodes=40, workers=1)
        parallel = compare_planners(dataset, runs=3, episodes=40, workers=2)
        assert serial == parallel

    def test_root_seed_reproducible(self):
        dataset = load_toy(with_gold=False)
        a = compare_planners(
            dataset, runs=2, episodes=30, root_seed=123, workers=2
        )
        b = compare_planners(
            dataset, runs=2, episodes=30, root_seed=123, workers=1
        )
        assert a == b

    def test_all_runs_failing_raises_planning_error(self):
        dataset = load_toy(with_gold=False)
        with pytest.raises(PlanningError):
            # episodes=0 is rejected by the learner in every run.
            compare_planners(dataset, runs=2, episodes=-1)

    def test_manifests_identical_across_worker_counts(self, tmp_path):
        dataset = load_toy(with_gold=False)
        dir1, dir4 = tmp_path / "w1", tmp_path / "w4"
        compare_planners(
            dataset, runs=2, episodes=30, workers=1, out_dir=dir1
        )
        compare_planners(
            dataset, runs=2, episodes=30, workers=4, out_dir=dir4
        )
        m1, m4 = RunManifest.load(dir1), RunManifest.load(dir4)
        assert m1.fingerprint == m4.fingerprint
        assert m1.result == m4.result
        # The per-episode metrics stream is byte-identical too.
        s1 = (dir1 / EPISODES_NAME).read_text()
        s4 = (dir4 / EPISODES_NAME).read_text()
        assert s1 == s4
        assert s1  # non-empty: stats were actually collected

    def test_episode_stream_rows_are_json(self, tmp_path):
        dataset = load_toy(with_gold=False)
        out = tmp_path / "run"
        compare_planners(dataset, runs=1, episodes=20, out_dir=out)
        rows = [
            json.loads(line)
            for line in (out / EPISODES_NAME).read_text().splitlines()
        ]
        assert len(rows) == 20
        assert {"task", "episode", "total_reward"} <= set(rows[0])
