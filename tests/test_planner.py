"""Unit tests for the RLPlanner facade (repro.core.planner)."""

import pytest

from repro import RLPlanner
from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.exceptions import UntrainedPolicyError
from repro.core.items import ItemType
from repro.core.qtable import QTable

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ],
        name="unit",
    )


@pytest.fixture
def planner(catalog):
    config = PlannerConfig(
        episodes=30, coverage_threshold=1.0, exploration=0.1, seed=0
    )
    return RLPlanner(catalog, make_task(), config)


class TestLifecycle:
    def test_unfitted_refuses_everything(self, planner):
        assert not planner.is_fitted
        with pytest.raises(UntrainedPolicyError):
            planner.qtable
        with pytest.raises(UntrainedPolicyError):
            planner.recommend("p1")

    def test_fit_then_recommend(self, planner):
        result = planner.fit()
        assert planner.is_fitted
        assert planner.last_learning_result is result
        plan, score = planner.recommend_scored("p1")
        assert len(plan) == 4
        assert score.is_valid

    def test_score_arbitrary_plan(self, planner, catalog):
        from repro.core.plan import plan_from_ids

        planner.fit()
        plan = plan_from_ids(catalog, ["p1", "s1", "p2", "s2"])
        assert planner.score(plan).value == 4.0

    def test_reward_function_exposed(self, planner):
        reward = planner.reward_function()
        assert reward.task is planner.task

    def test_policy_entries_snapshot(self, planner):
        planner.fit()
        entries = planner.policy_entries()
        assert entries
        assert all(
            state in planner.catalog and action in planner.catalog
            for state, action in entries
        )


class TestAdoptAndTransfer:
    def test_adopt_policy_same_catalog(self, planner, catalog):
        table = QTable(catalog)
        table.set("p1", "s1", 1.0)
        table.update_count = 1
        planner.adopt_policy(table)
        assert planner.is_fitted

    def test_adopt_policy_foreign_catalog_rejected(self, planner):
        other = Catalog([make_item("zzz")], name="other")
        with pytest.raises(UntrainedPolicyError):
            planner.adopt_policy(QTable(other))

    def test_transfer_to_shared_catalog(self, planner):
        planner.fit()
        target_catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("p2", ItemType.PRIMARY, topics={"t2"}),
                make_item("s1", ItemType.SECONDARY, topics={"t3"}),
                make_item("s9", ItemType.SECONDARY, topics={"t4"}),
            ],
            name="target",
        )
        target, result = planner.transfer_to(
            target_catalog, make_task()
        )
        assert target.is_fitted
        assert result.report.entries_transferred > 0
        plan = target.recommend("p1")
        assert len(plan) == 4


class TestRecommendBest:
    def test_picks_highest_scoring_start(self, planner):
        planner.fit()
        plan, score = planner.recommend_best(["p1", "p2"])
        individual = [
            planner.recommend_scored(start)[1].value
            for start in ("p1", "p2")
        ]
        assert score.value == max(individual)

    def test_default_start_pool_is_clean_primaries(self, planner):
        planner.fit()
        plan, score = planner.recommend_best()
        assert plan.items[0].is_primary
        assert plan.items[0].prerequisites.is_empty


class TestPlannerPersistence:
    def test_save_and_load_policy(self, planner, tmp_path):
        planner.fit()
        original = planner.recommend("p1")
        path = tmp_path / "policy.json"
        planner.save_policy(path)

        from repro.core.config import PlannerConfig
        fresh = RLPlanner(
            planner.catalog,
            planner.task,
            PlannerConfig(
                episodes=30, coverage_threshold=1.0, seed=0
            ),
        )
        fresh.load_policy(path)
        assert fresh.is_fitted
        assert fresh.recommend("p1").item_ids == original.item_ids
