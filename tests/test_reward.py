"""Unit tests for the Equation-2 reward function (repro.core.reward)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig, RewardWeights
from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.items import ItemType, Prerequisites
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item(
                "s2",
                ItemType.SECONDARY,
                topics={"t4"},
                prereqs=Prerequisites.all_of(["p1"]),
            ),
            make_item("dead", ItemType.SECONDARY, topics={"zzz"}),
        ]
    )


@pytest.fixture
def task():
    return make_task(gap=1)


@pytest.fixture
def config():
    return PlannerConfig(coverage_threshold=1.0, exploration=0.0)


@pytest.fixture
def reward(task, config):
    return RewardFunction(task, config)


def builder_with(catalog, *ids):
    builder = PlanBuilder(catalog)
    for item_id in ids:
        builder.add_by_id(item_id)
    return builder


class TestCoverageGate:
    def test_new_ideal_topic_passes(self, catalog, reward):
        builder = builder_with(catalog, "p1")
        assert reward.coverage_gate(builder, catalog["s1"]) == 1

    def test_no_new_ideal_topic_fails(self, catalog, reward):
        builder = builder_with(catalog, "p1")
        assert reward.coverage_gate(builder, catalog["dead"]) == 0

    def test_duplicate_topic_fails(self, catalog, task, config):
        # p1 covers t1; a second t1-only item adds nothing.
        catalog2 = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("x", ItemType.SECONDARY, topics={"t1"}),
            ]
        )
        reward = RewardFunction(task, config)
        builder = builder_with(catalog2, "p1")
        assert reward.coverage_gate(builder, catalog2["x"]) == 0

    def test_threshold_of_two_topics(self, catalog, task):
        config = PlannerConfig(coverage_threshold=2.0)
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1")
        # s1 adds only one ideal topic (t3) -> fails the epsilon=2 gate.
        assert reward.coverage_gate(builder, catalog["s1"]) == 0


class TestGapGate:
    def test_no_prereq_passes(self, catalog, reward):
        builder = builder_with(catalog, "p1")
        assert reward.gap_gate(builder, catalog["s1"]) == 1

    def test_prereq_satisfied(self, catalog, reward):
        builder = builder_with(catalog, "p1")
        assert reward.gap_gate(builder, catalog["s2"]) == 1

    def test_prereq_missing_fails(self, catalog, reward):
        builder = builder_with(catalog, "p2")
        assert reward.gap_gate(builder, catalog["s2"]) == 0

    def test_gap_distance_enforced(self, catalog, config):
        task = make_task(gap=3)
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1", "p2")
        # s2 would land at position 2; p1 at 0 -> distance 2 < gap 3.
        assert reward.gap_gate(builder, catalog["s2"]) == 0

    def test_theme_adjacency_mode(self, config):
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, topics={"museum"}),
                make_item("b", ItemType.SECONDARY,
                          topics={"museum", "park"}),
                make_item("c", ItemType.SECONDARY, topics={"park"}),
            ]
        )
        task = TaskSpec(
            hard=HardConstraints.for_trips(
                10, 1, 2, theme_adjacency_gap=True
            ),
            soft=SoftConstraints(
                ideal_topics=frozenset({"museum", "park"}),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "S"]]
                ),
            ),
        )
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "a")
        assert reward.gap_gate(builder, catalog["b"]) == 0  # shares museum
        assert reward.gap_gate(builder, catalog["c"]) == 1


class TestEquation2:
    def test_theta_zero_kills_reward(self, catalog, reward):
        builder = builder_with(catalog, "p2")
        breakdown = reward.breakdown(builder, catalog["s2"])
        assert breakdown.r2_gap == 0
        assert breakdown.theta == 0
        assert breakdown.total == 0.0

    def test_gated_reward_mixes_terms(self, catalog, task, config):
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1")
        breakdown = reward.breakdown(builder, catalog["s1"])
        assert breakdown.theta == 1
        expected = (
            config.weights.delta * breakdown.similarity
            + config.weights.beta * breakdown.type_weight
        )
        assert breakdown.total == pytest.approx(expected)

    def test_primary_weighted_above_secondary(self, catalog, reward):
        assert reward.type_weight(catalog["p1"]) > reward.type_weight(
            catalog["s1"]
        )

    def test_category_weights_override_type(self, task):
        config = PlannerConfig(
            weights=RewardWeights.with_categories({"x": 0.9, "y": 0.1})
        )
        reward = RewardFunction(task, config)
        item_x = make_item("cx", ItemType.SECONDARY, category="x")
        item_y = make_item("cy", ItemType.PRIMARY, category="y")
        assert reward.type_weight(item_x) == 0.9
        assert reward.type_weight(item_y) == 0.1

    def test_best_possible_bounds_single_step(self, catalog, task, config):
        reward = RewardFunction(task, config)
        bound = reward.best_possible()
        builder = builder_with(catalog, "p1")
        for item_id in ("p2", "s1", "s2"):
            assert reward(builder, catalog[item_id]) <= bound


class TestFeasibilityGate:
    def test_blocks_primary_starvation(self, config):
        # 2 primaries required, 4 slots; picking secondaries in the
        # first three slots leaves only one slot for two primaries.
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("p2", ItemType.PRIMARY, topics={"t2"}),
                make_item("s1", ItemType.SECONDARY, topics={"t3"}),
                make_item("s2", ItemType.SECONDARY, topics={"t4"}),
                make_item("s3", ItemType.SECONDARY, topics={"t5"}),
            ]
        )
        task = make_task(ideal_topics=("t1", "t2", "t3", "t4", "t5"))
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "s1", "s2")
        # Slot 2 of 4: a third secondary leaves 1 slot for 2 primaries.
        assert not reward.feasibility_gate(builder, catalog["s3"])
        assert reward.feasibility_gate(builder, catalog["p1"])

    def test_blocks_category_starvation(self, config):
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"},
                          category="x"),
                make_item("p2", ItemType.PRIMARY, topics={"t2"},
                          category="x"),
                make_item("s1", ItemType.SECONDARY, topics={"t3"},
                          category="y"),
                make_item("s2", ItemType.SECONDARY, topics={"t4"},
                          category="z"),
                make_item("s3", ItemType.SECONDARY, topics={"t5"},
                          category="z"),
            ]
        )
        hard = HardConstraints.for_courses(
            12, 2, 2, 1, category_credits={"y": 3}
        )
        task = TaskSpec(
            hard=hard,
            soft=SoftConstraints(
                ideal_topics=frozenset({"t1", "t2", "t3", "t4", "t5"}),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "P", "S"]]
                ),
            ),
        )
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1", "s2")
        # Two slots left, need p2 (primary quota) and s1 (category y):
        # another z-category secondary starves category y or the quota.
        assert not reward.feasibility_gate(builder, catalog["s3"])
        assert reward.feasibility_gate(builder, catalog["s1"])

    def test_unreachable_prerequisite_pool_detected(self, config):
        # The only remaining primary requires an item that never entered
        # the plan, so it can no longer be scheduled.
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item(
                    "p2",
                    ItemType.PRIMARY,
                    topics={"t2"},
                    prereqs=Prerequisites.all_of(["s3"]),
                ),
                make_item("s1", ItemType.SECONDARY, topics={"t3"}),
                make_item("s2", ItemType.SECONDARY, topics={"t4"}),
                make_item("s3", ItemType.SECONDARY, topics={"t5"}),
            ]
        )
        task = make_task(ideal_topics=("t1", "t2", "t3", "t4", "t5"))
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1", "s1")
        # Choosing s2 now means slots 3 must provide the second primary,
        # but p2's prerequisite s3 is not in the plan -> unreachable.
        assert not reward.feasibility_gate(builder, catalog["s2"])

    def test_mask_tiers_prefer_fully_valid(self, catalog, task, config):
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1")
        masked = reward.mask_actions(builder, builder.remaining_items())
        ids = {item.item_id for item in masked}
        assert "dead" not in ids  # fails the coverage gate

    def test_mask_never_empty(self, catalog, task, config):
        reward = RewardFunction(task, config)
        builder = builder_with(catalog, "p1")
        # Restrict candidates to a single gate-failing item: the mask
        # must fall back rather than deadlock.
        masked = reward.mask_actions(builder, (catalog["dead"],))
        assert masked == (catalog["dead"],)
