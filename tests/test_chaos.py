"""Fault-injection (chaos) suite for the runner's recovery paths.

Every test here injects a fault deterministically — worker kills,
transient exceptions, stalls, torn artifact writes — and asserts the
PR-2 invariant survives: any kill/corrupt/recover sequence produces
results identical to an undisturbed run.  Run with ``make test-chaos``
(``pytest -m chaos``); the suite is also part of the default tier-1
run.
"""

import json
import logging

import pytest

from repro.analysis import compare_planners
from repro.core.exceptions import ArtifactError, PlanningError
from repro.datasets import load_toy
from repro.runner import (
    CHECKPOINT_NAME,
    CHECKPOINT_PREV_NAME,
    EPISODES_NAME,
    ExperimentRunner,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    POLICY_NAME,
    RECOMMENDATION_NAME,
    RunSpec,
    STATUS_OK,
    corrupt_file,
    execute_spec,
    parse_fault_spec,
    resume_training,
    run_training,
    tear_file,
    tolerant_stream_rows,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def dataset():
    return load_toy(with_gold=False)


def _probe_specs(n):
    return [
        RunSpec(kind="probe", dataset_key="toy", seed=100 + i, index=i)
        for i in range(n)
    ]


def _values(results):
    return [r.value for r in results]


class TestFaultSpecParsing:
    def test_full_grammar(self):
        rules = parse_fault_spec(
            "kill@1,3;error:p=0.25,seed=7;slow@2:seconds=0.2;io@0:times=2"
        )
        assert [r.kind for r in rules] == ["kill", "error", "slow", "io"]
        assert rules[0].tasks == frozenset({1, 3})
        assert rules[1].p == 0.25 and rules[1].seed == 7
        assert rules[2].seconds == 0.2
        assert rules[3].times == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("meteor@1")

    def test_bad_parameter_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("kill@1:volume=11")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(" ; ")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultRule(kind="error", p=1.5)

    def test_probability_decision_is_deterministic(self):
        rule = FaultRule(kind="error", p=0.5, seed=3)
        decisions = [
            FaultInjector._decides(0, rule, i) for i in range(64)
        ]
        assert decisions == [
            FaultInjector._decides(0, rule, i) for i in range(64)
        ]
        # A 0.5-probability rule should actually split the tasks.
        assert 0 < sum(decisions) < 64


class TestWorkerDeathRecovery:
    def test_killed_worker_batch_matches_undisturbed(self, tmp_path):
        specs = _probe_specs(6)
        keys = [s.key for s in specs]
        undisturbed = ExperimentRunner(workers=2).map(
            execute_spec, specs, keys=keys
        )
        injector = FaultInjector.from_spec(
            "kill@1,4", state_dir=tmp_path / "faults"
        )
        survived = ExperimentRunner(
            workers=2, fault_injector=injector
        ).map(execute_spec, specs, keys=keys)
        assert all(r.status == STATUS_OK for r in survived)
        assert _values(survived) == _values(undisturbed)

    def test_pool_death_does_not_consume_retry_budget(self, tmp_path):
        # max_retries=0: a task that dies with the pool must still be
        # re-submitted (the death is not attributed to it).
        injector = FaultInjector.from_spec(
            "kill@0", state_dir=tmp_path / "faults"
        )
        results = ExperimentRunner(
            workers=2, max_retries=0, fault_injector=injector
        ).map(execute_spec, _probe_specs(3))
        assert all(r.status == STATUS_OK for r in results)
        assert all(r.attempts == 1 for r in results)

    def test_degrades_to_serial_after_death_limit(self, tmp_path, caplog):
        injector = FaultInjector.from_spec(
            "kill@0", state_dir=tmp_path / "faults"
        )
        runner = ExperimentRunner(
            workers=2, fault_injector=injector, pool_death_limit=1
        )
        with caplog.at_level(logging.WARNING, logger="repro.runner.pool"):
            results = runner.map(execute_spec, _probe_specs(2))
        assert all(r.status == STATUS_OK for r in results)
        assert any("degrading" in rec.message for rec in caplog.records)

    def test_compare_with_kills_scores_identical(self, tmp_path, dataset):
        baseline = compare_planners(
            dataset, runs=3, episodes=30, workers=2
        )
        injector = FaultInjector.from_spec(
            "kill@1", state_dir=tmp_path / "faults"
        )
        chaotic = compare_planners(
            dataset, runs=3, episodes=30, workers=2,
            fault_injector=injector,
        )
        assert chaotic == baseline


class TestTransientFaults:
    def test_error_fault_recovered_by_retry(self, tmp_path):
        injector = FaultInjector.from_spec(
            "error@2", state_dir=tmp_path / "faults"
        )
        results = ExperimentRunner(
            workers=2, max_retries=1, retry_backoff=0.01,
            fault_injector=injector,
        ).map(execute_spec, _probe_specs(4))
        assert all(r.status == STATUS_OK for r in results)
        assert results[2].attempts == 2
        assert all(
            r.attempts == 1 for r in results if r.index != 2
        )

    def test_io_fault_recovered_by_retry_serial(self, tmp_path):
        injector = FaultInjector.from_spec(
            "io@0", state_dir=tmp_path / "faults"
        )
        results = ExperimentRunner(
            workers=1, max_retries=1, retry_backoff=0.0,
            fault_injector=injector,
        ).map(execute_spec, _probe_specs(2))
        assert all(r.status == STATUS_OK for r in results)
        assert results[0].attempts == 2

    def test_slow_fault_trips_parallel_timeout(self, tmp_path):
        injector = FaultInjector(
            [FaultRule(kind="slow", tasks=frozenset({0}), seconds=5.0)],
            state_dir=tmp_path / "faults",
        )
        results = ExperimentRunner(
            workers=2, task_timeout=1, max_retries=1,
            retry_backoff=0.0, fault_injector=injector,
        ).map(execute_spec, _probe_specs(2))
        # First attempt times out, the (single-shot) fault is spent,
        # and the retry completes.
        assert results[0].status == STATUS_OK
        assert results[0].attempts == 2
        assert results[1].attempts == 1

    def test_injected_fault_is_a_runtime_error(self):
        assert issubclass(InjectedFault, RuntimeError)

    def test_fire_counts_are_bounded(self, tmp_path):
        injector = FaultInjector(
            [FaultRule(kind="error", tasks=frozenset({0}), times=2)],
            state_dir=tmp_path / "faults",
        )
        for expected in (InjectedFault, InjectedFault, None):
            if expected is None:
                injector.perturb(0)
            else:
                with pytest.raises(expected):
                    injector.perturb(0)


class TestCheckpointIntegrity:
    def test_rotation_keeps_previous_generation(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=60, checkpoint_every=30
        )
        assert (tmp_path / "run" / CHECKPOINT_NAME).exists()
        assert (tmp_path / "run" / CHECKPOINT_PREV_NAME).exists()
        latest = json.loads(
            (tmp_path / "run" / CHECKPOINT_NAME).read_text()
        )
        rotated = json.loads(
            (tmp_path / "run" / CHECKPOINT_PREV_NAME).read_text()
        )
        assert latest["training_state"]["episode"] == 60
        assert rotated["training_state"]["episode"] == 30

    def test_resume_from_torn_checkpoint_is_bit_identical(
        self, dataset, tmp_path, caplog
    ):
        straight = run_training(
            dataset, tmp_path / "straight", episodes=120,
            checkpoint_every=30,
        )
        run_training(
            dataset, tmp_path / "torn", episodes=120,
            checkpoint_every=30, limit_episodes=60,
        )
        tear_file(tmp_path / "torn" / CHECKPOINT_NAME)
        with caplog.at_level(
            logging.WARNING, logger="repro.runner.checkpoint"
        ):
            resumed = resume_training(tmp_path / "torn")
        assert resumed.complete
        assert any("falling back" in rec.message for rec in caplog.records)
        assert resumed.plan_item_ids == straight.plan_item_ids
        for name in (POLICY_NAME, RECOMMENDATION_NAME):
            assert (
                (tmp_path / "straight" / name).read_text()
                == (tmp_path / "torn" / name).read_text()
            ), name

    def test_resume_from_bit_rotted_checkpoint_falls_back(
        self, dataset, tmp_path
    ):
        # corrupt_file keeps the length, so only the checksum (or JSON
        # syntax) can catch it.
        run_training(
            dataset, tmp_path / "rot", episodes=90,
            checkpoint_every=30, limit_episodes=60,
        )
        corrupt_file(tmp_path / "rot" / CHECKPOINT_NAME)
        resumed = resume_training(tmp_path / "rot")
        assert resumed.complete
        assert resumed.completed_episodes == 90

    def test_both_generations_corrupt_raises_typed_error(
        self, dataset, tmp_path
    ):
        run_training(
            dataset, tmp_path / "dead", episodes=90,
            checkpoint_every=30, limit_episodes=60,
        )
        tear_file(tmp_path / "dead" / CHECKPOINT_NAME)
        tear_file(tmp_path / "dead" / CHECKPOINT_PREV_NAME)
        with pytest.raises(PlanningError):
            resume_training(tmp_path / "dead")

    def test_missing_latest_falls_back_to_prev(self, dataset, tmp_path):
        # The crash window between rotation and the new write leaves
        # only checkpoint.prev.json behind.
        run_training(
            dataset, tmp_path / "gap", episodes=90,
            checkpoint_every=30, limit_episodes=60,
        )
        (tmp_path / "gap" / CHECKPOINT_NAME).unlink()
        resumed = resume_training(tmp_path / "gap")
        assert resumed.complete
        assert resumed.completed_episodes == 90


class TestTornStreams:
    def test_half_written_trailing_line_tolerated(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=60,
            checkpoint_every=30, limit_episodes=30,
        )
        stream = tmp_path / "run" / EPISODES_NAME
        with stream.open("a") as handle:
            # A row cut mid-write, no trailing newline — what a
            # SIGKILL during write() leaves behind.
            handle.write('{"episode": 30, "length')
        resume_training(tmp_path / "run")
        rows = [
            json.loads(line)
            for line in stream.read_text().splitlines()
        ]
        assert sorted(r["episode"] for r in rows) == list(range(60))

    def test_tolerant_reader_reports_valid_prefix(self, tmp_path):
        stream = tmp_path / "episodes.jsonl"
        stream.write_text(
            '{"episode": 0}\n{"episode": 1}\n{"epis'
        )
        rows = tolerant_stream_rows(stream)
        assert [r["episode"] for r in rows] == [0, 1]

    def test_tolerant_reader_missing_file_is_empty(self, tmp_path):
        assert tolerant_stream_rows(tmp_path / "nope.jsonl") == []


class TestArtifactChecksum:
    def test_bit_rot_detected_on_load(self, dataset, tmp_path):
        from repro.core.serialization import read_policy_file, save_policy
        from repro.core.qtable import QTable

        table = QTable(dataset.catalog)
        items = list(dataset.catalog.item_ids)[:2]
        table.set(items[0], items[1], 1.25)
        path = tmp_path / "policy.json"
        save_policy(table, path)
        # Flip one digit of a Q-value, keeping the JSON valid: only
        # the checksum can notice.
        text = path.read_text().replace("1.25", "1.35")
        assert text != path.read_text()
        path.write_text(text)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            read_policy_file(path)

    def test_corrupt_manifest_raises_artifact_error(self, tmp_path):
        from repro.runner import RunManifest

        manifest = RunManifest(
            protocol="compare", dataset="toy", dataset_seed=0
        )
        manifest.save(tmp_path)
        tear_file(tmp_path / "manifest.json", keep_fraction=0.3)
        with pytest.raises(ArtifactError):
            RunManifest.load(tmp_path)
