"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "atlantis"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("njit_dsct", "univ2_ds", "nyc", "paris", "toy"):
            assert key in out

    def test_plan_toy(self, capsys):
        assert main(["plan", "toy", "--episodes", "30"]) == 0
        out = capsys.readouterr().out
        assert "plan    :" in out
        assert "score   :" in out

    def test_plan_custom_start(self, capsys):
        assert main(["plan", "toy", "--start", "m3",
                     "--episodes", "30"]) == 0
        out = capsys.readouterr().out
        assert "start   : m3" in out

    def test_compare_toy(self, capsys):
        assert main(["compare", "toy", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "RL-Planner" in out
        assert "Gold Standard" in out

    def test_transfer_toy_to_toy(self, capsys):
        assert main(["transfer", "toy", "toy"]) == 0
        out = capsys.readouterr().out
        assert "applied to" in out

    def test_diagnose_feasible_dataset(self, capsys):
        assert main(["diagnose", "toy"]) == 0
        out = capsys.readouterr().out
        assert "no structural infeasibility" in out


class TestRunnerCommands:
    def test_run_compare_parallel(self, capsys, tmp_path):
        out = tmp_path / "cmp"
        assert main([
            "run", "toy", "--protocol", "compare", "--runs", "2",
            "--episodes", "30", "--workers", "2", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "RL-Planner" in text
        assert (out / "manifest.json").exists()
        assert (out / "episodes.jsonl").exists()

    def test_compare_accepts_workers(self, capsys):
        assert main([
            "compare", "toy", "--runs", "2", "--workers", "2",
        ]) == 0
        assert "RL-Planner" in capsys.readouterr().out

    def test_run_train_requires_out(self, capsys):
        assert main(["run", "toy", "--protocol", "train"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_run_train_then_resume(self, capsys, tmp_path):
        out = tmp_path / "train"
        assert main([
            "run", "toy", "--protocol", "train", "--episodes", "60",
            "--checkpoint-every", "20", "--limit-episodes", "20",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "interrupted" in text
        assert (out / "checkpoint.json").exists()

        assert main(["resume", str(out)]) == 0
        text = capsys.readouterr().out
        assert "complete" in text
        assert "score" in text
        assert (out / "policy.json").exists()
        assert (out / "recommendation.json").exists()

    def test_run_scalability(self, capsys):
        assert main([
            "run", "toy", "--protocol", "scalability", "--workers", "2",
        ]) == 0
        assert "episodes" in capsys.readouterr().out
