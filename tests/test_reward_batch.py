"""The batched reward engine must equal the scalar Eq. 2 path exactly.

``RewardFunction.reward_batch`` is a pure performance rewrite: for any
partial plan and candidate set it must produce, to the last bit, the
same numbers as calling the scalar ``__call__`` per item, and the
batched ``mask_actions`` must return the same tuple as the scalar
tiering.  These tests sweep randomized synthetic instances (all three
similarity modes), the trip datasets (haversine distance budgets) and
Univ-2 (per-category credit minima), plus the feedback-adjusted
wrapper and the off-catalog fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PlannerConfig, SimilarityMode
from repro.core.items import Item, ItemType
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction, batch_rewards
from repro.datasets import load
from repro.datasets.synthetic import generate_instance
from repro.feedback.adapter import FeedbackAdjustedReward
from repro.feedback.models import Feedback
from repro.feedback.store import FeedbackStore


def _assert_step_equality(reward, builder, candidates) -> None:
    """Batch == scalar for rewards, gates and the masked action set."""
    batch = batch_rewards(reward, builder, candidates)
    scalar = np.array([reward(builder, item) for item in candidates])
    np.testing.assert_array_equal(batch, scalar)
    if isinstance(reward, RewardFunction):
        masked = reward.mask_actions(builder, candidates)
        scalar_masked = reward._mask_actions_scalar(builder, candidates)
        assert masked == scalar_masked


def _greedy_sweep(catalog, task, reward, steps: int = 6) -> None:
    """Walk a greedy episode, checking equality at every step."""
    builder = PlanBuilder(catalog)
    builder.add(catalog.item_at(0))
    for _ in range(steps):
        candidates = builder.remaining_items()
        if not candidates:
            break
        _assert_step_equality(reward, builder, candidates)
        scores = batch_rewards(reward, builder, candidates)
        builder.add(candidates[int(np.argmax(scores))])


class TestSyntheticInstances:
    @pytest.mark.parametrize(
        "mode",
        [SimilarityMode.AVERAGE, SimilarityMode.MINIMUM,
         SimilarityMode.MAXIMUM],
        ids=lambda m: m.value,
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_scalar(self, mode, seed):
        catalog, task = generate_instance(num_items=40, seed=seed)
        config = PlannerConfig(similarity=mode)
        reward = RewardFunction(task, config)
        _greedy_sweep(catalog, task, reward)


class TestPaperDatasets:
    @pytest.mark.parametrize("name", ["nyc", "paris"])
    def test_trip_datasets(self, name):
        """Trips: haversine travel budget + POI categories."""
        dataset = load(name, seed=0, with_gold=False)
        reward = RewardFunction(dataset.task, dataset.default_config)
        _greedy_sweep(dataset.catalog, dataset.task, reward)

    def test_univ2_category_minima(self):
        """Univ-2: six per-category credit minima in the lookahead."""
        dataset = load("univ2_ds", seed=0, with_gold=False)
        reward = RewardFunction(dataset.task, dataset.default_config)
        _greedy_sweep(dataset.catalog, dataset.task, reward)


class TestFeedbackWrapper:
    def test_adjusted_batch_equals_adjusted_scalar(self):
        catalog, task = generate_instance(num_items=30, seed=7)
        store = FeedbackStore()
        for index, item_id in enumerate(catalog.item_ids[:10]):
            store.add(Feedback(item_id, utility=((-1) ** index) * 0.8))
        reward = FeedbackAdjustedReward(
            RewardFunction(task, PlannerConfig()), store
        )
        _greedy_sweep(catalog, task, reward)


class TestFallbacks:
    def test_off_catalog_candidate_uses_scalar_path(self):
        """Candidates outside the catalog fall back per-item, same
        numbers."""
        catalog, task = generate_instance(num_items=20, seed=3)
        reward = RewardFunction(task, PlannerConfig())
        builder = PlanBuilder(catalog)
        builder.add(catalog.item_at(0))
        stranger = Item(
            item_id="offcat",
            name="Off-catalog item",
            item_type=ItemType.SECONDARY,
            credits=3.0,
            topics=frozenset({"topic000"}),
        )
        candidates = list(builder.remaining_items()[:5]) + [stranger]
        batch = batch_rewards(reward, builder, candidates)
        scalar = np.array([reward(builder, item) for item in candidates])
        np.testing.assert_array_equal(batch, scalar)

    def test_empty_candidate_set(self):
        catalog, task = generate_instance(num_items=20, seed=3)
        reward = RewardFunction(task, PlannerConfig())
        builder = PlanBuilder(catalog)
        builder.add(catalog.item_at(0))
        assert batch_rewards(reward, builder, []).shape == (0,)
        assert reward.mask_actions(builder, ()) == ()

    def test_batch_rewards_helper_without_batch_method(self):
        """Objects lacking reward_batch are scored per item."""

        class ScalarOnly:
            def __init__(self, base):
                self.base = base

            def __call__(self, builder, item):
                return self.base(builder, item)

        catalog, task = generate_instance(num_items=20, seed=5)
        base = RewardFunction(task, PlannerConfig())
        builder = PlanBuilder(catalog)
        builder.add(catalog.item_at(0))
        candidates = builder.remaining_items()
        np.testing.assert_array_equal(
            batch_rewards(ScalarOnly(base), builder, candidates),
            batch_rewards(base, builder, candidates),
        )
