"""Failure-injection tests: adversarial instances must degrade, not crash.

The planner's contract under hostile inputs: always return a plan (the
masking tiers fall back rather than deadlock), let the validator/scorer
report the damage, and never raise from ordinary planning calls.
"""

import pytest

from repro import RLPlanner
from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.items import ItemType, Prerequisites
from repro.core.plan import PlanBuilder

from conftest import make_item, make_task


class TestDegenerateTopics:
    def test_all_items_share_one_topic(self):
        """Coverage gate fails everywhere after step 1: the planner
        must still emit a full-length plan (fallback tiers)."""
        catalog = Catalog(
            [
                make_item(
                    f"x{i}",
                    ItemType.PRIMARY if i < 2 else ItemType.SECONDARY,
                    topics={"only"},
                )
                for i in range(6)
            ]
        )
        task = make_task(ideal_topics=("only",))
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=30, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["x0"])
        plan, score = planner.recommend_scored("x0")
        assert len(plan) == 4
        # The only ideal topic is covered; plan length/split decide
        # validity, not coverage.
        assert score.topic_coverage == 1.0

    def test_ideal_topics_absent_from_catalog(self):
        """The user wants topics nobody teaches: r1 never fires, plans
        still materialize, coverage reads 0."""
        catalog = Catalog(
            [
                make_item(
                    f"x{i}",
                    ItemType.PRIMARY if i < 2 else ItemType.SECONDARY,
                    topics={f"t{i}"},
                )
                for i in range(6)
            ]
        )
        task = make_task(ideal_topics=("missing1", "missing2"))
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=30, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["x0"])
        plan, score = planner.recommend_scored("x0")
        assert len(plan) == 4
        assert score.topic_coverage == 0.0


class TestHostilePrerequisites:
    def test_everything_requires_one_item(self):
        """A single gatekeeper course: plans starting elsewhere must
        still complete."""
        gate = make_item("gate", ItemType.PRIMARY, topics={"g"})
        others = [
            make_item(
                f"x{i}",
                ItemType.PRIMARY if i == 0 else ItemType.SECONDARY,
                topics={f"t{i}"},
                prereqs=Prerequisites.all_of(["gate"]),
            )
            for i in range(5)
        ]
        catalog = Catalog([gate] + others)
        task = make_task(ideal_topics=("g",) + tuple(
            f"t{i}" for i in range(5)
        ))
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=40, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["gate"])
        plan, score = planner.recommend_scored("gate")
        assert plan.item_ids[0] == "gate"
        assert score.is_valid

    def test_unsatisfiable_prerequisites_never_deadlock(self):
        """Mutually-gated items (cycle, unvalidated) can never both be
        placed legally; the fallback still yields a full plan with the
        violation reported."""
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, topics={"t1"}),
                make_item("b", ItemType.PRIMARY, topics={"t2"}),
                make_item(
                    "c", ItemType.SECONDARY, topics={"t3"},
                    prereqs=Prerequisites.all_of(["d"]),
                ),
                make_item(
                    "d", ItemType.SECONDARY, topics={"t4"},
                    prereqs=Prerequisites.all_of(["c"]),
                ),
            ],
            validate_prerequisites=False,
        )
        task = make_task()
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=30, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["a"])
        plan, score = planner.recommend_scored("a")
        assert len(plan) == 4  # forced to use c and d anyway
        assert not score.is_valid
        assert "prerequisite_gap" in score.report.codes()


class TestTinyCatalogs:
    def test_single_item_catalog(self):
        catalog = Catalog([make_item("solo", ItemType.PRIMARY,
                                     topics={"t"})])
        task = make_task(num_primary=1, num_secondary=0,
                         min_credits=3.0,
                         ideal_topics=("t",),
                         template_labels=[["P"]])
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=5, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["solo"])
        plan, score = planner.recommend_scored("solo")
        assert plan.item_ids == ("solo",)
        assert score.is_valid
        assert score.value == 1.0

    def test_catalog_smaller_than_plan(self):
        """Plan length exceeds the catalog: episodes stop early and the
        short plan is reported invalid, not raised."""
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, topics={"t1"}),
                make_item("b", ItemType.SECONDARY, topics={"t2"}),
            ]
        )
        task = make_task()  # wants 4 items
        planner = RLPlanner(
            catalog, task,
            PlannerConfig(episodes=10, coverage_threshold=1.0, seed=0),
        )
        planner.fit(start_item_ids=["a"])
        plan, score = planner.recommend_scored("a")
        assert len(plan) == 2
        assert not score.is_valid
        assert "length" in score.report.codes()


class TestRewardEdgeCases:
    def test_mask_with_no_candidates(self):
        catalog = Catalog([make_item("only", topics={"t"})])
        from repro.core.reward import RewardFunction

        task = make_task(num_primary=1, num_secondary=0,
                         min_credits=3.0, ideal_topics=("t",),
                         template_labels=[["P"]])
        reward = RewardFunction(task, PlannerConfig())
        builder = PlanBuilder(catalog)
        builder.add_by_id("only")
        assert reward.mask_actions(builder, ()) == ()
