"""Serving-layer suite: admission control, deadlines, breaker, ladder.

Run in isolation with ``make test-serving`` (``pytest -m serving``);
the chaos-marked tests additionally drive the degradation ladder with
deterministic injected faults.
"""

import math

import pytest

from conftest import make_item, make_task
from repro.core.catalog import Catalog
from repro.core.env import DomainMode
from repro.core.exceptions import (
    ArtifactError,
    ConstraintError,
    DataModelError,
    DatasetError,
    InfeasibleError,
    NonRetriableError,
    PlanningError,
    ReproError,
    RetriableError,
    UntrainedPolicyError,
)
from repro.core.items import ItemType, Prerequisites
from repro.core.planner import RLPlanner
from repro.datasets import load, load_toy
from repro.datasets.loaders import Dataset, LOADERS
from repro.obs import MetricsRegistry, use_registry
from repro.runner.faults import FaultInjector, parse_fault_spec
from repro.serving import (
    AdmissionError,
    CircuitBreaker,
    Deadline,
    PlanningService,
    RepairPlanner,
    RUNG_EDA,
    RUNG_REPAIR,
    RUNG_SARSA,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    ServeRequest,
    audit_catalog,
    audit_items,
    screen_request,
)

pytestmark = pytest.mark.serving


class FakeClock:
    """Manually advanced monotonic clock for deadline/breaker tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _items(*specs):
    """specs: (item_id, type, prereq-groups) shorthand."""
    out = []
    for item_id, item_type, groups in specs:
        prereqs = (
            Prerequisites(groups=tuple(frozenset(g) for g in groups))
            if groups
            else Prerequisites.none()
        )
        out.append(make_item(item_id, item_type, prereqs=prereqs))
    return out


P, S = ItemType.PRIMARY, ItemType.SECONDARY


# ----------------------------------------------------------------------
# Admission: item/reference checks
# ----------------------------------------------------------------------


class TestAdmissionChecks:
    def test_clean_catalog_has_no_findings(self, toy_catalog, toy_task):
        report, admitted = audit_catalog(toy_catalog, task=toy_task)
        assert report.ok and not report.rejected
        assert admitted is toy_catalog
        assert report.admitted == len(toy_catalog)

    def test_duplicate_id_flagged(self):
        items = _items(("a", P, ()), ("b", S, ())) + _items(("a", S, ()))
        report, _ = audit_items(items)
        assert "duplicate_id" in report.codes()
        assert report.rejected  # strict mode

    def test_nan_credits_flagged(self):
        # Item.__post_init__ rejects credits <= 0, but NaN passes every
        # comparison — the auditor must catch it explicitly.
        bad = make_item("nan", credits=float("nan"))
        assert math.isnan(bad.credits)
        report, _ = audit_items([bad, make_item("ok")])
        assert "bad_credits" in report.codes()

    def test_infinite_credits_flagged(self):
        report, _ = audit_items([make_item("inf", credits=float("inf"))])
        assert "bad_credits" in report.codes()

    def test_blank_topic_flagged(self):
        report, _ = audit_items([make_item("a", topics=("  ",))])
        assert "bad_topic" in report.codes()

    def test_dangling_prereq_flagged(self):
        items = _items(("a", P, [["ghost"]]), ("b", S, ()))
        report, _ = audit_items(items)
        assert "dangling_prereq" in report.codes()

    def test_or_group_with_one_known_member_is_fine(self):
        items = _items(("a", P, [["ghost", "b"]]), ("b", S, ()))
        report, _ = audit_items(items)
        assert "dangling_prereq" not in report.codes()


class TestCycleDetection:
    def test_two_cycle_flagged_and_named(self):
        items = _items(("a", P, [["b"]]), ("b", P, [["a"]]), ("c", S, ()))
        report, _ = audit_items(items)
        finding = next(
            f for f in report.findings if f.code == "prereq_cycle"
        )
        assert set(finding.item_ids) == {"a", "b"}
        # The report names one concrete witness cycle.
        assert "a -> b" in finding.message or "b -> a" in finding.message

    def test_escapable_or_cycle_not_flagged(self):
        # a requires (b OR c); b requires a; c is clean.  Every plan can
        # route a through c, so nothing is actually locked.
        items = _items(
            ("a", P, [["b", "c"]]), ("b", P, [["a"]]), ("c", S, ())
        )
        report, _ = audit_items(items)
        assert "prereq_cycle" not in report.codes()

    def test_item_depending_on_cycle_is_stuck_too(self):
        items = _items(
            ("a", P, [["b"]]), ("b", P, [["a"]]), ("c", S, [["a"]])
        )
        report, _ = audit_items(items)
        finding = next(
            f for f in report.findings if f.code == "prereq_cycle"
        )
        assert set(finding.item_ids) == {"a", "b", "c"}

    def test_three_cycle_flagged(self):
        items = _items(
            ("a", P, [["b"]]), ("b", P, [["c"]]), ("c", P, [["a"]]),
            ("d", S, ()),
        )
        report, _ = audit_items(items)
        finding = next(
            f for f in report.findings if f.code == "prereq_cycle"
        )
        assert set(finding.item_ids) == {"a", "b", "c"}


class TestQuarantine:
    def test_quarantine_drops_and_readmits_rest(self):
        items = _items(
            ("a", P, [["b"]]), ("b", P, [["a"]]),
            ("c", P, ()), ("d", S, ()),
        )
        report, survivors = audit_items(items, quarantine=True)
        assert not report.rejected
        assert set(report.quarantined) == {"a", "b"}
        assert {i.item_id for i in survivors} == {"c", "d"}

    def test_quarantine_cascades_to_orphans(self):
        # Dropping NaN-credits "a" orphans "b" (whose only prereq group
        # becomes unsatisfiable), which in turn orphans "c".
        items = [
            make_item("a", credits=float("nan")),
            make_item("b", prereqs=Prerequisites.all_of(["a"])),
            make_item("c", prereqs=Prerequisites.all_of(["b"])),
            make_item("d", ItemType.SECONDARY),
        ]
        report, survivors = audit_items(items, quarantine=True)
        assert set(report.quarantined) == {"a", "b", "c"}
        assert {i.item_id for i in survivors} == {"d"}

    def test_infeasible_task_rejects_even_in_quarantine(self):
        task = make_task(min_credits=1000.0)
        report, _ = audit_items(
            _items(("a", P, ()), ("b", P, ()), ("c", S, ()), ("d", S, ())),
            task=task,
            quarantine=True,
        )
        assert report.rejected
        assert "infeasible_credits" in report.codes()
        with pytest.raises(InfeasibleError):
            report.raise_if_rejected()

    def test_structural_rejection_raises_admission_error(self):
        report, _ = audit_items(
            _items(("a", P, [["b"]]), ("b", P, [["a"]]), ("c", S, ()))
        )
        with pytest.raises(AdmissionError) as excinfo:
            report.raise_if_rejected()
        assert excinfo.value.report is report
        assert isinstance(excinfo.value, NonRetriableError)

    def test_pool_smaller_than_plan_rejects(self):
        report, _ = audit_items(
            _items(("a", P, ())), task=make_task()
        )
        assert "infeasible_length" in report.codes()
        assert "infeasible_primary" in report.codes()


class TestRequestScreen:
    def test_unknown_start_rejected(self, toy_catalog, toy_task):
        report = screen_request(
            toy_catalog, toy_task, DomainMode.COURSE, "nope"
        )
        assert report.rejected
        assert "unknown_start" in report.codes()

    def test_known_start_admitted(self, toy_catalog, toy_task):
        report = screen_request(
            toy_catalog, toy_task, DomainMode.COURSE, "m1"
        )
        assert report.ok


# ----------------------------------------------------------------------
# Loaders run the auditor (satellite regression test)
# ----------------------------------------------------------------------


class TestLoaderAudit:
    def test_builtin_datasets_carry_clean_reports(self):
        dataset = load("toy", with_gold=False)
        assert dataset.admission is not None and dataset.admission.ok

    def test_cyclic_catalog_rejected_at_load(self, monkeypatch):
        def load_cyclic(seed=0, with_gold=True):
            catalog = Catalog(
                _items(
                    ("a", P, [["b"]]), ("b", P, [["a"]]),
                    ("c", P, ()), ("d", S, ()), ("e", S, ()),
                ),
                name="cyclic-toy",
            )
            base = load_toy(seed=seed, with_gold=False)
            return Dataset(
                key="cyclic_toy",
                catalog=catalog,
                task=make_task(min_credits=6.0),
                mode=DomainMode.COURSE,
                default_config=base.default_config,
                default_start="c",
            )

        monkeypatch.setitem(LOADERS, "cyclic_toy", load_cyclic)
        with pytest.raises(AdmissionError) as excinfo:
            load("cyclic_toy")
        report = excinfo.value.report
        assert "prereq_cycle" in report.codes()
        # The rejection names the witness cycle, not just "a cycle".
        assert any(
            "->" in f.message
            for f in report.findings
            if f.code == "prereq_cycle"
        )
        # Bypass hatch for tests that need the corrupted catalog.
        dataset = load("cyclic_toy", audit=False)
        assert dataset.admission is None


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


class TestDeadline:
    def test_expires_at_budget(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert not deadline.expired and not deadline.should_stop()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.5)
        assert deadline.expired and deadline.should_stop()
        assert deadline.remaining() == 0.0

    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining() == float("inf")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "sarsa", failure_threshold=3, cooldown_s=30.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED and breaker.allows()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN and not breaker.allows()
        clock.advance(29.0)
        assert not breaker.allows()
        clock.advance(1.0)
        assert breaker.state == STATE_HALF_OPEN and breaker.allows()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_trial_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "eda", failure_threshold=5, cooldown_s=10.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_failure()  # single trial failure, below threshold
        assert breaker.state == STATE_OPEN

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("r", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED


# ----------------------------------------------------------------------
# Exception taxonomy (satellite)
# ----------------------------------------------------------------------


class TestExceptionTaxonomy:
    def test_retriable_vs_nonretriable_partition(self):
        retriable = (UntrainedPolicyError, ArtifactError)
        nonretriable = (
            DataModelError, ConstraintError, DatasetError,
            InfeasibleError, AdmissionError,
        )
        for exc in retriable:
            assert issubclass(exc, RetriableError)
            assert not issubclass(exc, NonRetriableError)
        for exc in nonretriable:
            assert issubclass(exc, NonRetriableError)
            assert not issubclass(exc, RetriableError)

    def test_mixins_are_catchable(self):
        with pytest.raises(RetriableError):
            raise UntrainedPolicyError("transient")
        with pytest.raises(NonRetriableError):
            raise InfeasibleError("permanent")

    def test_infeasible_is_a_planning_error(self):
        # Provable unsatisfiability is still a planning-domain failure,
        # so callers catching PlanningError keep seeing it...
        assert issubclass(InfeasibleError, PlanningError)
        assert issubclass(InfeasibleError, ReproError)
        # ...but retry loops must not: it can never succeed on retry.
        assert not issubclass(InfeasibleError, RetriableError)


# ----------------------------------------------------------------------
# Repair planner
# ----------------------------------------------------------------------


class TestRepairPlanner:
    def test_valid_plan_on_toy(self, toy_dataset):
        planner = RepairPlanner(toy_dataset.catalog, toy_dataset.task)
        plan = planner.recommend(toy_dataset.default_start)
        report = RLPlanner(
            toy_dataset.catalog, toy_dataset.task
        ).scorer.validator.validate(plan)
        assert report.is_valid
        assert plan.items[0].item_id == toy_dataset.default_start

    def test_unpinned_start_allowed(self, toy_dataset):
        planner = RepairPlanner(toy_dataset.catalog, toy_dataset.task)
        plan = planner.recommend()
        assert len(plan) == toy_dataset.task.hard.plan_length

    def test_unknown_start_is_infeasible(self, toy_dataset):
        planner = RepairPlanner(toy_dataset.catalog, toy_dataset.task)
        with pytest.raises(InfeasibleError):
            planner.recommend("ghost")

    def test_should_stop_bounds_search(self, toy_dataset):
        planner = RepairPlanner(toy_dataset.catalog, toy_dataset.task)
        with pytest.raises(PlanningError):
            planner.recommend(should_stop=lambda: True)


# ----------------------------------------------------------------------
# Anytime recommendation + EDA stop hook
# ----------------------------------------------------------------------


class TestAnytimeRecommend:
    def test_matches_recommend_best_when_unbounded(
        self, fitted_toy_planner
    ):
        best_plan, best_score = fitted_toy_planner.recommend_best()
        plan, score, exhausted = fitted_toy_planner.recommend_anytime()
        assert exhausted
        assert score.value == pytest.approx(best_score.value)
        assert plan.item_ids == best_plan.item_ids

    def test_immediate_stop_returns_nothing(self, fitted_toy_planner):
        plan, score, exhausted = fitted_toy_planner.recommend_anytime(
            should_stop=lambda: True
        )
        assert plan is None and score is None and not exhausted

    def test_stop_after_first_rollout_returns_snapshot(
        self, fitted_toy_planner
    ):
        calls = {"n": 0}

        def stop_after_one():
            calls["n"] += 1
            return calls["n"] > 1

        plan, score, exhausted = fitted_toy_planner.recommend_anytime(
            should_stop=stop_after_one
        )
        assert plan is not None and not exhausted

    def test_eda_should_stop_truncates(self, toy_dataset):
        from repro.baselines.eda import EDAPlanner

        eda = EDAPlanner(
            toy_dataset.catalog, toy_dataset.task,
            config=toy_dataset.default_config,
        )
        plan = eda.recommend(
            toy_dataset.default_start, should_stop=lambda: True
        )
        assert len(plan) == 1  # only the start item was placed


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def toy_service_untrained():
    dataset = load_toy(with_gold=False)
    return PlanningService.from_dataset(dataset), dataset


class TestPlanningService:
    def test_untrained_service_degrades_to_eda(
        self, toy_service_untrained
    ):
        service, dataset = toy_service_untrained
        result = service.serve(start_item_id=dataset.default_start)
        assert result.ok
        assert result.outcome == "degraded"
        assert result.rung in (RUNG_EDA, RUNG_REPAIR)
        assert result.attempts[0].rung == RUNG_SARSA
        assert result.attempts[0].outcome == "error"
        assert "UntrainedPolicyError" in result.attempts[0].error

    def test_trained_service_serves_from_top_rung(self, toy_dataset):
        service = PlanningService.from_dataset(toy_dataset)
        service.fit(start_item_ids=[toy_dataset.default_start])
        result = service.serve(
            start_item_id=toy_dataset.default_start, deadline_s=30.0
        )
        assert result.ok and result.outcome == "ok"
        assert result.rung == RUNG_SARSA and not result.degraded
        assert not result.deadline_exceeded
        assert result.deadline_spent < 30.0

    def test_unknown_start_rejected_with_envelope(
        self, toy_service_untrained
    ):
        service, _ = toy_service_untrained
        result = service.serve(start_item_id="ghost")
        assert result.outcome == "rejected"
        assert not result.ok and result.plan is None
        assert "unknown_start" in result.admission.codes()

    def test_request_object_form(self, toy_service_untrained):
        service, dataset = toy_service_untrained
        result = service.serve(
            ServeRequest(start_item_id=dataset.default_start)
        )
        assert result.ok

    def test_envelope_describe_mentions_rung_and_deadline(
        self, toy_service_untrained
    ):
        service, dataset = toy_service_untrained
        result = service.serve(
            start_item_id=dataset.default_start, deadline_s=10.0
        )
        text = result.describe()
        assert result.rung in text
        assert "deadline" in text

    def test_serve_metrics_recorded(self, toy_service_untrained):
        service, dataset = toy_service_untrained
        registry = MetricsRegistry()
        with use_registry(registry):
            result = service.serve(start_item_id=dataset.default_start)
        snapshot = registry.snapshot()
        key = (
            "serve_requests_total"
            f'{{outcome="{result.outcome}",rung="{result.rung}"}}'
        )
        assert snapshot["counters"][key] == 1

    def test_strict_admission_rejects_cyclic_catalog(self):
        catalog = Catalog(
            _items(
                ("a", P, [["b"]]), ("b", P, [["a"]]),
                ("c", P, ()), ("d", S, ()),
            ),
            name="cyclic",
        )
        with pytest.raises(AdmissionError):
            PlanningService(catalog, make_task(min_credits=6.0))


# ----------------------------------------------------------------------
# Chaos: faults drive the ladder deterministically
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestServingChaos:
    def _service(self, dataset, spec, tmp_path, **kwargs):
        injector = FaultInjector(
            parse_fault_spec(spec), state_dir=tmp_path / "faults"
        )
        return PlanningService.from_dataset(
            dataset, fault_injector=injector, **kwargs
        )

    def test_slow_policy_rung_times_out_and_degrades(
        self, toy_dataset, tmp_path
    ):
        service = self._service(
            toy_dataset, "slow@0:seconds=1,times=100", tmp_path
        )
        service.fit(
            start_item_ids=[toy_dataset.default_start], episodes=50
        )
        result = service.serve(
            start_item_id=toy_dataset.default_start, deadline_s=0.5
        )
        assert result.ok and result.rung != RUNG_SARSA
        assert result.degraded and result.deadline_exceeded
        assert result.attempts[0].outcome == "timeout"

    def test_error_faults_trip_and_recover_breaker(
        self, toy_dataset, tmp_path
    ):
        clock = FakeClock()
        service = self._service(
            toy_dataset, "error@0:times=2", tmp_path,
            breaker_threshold=2, breaker_cooldown_s=30.0, clock=clock,
        )
        # Two faulted serves trip the sarsa breaker...
        for _ in range(2):
            result = service.serve()
            assert result.ok and result.rung != RUNG_SARSA
            assert result.attempts[0].outcome == "error"
        assert service.breakers[RUNG_SARSA].state == STATE_OPEN
        # ...the next serve skips the rung outright...
        result = service.serve()
        assert result.attempts[0].outcome == "skipped_open"
        # ...and after the cool-down the (now fault-free, but untrained)
        # rung is tried again: UntrainedPolicyError re-opens the breaker
        # on the half-open trial.
        clock.advance(31.0)
        result = service.serve()
        assert result.attempts[0].outcome == "error"
        assert "UntrainedPolicyError" in result.attempts[0].error
        assert service.breakers[RUNG_SARSA].state == STATE_OPEN
        assert result.ok  # the ladder still served a valid plan

    def test_double_fault_falls_to_repair(self, toy_dataset, tmp_path):
        service = self._service(
            toy_dataset, "error@0:times=100;error@1:times=100", tmp_path
        )
        result = service.serve(start_item_id=toy_dataset.default_start)
        assert result.ok and result.rung == RUNG_REPAIR
        assert [a.outcome for a in result.attempts] == [
            "error", "error", "ok",
        ]

    @pytest.mark.slow
    def test_acceptance_all_course_datasets_degrade_validly(
        self, tmp_path
    ):
        """ISSUE acceptance: faulted policy rung + 0.5 s deadline still
        yields a hard-constraint-valid plan on every paper course
        dataset, served from a lower rung, with full provenance."""
        for key in ("njit_dsct", "njit_cyber", "njit_cs", "univ2_ds"):
            dataset = load(key, seed=0, with_gold=False)
            service = self._service(
                dataset, "error@0:times=100", tmp_path / key
            )
            result = service.serve(
                start_item_id=dataset.default_start, deadline_s=0.5
            )
            assert result.ok, f"{key}: {result.describe()}"
            assert result.rung in (RUNG_EDA, RUNG_REPAIR)
            assert result.degraded
            assert result.deadline_spent >= 0.0
            assert result.score.report.is_valid
