"""Tests for the baseline planners (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    EDAPlanner,
    OmegaPlanner,
    PopularityPlanner,
    RandomPlanner,
    cofrequency_matrix,
    topic_utility_matrix,
)
from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.env import DomainMode
from repro.core.exceptions import PlanningError
from repro.core.items import Item, ItemType, Prerequisites, make_metadata

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item(
                "s2",
                ItemType.SECONDARY,
                topics={"t4"},
                prereqs=Prerequisites.all_of(["p1"]),
            ),
        ]
    )


@pytest.fixture
def task():
    return make_task()


class TestEDA:
    def test_produces_full_length_plan(self, catalog, task):
        eda = EDAPlanner(catalog, task, PlannerConfig(coverage_threshold=1.0))
        plan = eda.recommend("p1")
        assert len(plan) == 4
        assert plan.item_ids[0] == "p1"

    def test_greedy_picks_max_immediate_reward(self, catalog, task):
        config = PlannerConfig(coverage_threshold=1.0)
        eda = EDAPlanner(catalog, task, config, seed=0)
        plan = eda.recommend("p1")
        # With theta gating, the gap-violating s2 cannot be second (its
        # reward is 0 while valid actions score > 0).
        assert plan.item_ids[1] != "s2" or True  # see next assertion
        reward = eda.reward
        from repro.core.plan import PlanBuilder

        builder = PlanBuilder(catalog)
        builder.add_by_id("p1")
        rewards = {
            item.item_id: reward(builder, item)
            for item in builder.remaining_items()
        }
        assert rewards[plan.item_ids[1]] == max(rewards.values())

    def test_unknown_start_rejected(self, catalog, task):
        eda = EDAPlanner(catalog, task)
        with pytest.raises(PlanningError):
            eda.recommend("ghost")

    def test_seed_controls_tie_break(self, catalog, task):
        config = PlannerConfig(coverage_threshold=1.0)
        plans = {
            EDAPlanner(catalog, task, config, seed=s)
            .recommend("p1").item_ids
            for s in range(6)
        }
        assert plans  # at least runs; ties may or may not diverge


class TestOmega:
    def test_topic_utility_matrix_is_union_size(self, catalog):
        matrix = topic_utility_matrix(catalog)
        i, j = catalog.index_of("p1"), catalog.index_of("s1")
        assert matrix[i, j] == 2.0  # |{t1} U {t3}|
        assert matrix[i, i] == 0.0

    def test_cofrequency_matrix_counts_order(self, catalog):
        histories = [["p1", "s1", "s2"], ["p1", "s2"]]
        matrix = cofrequency_matrix(catalog, histories)
        assert matrix[catalog.index_of("p1"), catalog.index_of("s2")] == 2
        assert matrix[catalog.index_of("s2"), catalog.index_of("p1")] == 0

    def test_produces_plan_of_target_length(self, catalog, task):
        omega = OmegaPlanner(catalog, task)
        plan = omega.recommend("p1")
        assert len(plan) == 4
        assert plan.item_ids[0] == "p1"
        assert len(set(plan.item_ids)) == 4

    def test_prefix_respects_prerequisite_order(self, catalog, task):
        omega = OmegaPlanner(catalog, task)
        plan = omega.recommend("p1")
        positions = plan.positions()
        if "s2" in positions and "p1" in positions:
            assert positions["p1"] < positions["s2"]

    def test_histories_switch_utility(self, catalog, task):
        with_hist = OmegaPlanner(
            catalog, task, histories=[["p1", "s1"]]
        )
        without = OmegaPlanner(catalog, task)
        assert (with_hist.utility != without.utility).any()

    def test_blind_to_template_split(self, task):
        # OMEGA ignores the primary/secondary split: with many more
        # secondaries than template slots it happily overfills them.
        items = [make_item("p1", ItemType.PRIMARY, topics={"t0"})]
        items += [
            make_item(f"s{i}", ItemType.SECONDARY, topics={f"t{i}"})
            for i in range(1, 9)
        ]
        catalog = Catalog(items)
        omega = OmegaPlanner(catalog, task)
        plan = omega.recommend("s1")
        assert plan.num_primary < task.hard.num_primary  # invalid split


class TestSanityBaselines:
    def test_random_plan_has_target_length(self, catalog, task):
        plan = RandomPlanner(catalog, task, seed=0).recommend("p1")
        assert len(plan) == 4

    def test_random_is_seed_deterministic(self, catalog, task):
        a = RandomPlanner(catalog, task, seed=5).recommend("p1")
        b = RandomPlanner(catalog, task, seed=5).recommend("p1")
        assert a.item_ids == b.item_ids

    def test_popularity_orders_by_metadata(self, task):
        items = [
            Item(
                item_id=f"x{i}",
                name=f"x{i}",
                item_type=ItemType.SECONDARY,
                credits=3.0,
                topics=frozenset({f"t{i}"}),
                metadata=make_metadata(popularity=float(i)),
            )
            for i in range(5)
        ]
        catalog = Catalog(items)
        plan = PopularityPlanner(catalog, task).recommend("x0")
        assert plan.item_ids == ("x0", "x4", "x3", "x2")

    def test_trip_mode_respects_budget(self, task):
        items = [
            make_item("a", ItemType.PRIMARY, credits=3.0, topics={"t1"}),
            make_item("b", ItemType.SECONDARY, credits=3.0, topics={"t2"}),
            make_item("c", ItemType.SECONDARY, credits=9.0, topics={"t3"}),
        ]
        catalog = Catalog(items)
        planner = RandomPlanner(
            catalog, task, mode=DomainMode.TRIP, seed=0
        )
        plan = planner.recommend("a")
        # task.min_credits=12 is the budget: c (9.0) never fits after a+b.
        assert plan.total_credits <= 12.0
