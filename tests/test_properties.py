"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* Eq. 6 similarity is bounded by the prefix length, non-negative, and
  equals k exactly for self-matching prefixes.
* longest_run is consistent with the bit string.
* Prerequisites: AND is monotone (adding satisfied groups never helps an
  unsatisfied one), OR is satisfied iff some member qualifies.
* PlanBuilder bookkeeping (credits, coverage, positions) matches a
  recomputation from scratch for arbitrary add orders.
* The validator's gap check agrees with the reward's r2 gate when both
  see a complete plan.
* HardConstraints/templates reject inconsistent random specs.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.constraints import InterleavingTemplate
from repro.core.items import Item, ItemType, Prerequisites
from repro.core.plan import PlanBuilder
from repro.core.reward import RewardFunction
from repro.core.similarity import (
    longest_run,
    match_vector,
    template_similarity,
)
from repro.core.validation import PlanValidator

from conftest import make_task

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

item_types = st.sampled_from([ItemType.PRIMARY, ItemType.SECONDARY])
type_sequences = st.lists(item_types, min_size=1, max_size=12)
bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=30)

topic_names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=4
)


@st.composite
def sequence_and_template(draw):
    """A plan prefix and a same-or-longer template permutation."""
    perm = tuple(draw(st.lists(item_types, min_size=1, max_size=12)))
    k = draw(st.integers(min_value=1, max_value=len(perm)))
    seq = draw(
        st.lists(item_types, min_size=k, max_size=k)
    )
    return seq, perm


# ---------------------------------------------------------------------------
# Similarity properties
# ---------------------------------------------------------------------------


class TestSimilarityProperties:
    @given(sequence_and_template())
    def test_similarity_bounds(self, pair):
        seq, perm = pair
        value = template_similarity(seq, perm)
        k = len(seq)
        assert 0.0 <= value <= k

    @given(type_sequences)
    def test_self_match_scores_k(self, seq):
        assert template_similarity(seq, tuple(seq)) == len(seq)

    @given(sequence_and_template())
    def test_similarity_formula_consistency(self, pair):
        seq, perm = pair
        c = match_vector(seq, perm)
        expected = longest_run(c) * sum(c) / len(seq)
        assert template_similarity(seq, perm) == expected

    @given(bit_lists)
    def test_longest_run_bounds(self, bits):
        run = longest_run(bits)
        assert 0 <= run <= len(bits)
        assert (run > 0) == (1 in bits)

    @given(bit_lists)
    def test_longest_run_matches_string_split(self, bits):
        text = "".join(str(b) for b in bits)
        expected = max(
            (len(chunk) for chunk in text.split("0")), default=0
        )
        assert longest_run(bits) == expected


# ---------------------------------------------------------------------------
# Prerequisite properties
# ---------------------------------------------------------------------------


class TestPrerequisiteProperties:
    @given(
        st.lists(
            st.text(string.ascii_lowercase, min_size=1, max_size=3),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        st.integers(min_value=0, max_value=4),
    )
    def test_or_satisfied_iff_some_member_qualifies(self, members, gap):
        pre = Prerequisites.any_of(members)
        positions = {m: i for i, m in enumerate(members)}
        at = len(members) + gap
        expected = any(at - positions[m] >= gap for m in members)
        assert pre.satisfied_by(positions, at, gap) == expected

    @given(
        st.lists(
            st.text(string.ascii_lowercase, min_size=1, max_size=3),
            min_size=2,
            max_size=5,
            unique=True,
        )
    )
    def test_and_stricter_than_or(self, members):
        both = Prerequisites.all_of(members)
        either = Prerequisites.any_of(members)
        # Only the first member is placed early enough.
        positions = {members[0]: 0}
        assert either.satisfied_by(positions, 5, gap=1)
        assert not both.satisfied_by(positions, 5, gap=1)

    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=6))
    def test_gap_monotonicity(self, gap_small, gap_large):
        # Satisfaction can only shrink as the gap grows.
        lo, hi = sorted((gap_small, gap_large))
        pre = Prerequisites.all_of(["a"])
        positions = {"a": 0}
        at = 3
        if pre.satisfied_by(positions, at, hi):
            assert pre.satisfied_by(positions, at, lo)


# ---------------------------------------------------------------------------
# PlanBuilder bookkeeping
# ---------------------------------------------------------------------------


def _catalog_of(n):
    return Catalog(
        [
            Item(
                item_id=f"i{k}",
                name=f"i{k}",
                item_type=(
                    ItemType.PRIMARY if k % 2 == 0 else ItemType.SECONDARY
                ),
                credits=1.0 + (k % 3),
                topics=frozenset({f"t{k % 4}", f"u{k % 3}"}),
            )
            for k in range(n)
        ]
    )


class TestPlanBuilderProperties:
    @given(st.permutations(list(range(8))), st.integers(1, 8))
    @settings(max_examples=50)
    def test_incremental_state_matches_recomputation(self, order, take):
        catalog = _catalog_of(8)
        builder = PlanBuilder(catalog)
        chosen = [f"i{k}" for k in order[:take]]
        for item_id in chosen:
            builder.add_by_id(item_id)

        items = [catalog[i] for i in chosen]
        assert builder.total_credits == sum(i.credits for i in items)
        expected_topics = set()
        for item in items:
            expected_topics |= item.topics
        assert builder.covered_topics == expected_topics
        assert builder.positions == {
            item_id: pos for pos, item_id in enumerate(chosen)
        }
        assert len(builder.remaining_items()) == 8 - take


# ---------------------------------------------------------------------------
# Validator / reward-gate agreement
# ---------------------------------------------------------------------------


class TestGateValidatorAgreement:
    @given(st.permutations(list(range(6))))
    @settings(max_examples=40)
    def test_r2_gate_matches_validator_gap_check(self, order):
        """Building a plan with the r2 gate green at every step yields a
        plan with no prerequisite_gap violation, and vice versa."""
        items = [
            Item(
                item_id=f"i{k}",
                name=f"i{k}",
                item_type=ItemType.PRIMARY if k < 3 else ItemType.SECONDARY,
                credits=2.0,
                topics=frozenset({f"t{k}"}),
                prerequisites=(
                    Prerequisites.all_of(["i0"]) if k == 5
                    else Prerequisites.none()
                ),
            )
            for k in range(6)
        ]
        catalog = Catalog(items)
        task = make_task(
            num_primary=3,
            num_secondary=3,
            min_credits=12.0,
            gap=2,
            ideal_topics=tuple(f"t{k}" for k in range(6)),
            template_labels=[["P", "P", "P", "S", "S", "S"]],
        )
        reward = RewardFunction(
            task, PlannerConfig(coverage_threshold=1.0)
        )
        builder = PlanBuilder(catalog)
        gates_ok = True
        for k in order:
            item = catalog[f"i{k}"]
            if not reward.gap_gate(builder, item):
                gates_ok = False
            builder.add(item)
        report = PlanValidator(task.hard).validate(builder.build())
        gap_violated = "prerequisite_gap" in report.codes()
        assert gates_ok == (not gap_violated)
