"""Unit tests for planner configuration (repro.core.config)."""

import pytest

from repro.core.config import (
    PlannerConfig,
    RecommendationMode,
    RewardWeights,
    UNIV2_CATEGORY_WEIGHTS,
)
from repro.core.exceptions import ConstraintError
from repro.core.similarity import SimilarityMode


class TestRewardWeights:
    def test_defaults_sum_to_one(self):
        weights = RewardWeights()
        assert weights.delta + weights.beta == 1.0
        assert weights.w_primary + weights.w_secondary == 1.0

    def test_delta_beta_must_sum_to_one(self):
        with pytest.raises(ConstraintError):
            RewardWeights(delta=0.7, beta=0.2)

    def test_type_weights_must_sum_to_one(self):
        with pytest.raises(ConstraintError):
            RewardWeights(w_primary=0.9, w_secondary=0.3)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConstraintError):
            RewardWeights(delta=1.2, beta=-0.2)

    def test_category_weights_must_sum_to_one(self):
        with pytest.raises(ConstraintError):
            RewardWeights.with_categories({"a": 0.5, "b": 0.2})

    def test_paper_univ2_weights_accepted(self):
        weights = RewardWeights.with_categories(UNIV2_CATEGORY_WEIGHTS)
        assert weights.category_weight_map["applied_ml_ds"] == 0.42


class TestPlannerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(episodes=0),
            dict(learning_rate=0.0),
            dict(learning_rate=1.5),
            dict(discount=-0.1),
            dict(coverage_threshold=-1),
            dict(exploration=1.5),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConstraintError):
            PlannerConfig(**kwargs)

    def test_replace_returns_modified_copy(self):
        config = PlannerConfig()
        other = config.replace(episodes=42)
        assert other.episodes == 42
        assert config.episodes == 500  # original untouched

    def test_coverage_count_fractional_epsilon(self):
        # Table III epsilon = 0.0025 over 60 ideal topics -> 1 topic.
        config = PlannerConfig(coverage_threshold=0.0025)
        assert config.coverage_count_threshold(60) == 1
        # 0.02 over 60 -> ceil(1.2) = 2 topics.
        assert config.replace(
            coverage_threshold=0.02
        ).coverage_count_threshold(60) == 2

    def test_coverage_count_integer_epsilon(self):
        config = PlannerConfig(coverage_threshold=2.0)
        assert config.coverage_count_threshold(60) == 2

    def test_coverage_count_never_below_one(self):
        config = PlannerConfig(coverage_threshold=0.0)
        assert config.coverage_count_threshold(60) == 1


class TestPresets:
    def test_univ1_matches_table3(self):
        config = PlannerConfig.univ1_default()
        assert config.episodes == 500
        assert config.learning_rate == 0.75
        assert config.discount == 0.95
        assert config.coverage_threshold == 0.0025

    def test_univ2_matches_table3(self):
        config = PlannerConfig.univ2_default(UNIV2_CATEGORY_WEIGHTS)
        assert config.episodes == 100
        assert config.weights.category_weight_map == dict(
            UNIV2_CATEGORY_WEIGHTS
        )

    def test_trip_matches_table3(self):
        config = PlannerConfig.trip_default()
        assert config.episodes == 500
        assert config.learning_rate == 0.95
        assert config.discount == 0.75

    def test_default_recommendation_is_lookahead(self):
        assert (
            PlannerConfig().recommendation is RecommendationMode.LOOKAHEAD
        )

    def test_default_similarity_is_average(self):
        assert PlannerConfig().similarity is SimilarityMode.AVERAGE
