"""Unit tests for cross-catalog policy transfer (repro.core.transfer)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import TransferError
from repro.core.items import ItemType
from repro.core.qtable import QTable
from repro.core.transfer import (
    build_theme_mapping,
    transfer_by_id,
    transfer_by_theme,
    transfer_policy,
)

from conftest import make_item


@pytest.fixture
def source_catalog():
    return Catalog(
        [
            make_item("a", topics={"x"}),
            make_item("b", topics={"y"}),
            make_item("c", topics={"z"}),
        ],
        name="source",
    )


@pytest.fixture
def source_table(source_catalog):
    table = QTable(source_catalog)
    table.set("a", "b", 1.0)
    table.set("b", "c", 2.0)
    table.update_count = 2
    return table


class TestTransferById:
    def test_shared_entries_carry_over(self, source_table):
        target = Catalog(
            [make_item("a"), make_item("b"), make_item("z")],
            name="target",
        )
        result = transfer_by_id(source_table, target)
        assert result.qtable.get("a", "b") == 1.0
        assert result.report.entries_transferred == 1
        assert result.report.entries_total == 2
        assert result.report.entry_coverage == 0.5

    def test_transferred_table_counts_as_trained(self, source_table):
        target = Catalog([make_item("a"), make_item("b")], name="t")
        result = transfer_by_id(source_table, target)
        assert result.qtable.update_count > 0

    def test_disjoint_catalogs_transfer_nothing(self, source_table):
        target = Catalog([make_item("q"), make_item("r")], name="t")
        result = transfer_by_id(source_table, target)
        assert result.report.entries_transferred == 0
        assert result.qtable.update_count == 0


class TestThemeMapping:
    def test_exact_signature_match(self, source_catalog):
        target = Catalog(
            [
                make_item("a2", topics={"x"}),
                make_item("b2", topics={"y"}),
            ],
            name="target",
        )
        mapping = build_theme_mapping(source_catalog, target)
        assert mapping["a"] == ("a2",)
        assert mapping["b"] == ("b2",)

    def test_best_overlap_fallback(self):
        source = Catalog([make_item("s", topics={"x", "y"})])
        target = Catalog(
            [
                make_item("t1", topics={"x", "z"}),
                make_item("t2", topics={"w"}),
            ]
        )
        mapping = build_theme_mapping(source, target)
        assert mapping["s"] == ("t1",)

    def test_no_overlap_maps_to_nothing(self):
        source = Catalog([make_item("s", topics={"x"})])
        target = Catalog([make_item("t", topics={"w"})])
        assert build_theme_mapping(source, target)["s"] == ()


class TestTransferByTheme:
    def test_values_re_keyed_by_signature(self, source_table):
        target = Catalog(
            [
                make_item("a2", topics={"x"}),
                make_item("b2", topics={"y"}),
                make_item("c2", topics={"z"}),
            ],
            name="target",
        )
        result = transfer_by_theme(source_table, target)
        assert result.qtable.get("a2", "b2") == 1.0
        assert result.qtable.get("b2", "c2") == 2.0
        assert result.report.entries_transferred == 2

    def test_multi_match_averages(self):
        source = Catalog(
            [make_item("a", topics={"x"}), make_item("b", topics={"y"})]
        )
        table = QTable(source)
        table.set("a", "b", 4.0)
        target = Catalog(
            [
                make_item("a2", topics={"x"}),
                make_item("b2", topics={"y"}),
                make_item("b3", topics={"y"}),
            ]
        )
        result = transfer_by_theme(table, target)
        assert result.qtable.get("a2", "b2") == 4.0
        assert result.qtable.get("a2", "b3") == 4.0


class TestTransferPolicy:
    def test_auto_uses_id_when_shared(self, source_table):
        target = Catalog([make_item("a"), make_item("b")], name="t")
        result = transfer_policy(source_table, target, strategy="auto")
        assert result.qtable.get("a", "b") == 1.0

    def test_auto_falls_back_to_theme(self, source_table):
        target = Catalog(
            [
                make_item("a2", topics={"x"}),
                make_item("b2", topics={"y"}),
            ],
            name="t",
        )
        result = transfer_policy(source_table, target, strategy="auto")
        assert result.qtable.get("a2", "b2") == 1.0

    def test_unknown_strategy_rejected(self, source_table):
        target = Catalog([make_item("a")], name="t")
        with pytest.raises(TransferError):
            transfer_policy(source_table, target, strategy="nope")
