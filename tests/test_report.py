"""Tests for the one-shot reproduction report (repro.analysis.report)."""

import pytest

from repro.analysis import build_report


@pytest.fixture(scope="module")
def report_text():
    # Toy-only, tiny budgets: exercises every section quickly.
    return build_report(
        dataset_keys=("toy",),
        runs=1,
        episodes=50,
        include_transfer=False,
        include_user_study=True,
        include_scalability=True,
    )


class TestReport:
    def test_contains_every_section(self, report_text):
        assert "RL-Planner reproduction report" in report_text
        assert "Planner comparison" in report_text
        assert "Simulated user study" in report_text
        assert "Scalability probe" in report_text

    def test_comparison_row_per_dataset(self, report_text):
        assert "toy" in report_text
        assert "RL-Planner" in report_text
        assert "OMEGA" in report_text

    def test_sections_can_be_disabled(self):
        text = build_report(
            dataset_keys=("toy",),
            runs=1,
            episodes=30,
            include_transfer=False,
            include_user_study=False,
            include_scalability=False,
        )
        assert "Simulated user study" not in text
        assert "Scalability probe" not in text
        assert "Planner comparison" in text

    def test_cli_report_writes_file(self, tmp_path, monkeypatch, capsys):
        from repro.analysis import report as report_module
        from repro import cli

        def fake_build_report(runs, episodes):
            return "FAKE REPORT\n"

        monkeypatch.setattr(cli, "build_report", fake_build_report)
        out_file = tmp_path / "report.txt"
        assert cli.main(["report", "--out", str(out_file)]) == 0
        assert out_file.read_text() == "FAKE REPORT\n"
        assert "FAKE REPORT" in capsys.readouterr().out
