"""Unit tests for hard-constraint validation (repro.core.validation)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.constraints import HardConstraints
from repro.core.items import Item, ItemType, Prerequisites, make_metadata
from repro.core.plan import plan_from_ids
from repro.core.validation import (
    PlanValidator,
    haversine_km,
    plan_travel_distance_km,
)

from conftest import make_item


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"a"}),
            make_item("p2", ItemType.PRIMARY, topics={"b"}),
            make_item("s1", ItemType.SECONDARY, topics={"c"}),
            make_item(
                "s2",
                ItemType.SECONDARY,
                topics={"d"},
                prereqs=Prerequisites.all_of(["p1"]),
            ),
        ]
    )


@pytest.fixture
def hard():
    return HardConstraints.for_courses(
        min_credits=12, num_primary=2, num_secondary=2, gap=2
    )


class TestCreditAndLength:
    def test_valid_plan(self, catalog, hard):
        plan = plan_from_ids(catalog, ["p1", "p2", "s2", "s1"])
        report = PlanValidator(hard).validate(plan)
        assert report.is_valid, report.describe()

    def test_credit_shortfall(self, catalog, hard):
        plan = plan_from_ids(catalog, ["p1", "p2", "s1"])
        report = PlanValidator(hard).validate(plan)
        assert "credits" in report.codes()
        assert "length" in report.codes()

    def test_trip_budget_is_upper_bound(self, catalog):
        hard = HardConstraints.for_trips(
            time_budget=5, num_primary=2, num_secondary=2,
            theme_adjacency_gap=False,
        )
        plan = plan_from_ids(catalog, ["p1", "p2", "s1", "s2"])  # 12 > 5
        report = PlanValidator(hard, credits_are_budget=True).validate(plan)
        assert "time_budget" in report.codes()


class TestSplit:
    def test_primary_shortfall_flagged(self, catalog, hard):
        plan = plan_from_ids(catalog, ["p1", "s1", "s2"])
        codes = PlanValidator(hard).validate(plan).codes()
        assert "primary_count" in codes

    def test_extra_primary_may_fill_secondary_slot(self, hard):
        # Case-I of Theorem 1: 3 primaries + 1 secondary still valid.
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY),
                make_item("p2", ItemType.PRIMARY),
                make_item("p3", ItemType.PRIMARY),
                make_item("s1", ItemType.SECONDARY),
            ]
        )
        plan = plan_from_ids(catalog, ["p1", "p2", "p3", "s1"])
        assert PlanValidator(hard).is_valid(plan)


class TestGap:
    def test_gap_violation_flagged(self, catalog, hard):
        # s2 requires p1 at least 2 positions earlier.
        plan = plan_from_ids(catalog, ["p2", "p1", "s2", "s1"])
        codes = PlanValidator(hard).validate(plan).codes()
        assert "prerequisite_gap" in codes

    def test_gap_satisfied(self, catalog, hard):
        plan = plan_from_ids(catalog, ["p1", "p2", "s2", "s1"])
        assert PlanValidator(hard).is_valid(plan)

    def test_missing_prerequisite_flagged(self, catalog, hard):
        plan = plan_from_ids(catalog, ["p2", "s2", "s1", "p1"])
        codes = PlanValidator(hard).validate(plan).codes()
        assert "prerequisite_gap" in codes


class TestCategories:
    def test_category_minimum_enforced(self):
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, category="x"),
                make_item("b", ItemType.SECONDARY, category="y"),
            ]
        )
        hard = HardConstraints.for_courses(
            6, 1, 1, 0, category_credits={"x": 3, "y": 6}
        )
        plan = plan_from_ids(catalog, ["a", "b"])
        codes = PlanValidator(hard).validate(plan).codes()
        assert "category_credits" in codes


class TestGeo:
    def _poi(self, item_id, lat, lon, themes=("t",)):
        return Item(
            item_id=item_id,
            name=item_id,
            item_type=ItemType.SECONDARY,
            credits=1.0,
            topics=frozenset(themes),
            metadata=make_metadata(lat=lat, lon=lon),
        )

    def test_haversine_known_distance(self):
        # Paris -> London is about 344 km.
        d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert 335 <= d <= 350

    def test_haversine_zero(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_travel_distance_sums_legs(self):
        catalog = Catalog(
            [
                self._poi("a", 48.85, 2.35),
                self._poi("b", 48.86, 2.35),
                self._poi("c", 48.87, 2.35),
            ]
        )
        plan = plan_from_ids(catalog, ["a", "b", "c"])
        total = plan_travel_distance_km(plan)
        leg = haversine_km(48.85, 2.35, 48.86, 2.35)
        assert total == pytest.approx(2 * leg, rel=1e-6)

    def test_travel_distance_none_without_geo(self, catalog):
        plan = plan_from_ids(catalog, ["p1", "p2"])
        assert plan_travel_distance_km(plan) is None

    def test_distance_threshold_violation(self):
        catalog = Catalog(
            [
                self._poi("a", 48.80, 2.35, themes=("t1",)),
                self._poi("b", 48.99, 2.35, themes=("t2",)),
            ]
        )
        hard = HardConstraints.for_trips(
            10, 0, 2, max_distance=1.0, theme_adjacency_gap=False
        )
        plan = plan_from_ids(catalog, ["a", "b"])
        codes = PlanValidator(hard, credits_are_budget=True).validate(
            plan
        ).codes()
        assert "distance" in codes

    def test_theme_adjacency_violation(self):
        catalog = Catalog(
            [
                self._poi("a", 48.85, 2.35, themes=("museum",)),
                self._poi("b", 48.85, 2.35, themes=("museum", "park")),
            ]
        )
        hard = HardConstraints.for_trips(
            10, 0, 2, theme_adjacency_gap=True
        )
        plan = plan_from_ids(catalog, ["a", "b"])
        codes = PlanValidator(hard, credits_are_budget=True).validate(
            plan
        ).codes()
        assert "theme_adjacency" in codes
