"""Unit tests for the Q-table (repro.core.qtable)."""

import numpy as np
import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import PlanningError
from repro.core.qtable import QTable

from conftest import make_item


@pytest.fixture
def catalog():
    return Catalog([make_item(i) for i in ("a", "b", "c")])


@pytest.fixture
def table(catalog):
    return QTable(catalog)


class TestBasics:
    def test_shape_is_items_squared(self, table):
        assert table.shape == (3, 3)

    def test_initial_value(self, catalog):
        table = QTable(catalog, initial_value=0.5)
        assert table.get("a", "b") == 0.5

    def test_set_get_round_trip(self, table):
        table.set("a", "b", 1.25)
        assert table.get("a", "b") == 1.25

    def test_td_update_moves_toward_target(self, table, catalog):
        i, j = catalog.index_of("a"), catalog.index_of("b")
        new = table.td_update(i, j, target=1.0, learning_rate=0.5)
        assert new == 0.5
        new = table.td_update(i, j, target=1.0, learning_rate=0.5)
        assert new == 0.75
        assert table.update_count == 2


class TestBestAction:
    def test_argmax_over_allowed(self, table):
        table.set("a", "b", 0.2)
        table.set("a", "c", 0.9)
        assert table.best_action("a", ["b", "c"]) == "c"

    def test_allowed_filter_respected(self, table):
        table.set("a", "c", 0.9)
        assert table.best_action("a", ["b"]) == "b"

    def test_empty_allowed_raises(self, table):
        with pytest.raises(PlanningError):
            table.best_action("a", [])

    def test_deterministic_tie_break_without_rng(self, table):
        # All zeros: first allowed id wins.
        assert table.best_action("a", ["c", "b"]) == "c"

    def test_random_tie_break_with_rng(self, table):
        rng = np.random.default_rng(0)
        picks = {
            table.best_action("a", ["b", "c"], rng=rng) for _ in range(20)
        }
        assert picks == {"b", "c"}

    def test_action_values(self, table):
        table.set("a", "b", 0.3)
        values = table.action_values("a", ["b", "c"])
        assert values == {"b": 0.3, "c": 0.0}


class TestSerialization:
    def test_entries_round_trip(self, table, catalog):
        table.set("a", "b", 1.0)
        table.set("b", "c", -0.5)
        entries = table.to_entries()
        assert entries == {("a", "b"): 1.0, ("b", "c"): -0.5}
        rebuilt = QTable.from_entries(catalog, entries)
        assert rebuilt.get("a", "b") == 1.0
        assert rebuilt.get("b", "c") == -0.5

    def test_from_entries_skips_unknown_ids(self, catalog):
        entries = {("a", "b"): 1.0, ("ghost", "b"): 2.0}
        rebuilt = QTable.from_entries(catalog, entries)
        assert rebuilt.get("a", "b") == 1.0

    def test_from_entries_strict_raises(self, catalog):
        with pytest.raises(PlanningError):
            QTable.from_entries(
                catalog, {("ghost", "b"): 2.0}, strict=True
            )

    def test_copy_is_independent(self, table):
        table.set("a", "b", 1.0)
        clone = table.copy()
        clone.set("a", "b", 9.0)
        assert table.get("a", "b") == 1.0
        assert clone.update_count == table.update_count


class TestNaNGuard:
    def test_nan_entries_are_skipped(self, table):
        table.set("a", "b", float("nan"))
        table.set("a", "c", 0.5)
        assert table.best_action("a", ["b", "c"]) == "c"

    def test_all_nan_falls_back_to_first_allowed(self, table):
        table.set("a", "b", float("nan"))
        table.set("a", "c", float("nan"))
        assert table.best_action("a", ["c", "b"]) == "c"

    def test_all_nan_with_rng_samples_allowed(self, table):
        table.set("a", "b", float("nan"))
        table.set("a", "c", float("nan"))
        rng = np.random.default_rng(0)
        picks = {
            table.best_action("a", ["b", "c"], rng=rng) for _ in range(20)
        }
        assert picks <= {"b", "c"}


class TestTouchedTracking:
    def test_zero_valued_learned_entry_survives(self, table):
        # A learned value that is exactly 0.0 must still serialize.
        table.set("a", "b", 0.0)
        assert ("a", "b") in table.to_entries()

    def test_td_update_to_zero_survives(self, table, catalog):
        i, j = catalog.index_of("a"), catalog.index_of("b")
        table.td_update(i, j, target=0.0, learning_rate=0.5)
        entries = table.to_entries()
        assert entries[("a", "b")] == 0.0

    def test_untouched_zero_cells_stay_sparse(self, table):
        table.set("a", "b", 1.0)
        assert list(table.to_entries()) == [("a", "b")]

    def test_copy_preserves_touched_cells(self, table):
        table.set("a", "b", 0.0)
        assert ("a", "b") in table.copy().to_entries()


class TestUpdateCountMetadata:
    def test_setter_round_trip(self, table):
        table.update_count = 7
        assert table.update_count == 7

    def test_negative_rejected(self, table):
        with pytest.raises(PlanningError):
            table.update_count = -1

    def test_from_entries_restores_count_and_skips(self, catalog):
        table = QTable.from_entries(
            catalog,
            {("a", "b"): 0.5, ("zz", "b"): 1.0},
            update_count=42,
        )
        assert table.update_count == 42
        assert table.skipped_on_load == 1
