"""Tests for the simulated user study (repro.userstudy)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.items import ItemType
from repro.core.plan import plan_from_ids
from repro.userstudy import (
    PlanFeatureExtractor,
    Question,
    SimulatedStudy,
)

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


@pytest.fixture
def task():
    return make_task()


@pytest.fixture
def perfect_plan(catalog):
    return plan_from_ids(catalog, ["p1", "s1", "p2", "s2"])


@pytest.fixture
def poor_plan(catalog):
    return plan_from_ids(catalog, ["s1", "s2"])


class TestFeatureExtractor:
    def test_features_in_unit_interval(self, task, perfect_plan, poor_plan):
        from repro.core.env import DomainMode

        extractor = PlanFeatureExtractor(task, DomainMode.COURSE)
        for plan in (perfect_plan, poor_plan):
            for value in extractor.features(plan).values():
                assert 0.0 <= value <= 1.0

    def test_perfect_plan_maximizes_features(self, task, perfect_plan):
        from repro.core.env import DomainMode

        extractor = PlanFeatureExtractor(task, DomainMode.COURSE)
        features = extractor.features(perfect_plan)
        assert features[Question.ORDERING] == 1.0
        assert features[Question.COVERAGE] == 1.0
        assert features[Question.OVERALL] == pytest.approx(1.0)

    def test_poor_plan_scores_lower(self, task, perfect_plan, poor_plan):
        from repro.core.env import DomainMode

        extractor = PlanFeatureExtractor(task, DomainMode.COURSE)
        good = extractor.features(perfect_plan)
        bad = extractor.features(poor_plan)
        assert bad[Question.OVERALL] < good[Question.OVERALL]


class TestSimulatedStudy:
    def test_ratings_on_one_to_five_scale(self, task, perfect_plan):
        study = SimulatedStudy(task, num_raters=25, seed=0)
        result = study.rate(perfect_plan)
        for question in Question:
            assert 1.0 <= result.mean(question) <= 5.0

    def test_better_plan_rates_higher(self, task, perfect_plan, poor_plan):
        study = SimulatedStudy(task, num_raters=50, seed=0)
        assert (
            study.rate(perfect_plan).overall
            > study.rate(poor_plan).overall
        )

    def test_panel_is_seed_deterministic(self, task, perfect_plan):
        a = SimulatedStudy(task, num_raters=25, seed=3).rate(perfect_plan)
        b = SimulatedStudy(task, num_raters=25, seed=3).rate(perfect_plan)
        assert a.ratings == b.ratings

    def test_compare_emits_table_iv_layout(
        self, task, perfect_plan, poor_plan
    ):
        study = SimulatedStudy(task, num_raters=25, seed=0)
        table = study.compare(poor_plan, perfect_plan)
        assert set(table) == {q.value for q in Question}
        for row in table.values():
            assert set(row) == {"rl_planner", "gold"}

    def test_as_dict(self, task, perfect_plan):
        result = SimulatedStudy(task, seed=0).rate(perfect_plan)
        assert set(result.as_dict()) == {q.value for q in Question}

    def test_unknown_question_raises(self, task, perfect_plan):
        result = SimulatedStudy(task, seed=0).rate(perfect_plan)
        with pytest.raises(KeyError):
            result.mean("not a question")
