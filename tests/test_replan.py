"""Mid-plan replanning under availability churn (ISSUE-8 tentpole).

Covers the delta-classification matrix, suffix-only replanning (prefix
pinned, closed items excluded), prefix invalidation and reopen
self-healing, the repair-only tight-deadline path, byte-identical
decision logs on replay, the pinned-prefix repair search, and the
drain-time quiesce contract.
"""

from __future__ import annotations

import json

import pytest
from conftest import make_item, make_task

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.deltas import (
    DELTA_CLOSE,
    DELTA_CREDIT_CHANGE,
    DELTA_MIN_CREDITS,
    DELTA_REOPEN,
    CatalogDelta,
    ConstraintDelta,
)
from repro.core.exceptions import DeltaError, PlanningError
from repro.core.items import ItemType, Prerequisites
from repro.serving import (
    CLASS_BENIGN,
    CLASS_PREFIX_INVALIDATING,
    CLASS_SUFFIX_ONLY,
    REPLAN_DEGRADED,
    REPLAN_DRAINING,
    REPLAN_INVALIDATED,
    REPLAN_NOOP,
    REPLAN_OK,
    PlanningService,
    RepairPlanner,
)

pytestmark = [pytest.mark.serving, pytest.mark.scenarios]


def _churn_catalog() -> Catalog:
    """Ten items with slack: any single closure keeps the task feasible."""
    items = [
        make_item("p1", ItemType.PRIMARY, topics={"t1"}),
        make_item("p2", ItemType.PRIMARY, topics={"t2"}),
        make_item("p3", ItemType.PRIMARY, topics={"t3"}),
        make_item("p4", ItemType.PRIMARY, topics={"t4"}),
        make_item("p5", ItemType.PRIMARY, topics={"t1", "t3"}),
        make_item("s1", ItemType.SECONDARY, topics={"t1"}),
        make_item(
            "s2",
            ItemType.SECONDARY,
            topics={"t2"},
            prereqs=Prerequisites.all_of(["p1"]),
        ),
        make_item(
            "s3",
            ItemType.SECONDARY,
            topics={"t3"},
            prereqs=Prerequisites.any_of(["p2", "p3"]),
        ),
        make_item("s4", ItemType.SECONDARY, topics={"t4"}),
        make_item("s5", ItemType.SECONDARY, topics={"t2", "t4"}),
    ]
    return Catalog(items, name="churn-unit")


@pytest.fixture(scope="module")
def fitted_proto():
    """Train once per module; tests clone services around the planner."""
    catalog = _churn_catalog()
    task = make_task()
    config = PlannerConfig(episodes=250, seed=3)
    service = PlanningService(catalog, task, config)
    service.fit()
    return service


@pytest.fixture()
def service(fitted_proto):
    """Fresh facade per test (clean view/pending state, shared policy)."""
    return PlanningService(
        fitted_proto.catalog,
        fitted_proto.task,
        fitted_proto.config,
        planner=fitted_proto.planner,
    )


@pytest.fixture()
def base_plan(service):
    result = service.serve()
    assert result.ok and result.plan is not None, result.describe()
    return result.plan


def _close(item_id: str, seq: int = 1) -> CatalogDelta:
    return CatalogDelta(kind=DELTA_CLOSE, item_id=item_id, seq=seq)


def _reopen(item_id: str, seq: int = 2) -> CatalogDelta:
    return CatalogDelta(kind=DELTA_REOPEN, item_id=item_id, seq=seq)


def _off_plan_item(plan, service) -> str:
    for item_id in service.catalog.item_ids:
        if item_id not in plan.item_ids:
            return item_id
    raise AssertionError("plan uses the whole catalog; no slack item")


class TestClassification:
    def test_close_prefix_member_invalidates_prefix(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=2)
        cls = session.ingest(_close(base_plan.item_ids[0]))
        assert cls == CLASS_PREFIX_INVALIDATING
        assert not session.prefix_valid()

    def test_close_suffix_member_is_suffix_only(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        cls = session.ingest(_close(base_plan.item_ids[-1]))
        assert cls == CLASS_SUFFIX_ONLY
        assert session.prefix_valid()
        assert session.pending_deltas == 1

    def test_close_off_plan_item_is_benign(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        cls = session.ingest(_close(_off_plan_item(base_plan, service)))
        assert cls == CLASS_BENIGN
        assert session.pending_deltas == 0

    def test_reopen_is_benign(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[-1]))
        cls = session.ingest(_reopen(base_plan.item_ids[-1]))
        assert cls == CLASS_BENIGN

    def test_credit_change_off_plan_is_benign(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        cls = session.ingest(
            CatalogDelta(
                kind=DELTA_CREDIT_CHANGE,
                item_id=_off_plan_item(base_plan, service),
                credits=9.0,
                seq=1,
            )
        )
        assert cls == CLASS_BENIGN

    def test_min_credits_within_plan_total_is_benign(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=1)
        cls = session.ingest(
            ConstraintDelta(
                kind=DELTA_MIN_CREDITS,
                value=base_plan.total_credits,
                seq=1,
            )
        )
        assert cls == CLASS_BENIGN

    def test_min_credits_beyond_plan_total_is_suffix_only(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=1)
        cls = session.ingest(
            ConstraintDelta(
                kind=DELTA_MIN_CREDITS,
                value=base_plan.total_credits + 3.0,
                seq=1,
            )
        )
        assert cls == CLASS_SUFFIX_ONLY
        # The session's own task now carries the tightened constraint.
        assert session.task.hard.min_credits == base_plan.total_credits + 3.0

    def test_ingest_rejects_unknown_item(self, service, base_plan):
        session = service.open_session(base_plan)
        with pytest.raises(DeltaError):
            session.ingest(_close("ghost"))


class TestReplan:
    def test_suffix_only_replan_pins_prefix_and_drops_closed(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=2)
        victim = base_plan.item_ids[-1]
        session.ingest(_close(victim))
        result = session.replan(deadline_s=5.0)
        assert result.outcome in (REPLAN_OK, REPLAN_DEGRADED)
        assert result.ok
        assert result.suffix_start == 2
        assert result.plan.item_ids[:2] == base_plan.item_ids[:2]
        assert victim not in result.plan.item_ids
        # The session adopted the new plan and cleared pending deltas.
        assert session.plan.item_ids == result.plan.item_ids
        assert session.pending_deltas == 0

    def test_replan_result_carries_delta_provenance(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[-1]))
        result = session.replan(deadline_s=5.0)
        assert len(result.deltas) == 1
        record = result.deltas[0]
        assert record.kind == DELTA_CLOSE
        assert record.item_id == base_plan.item_ids[-1]
        assert record.classification == CLASS_SUFFIX_ONLY

    def test_noop_when_nothing_pending(self, service, base_plan):
        session = service.open_session(base_plan, executed=1)
        result = session.replan(deadline_s=5.0)
        assert result.outcome == REPLAN_NOOP
        assert result.plan.item_ids == base_plan.item_ids

    def test_prefix_invalidation_blocks_planning(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[0]))
        result = session.replan(deadline_s=5.0)
        assert result.outcome == REPLAN_INVALIDATED
        assert not result.attempts  # no rung ever ran
        assert session.plan.item_ids == base_plan.item_ids

    def test_reopen_heals_invalidated_prefix(self, service, base_plan):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[0]))
        assert session.replan(deadline_s=5.0).outcome == REPLAN_INVALIDATED
        session.ingest(_reopen(base_plan.item_ids[0]))
        assert session.prefix_valid()
        result = session.replan(deadline_s=5.0)
        assert result.outcome in (REPLAN_OK, REPLAN_DEGRADED, REPLAN_NOOP)
        assert result.ok

    def test_tight_deadline_goes_straight_to_repair(
        self, service, base_plan
    ):
        session = service.open_session(
            base_plan, executed=2, repair_only_below_s=60.0
        )
        session.ingest(_close(base_plan.item_ids[-1]))
        result = session.replan(deadline_s=5.0)
        assert [a.rung for a in result.attempts] == ["repair"]
        assert result.rung == "repair"
        assert result.ok

    def test_decision_log_replay_is_byte_identical(
        self, service, base_plan
    ):
        def run() -> str:
            session = service.open_session(
                base_plan, executed=1, session_id="replay"
            )
            session.ingest(_close(base_plan.item_ids[-1], seq=1))
            session.ingest(
                _close(_off_plan_item(base_plan, service), seq=2)
            )
            session.replan(deadline_s=30.0)
            session.ingest(_reopen(base_plan.item_ids[-1], seq=3))
            session.replan(deadline_s=30.0)
            return session.log_json()

        log_a, log_b = run(), run()
        assert log_a == log_b
        parsed = json.loads(log_a)
        events = [entry["event"] for entry in parsed]
        assert events.count("replan") == 2
        # No wall-clock values anywhere in the log.
        for entry in parsed:
            assert "time" not in entry and "seconds" not in entry

    def test_advance_moves_the_committed_boundary(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=0)
        assert session.advance(2) == 2
        cls = session.ingest(_close(base_plan.item_ids[1]))
        assert cls == CLASS_PREFIX_INVALIDATING


class TestQuiesce:
    def test_quiesce_without_pending_shed_draining(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=1)
        result = session.quiesce(grace_s=1.0)
        assert result.outcome == REPLAN_DRAINING
        assert session.drained
        with pytest.raises(PlanningError):
            session.ingest(_close(base_plan.item_ids[-1]))

    def test_quiesce_with_pending_finishes_under_grace(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[-1]))
        result = session.quiesce(grace_s=5.0)
        assert result.outcome in (REPLAN_OK, REPLAN_DEGRADED)
        assert result.ok
        assert session.drained

    def test_quiesce_with_zero_grace_sheds_typed_envelope(
        self, service, base_plan
    ):
        session = service.open_session(base_plan, executed=2)
        session.ingest(_close(base_plan.item_ids[-1]))
        result = session.quiesce(grace_s=0.0)
        assert result.outcome == REPLAN_DRAINING
        assert len(result.deltas) == 1  # pending provenance preserved
        assert session.drained

    def test_replan_after_drain_returns_draining(self, service, base_plan):
        session = service.open_session(base_plan, executed=1)
        session.quiesce()
        result = session.replan(deadline_s=1.0)
        assert result.outcome == REPLAN_DRAINING


class TestFacadeDeltas:
    def test_apply_delta_bumps_version_and_avoids_closed_item(
        self, service, base_plan
    ):
        victim = base_plan.item_ids[-1]
        report = service.apply_delta(_close(victim))
        assert report.catalog_version == 1
        assert victim not in service.live_catalog
        result = service.serve()
        assert result.ok, result.describe()
        assert result.catalog_version == 1
        assert victim not in result.plan.item_ids

    def test_screen_rejects_request_for_closed_start(
        self, service, base_plan
    ):
        victim = base_plan.item_ids[0]
        service.apply_delta(_close(victim))
        result = service.serve(start_item_id=victim)
        assert result.outcome == "rejected"

    def test_reopen_restores_the_world(self, service, base_plan):
        victim = base_plan.item_ids[-1]
        service.apply_delta(_close(victim))
        service.apply_delta(_reopen(victim))
        assert victim in service.live_catalog
        assert service.catalog_version == 2
        result = service.serve()
        assert result.ok

    def test_constraint_delta_rejected_at_service_level(self, service):
        with pytest.raises(DeltaError):
            service.apply_delta(
                ConstraintDelta(kind=DELTA_MIN_CREDITS, value=15.0, seq=1)
            )

    def test_session_opened_after_close_ingests_reopen(
        self, service, base_plan
    ):
        """Sessions fork the pristine base, so a reopen of an item the
        live catalog already pruned still resolves (REVIEW: high)."""
        victim = base_plan.item_ids[-1]
        service.apply_delta(_close(victim))
        session = service.open_session(base_plan, executed=1)
        assert victim not in session.view.live
        cls = session.ingest(_reopen(victim))
        assert cls == CLASS_BENIGN
        assert victim in session.view.live

    def test_session_opened_after_cascade_resolves_orphan_items(
        self, service, base_plan
    ):
        # Closing p1 cascades s2 out of the live catalog; a session
        # opened afterwards must still resolve deltas on both.
        service.apply_delta(_close("p1"))
        session = service.open_session(base_plan, executed=0)
        assert "s2" not in session.view.live
        cls = session.ingest(_reopen("p1"))
        assert cls == CLASS_BENIGN
        assert "p1" in session.view.live
        assert "s2" in session.view.live

    def test_closing_prereq_cascades_out_dependents(self, service):
        # s2 requires p1; closing p1 prunes s2's only alternative, so
        # the live catalog drops s2 too (orphan cascade).
        report = service.apply_delta(_close("p1"))
        codes = {f.code for f in report.findings}
        assert "orphaned_item" in codes
        assert "s2" not in service.live_catalog
        result = service.serve()
        assert result.ok
        assert "p1" not in result.plan.item_ids
        assert "s2" not in result.plan.item_ids


class TestRepairPinned:
    def test_pinned_prefix_is_kept_verbatim(self, service, base_plan):
        planner = RepairPlanner(
            service.catalog, service.task, service.mode
        )
        prefix = base_plan.items[:2]
        plan = planner.recommend(pinned=prefix)
        assert plan.item_ids[:2] == base_plan.item_ids[:2]
        from repro.core.scoring import PlanScorer

        score = PlanScorer(service.task, service.mode).score(plan)
        assert score.is_valid, score.report

    def test_pinned_and_start_are_mutually_exclusive(
        self, service, base_plan
    ):
        planner = RepairPlanner(
            service.catalog, service.task, service.mode
        )
        with pytest.raises(PlanningError):
            planner.recommend(
                start_item_id="p1", pinned=base_plan.items[:1]
            )

    def test_pinned_duplicate_ids_rejected(self, service, base_plan):
        planner = RepairPlanner(
            service.catalog, service.task, service.mode
        )
        first = base_plan.items[0]
        with pytest.raises(PlanningError):
            planner.recommend(pinned=(first, first))

    def test_pinned_type_mismatch_has_typed_error(self, service):
        planner = RepairPlanner(
            service.catalog, service.task, service.mode
        )
        # Every template slot 0 is primary; pinning four secondaries
        # cannot match any permutation.
        secondaries = service.catalog.secondaries()[:4]
        with pytest.raises(PlanningError):
            planner.recommend(pinned=secondaries)
