"""Unit tests for plan recommendation (repro.core.policy)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig, RecommendationMode
from repro.core.env import TPPEnvironment
from repro.core.exceptions import PlanningError, UntrainedPolicyError
from repro.core.items import ItemType
from repro.core.policy import GreedyPolicy
from repro.core.qtable import QTable
from repro.core.reward import RewardFunction
from repro.core.sarsa import SarsaLearner

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


@pytest.fixture
def task():
    return make_task()


@pytest.fixture
def trained(catalog, task):
    config = PlannerConfig(
        episodes=40, coverage_threshold=1.0, exploration=0.1, seed=0
    )
    env = TPPEnvironment(catalog, task, config)
    result = SarsaLearner(env, config).learn()
    return result.qtable, RewardFunction(task, config)


class TestQOnlyTraversal:
    def test_manual_qtable_is_followed(self, catalog, task):
        table = QTable(catalog)
        # Force the path p1 -> s1 -> p2 -> s2.
        table.set("p1", "s1", 5.0)
        table.set("s1", "p2", 5.0)
        table.set("p2", "s2", 5.0)
        table.update_count = 3
        policy = GreedyPolicy(
            table, task, recommendation=RecommendationMode.Q_ONLY
        )
        plan = policy.recommend("p1")
        assert plan.item_ids == ("p1", "s1", "p2", "s2")

    def test_untrained_table_refused(self, catalog, task):
        policy = GreedyPolicy(
            QTable(catalog), task,
            recommendation=RecommendationMode.Q_ONLY,
        )
        with pytest.raises(UntrainedPolicyError):
            policy.recommend("p1")

    def test_untrained_override(self, catalog, task):
        policy = GreedyPolicy(
            QTable(catalog), task,
            recommendation=RecommendationMode.Q_ONLY,
        )
        plan = policy.recommend("p1", require_trained=False)
        assert len(plan) == 4

    def test_unknown_start_rejected(self, catalog, task):
        policy = GreedyPolicy(
            QTable(catalog), task,
            recommendation=RecommendationMode.Q_ONLY,
        )
        with pytest.raises(PlanningError):
            policy.recommend("ghost")


class TestLookaheadTraversal:
    def test_requires_reward_function(self, catalog, task):
        with pytest.raises(PlanningError):
            GreedyPolicy(
                QTable(catalog), task,
                recommendation=RecommendationMode.LOOKAHEAD,
            )

    def test_produces_full_length_plan(self, catalog, task, trained):
        table, reward = trained
        policy = GreedyPolicy(table, task, reward=reward)
        plan = policy.recommend("p1")
        assert len(plan) == task.hard.plan_length
        assert plan.item_ids[0] == "p1"
        assert len(set(plan.item_ids)) == len(plan)

    def test_horizon_override(self, catalog, task, trained):
        table, reward = trained
        policy = GreedyPolicy(table, task, reward=reward)
        assert len(policy.recommend("p1", horizon=2)) == 2

    def test_recommend_many(self, catalog, task, trained):
        table, reward = trained
        policy = GreedyPolicy(table, task, reward=reward)
        plans = policy.recommend_many(["p1", "p2"])
        assert [p.item_ids[0] for p in plans] == ["p1", "p2"]

    def test_deterministic_without_rng(self, catalog, task, trained):
        table, reward = trained
        a = GreedyPolicy(table, task, reward=reward).recommend("p1")
        b = GreedyPolicy(table, task, reward=reward).recommend("p1")
        assert a.item_ids == b.item_ids

    def test_mask_disabled_allows_gate_failures(self, catalog, task,
                                                trained):
        table, reward = trained
        masked = GreedyPolicy(table, task, reward=reward, mask=True)
        unmasked = GreedyPolicy(table, task, reward=reward, mask=False)
        # Both produce plans; masking can only change (improve) choices.
        assert len(masked.recommend("p1")) == 4
        assert len(unmasked.recommend("p1")) == 4
