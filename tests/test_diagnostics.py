"""Tests for infeasibility diagnostics (repro.analysis.diagnostics)."""

import pytest

from repro.analysis import diagnose, suggest_relaxations
from repro.core.catalog import Catalog
from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.env import DomainMode
from repro.core.items import ItemType, Prerequisites

from conftest import make_item, make_task


def _task(min_credits, num_primary, num_secondary, gap=1,
          categories=None):
    labels = [
        ["P"] * num_primary + ["S"] * num_secondary
    ]
    return TaskSpec(
        hard=HardConstraints.for_courses(
            min_credits, num_primary, num_secondary, gap,
            category_credits=categories,
        ),
        soft=SoftConstraints(
            ideal_topics=frozenset({"t1"}),
            template=InterleavingTemplate.from_labels(labels),
        ),
    )


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


class TestFeasibleInstances:
    def test_healthy_instance_passes(self, catalog):
        diagnosis = diagnose(catalog, make_task())
        assert diagnosis.is_feasible
        assert diagnosis.describe() == (
            "no structural infeasibility found"
        )
        assert suggest_relaxations(catalog, make_task()) == []

    def test_paper_datasets_are_feasible(self):
        from repro.datasets import load

        for key in ("njit_dsct", "univ2_ds", "toy"):
            dataset = load(key, seed=0, with_gold=False)
            assert diagnose(
                dataset.catalog, dataset.task, dataset.mode
            ).is_feasible

        for key in ("nyc", "paris"):
            dataset = load(key, seed=0, with_gold=False)
            assert diagnose(
                dataset.catalog, dataset.task, DomainMode.TRIP
            ).is_feasible


class TestBlockers:
    def test_catalog_too_small(self, catalog):
        diagnosis = diagnose(catalog, _task(30, 4, 4))
        assert "catalog_size" in diagnosis.codes()

    def test_primary_pool_short(self, catalog):
        diagnosis = diagnose(catalog, _task(9, 3, 0))
        assert "primary_pool" in diagnosis.codes()

    def test_credit_ceiling(self, catalog):
        diagnosis = diagnose(catalog, _task(100, 2, 2))
        assert "credit_ceiling" in diagnosis.codes()

    def test_trip_budget_too_tight(self):
        pois = [
            make_item("a", ItemType.PRIMARY, credits=2.0, topics={"x"}),
            make_item("b", ItemType.SECONDARY, credits=2.0,
                      topics={"y"}),
            make_item("c", ItemType.SECONDARY, credits=2.0,
                      topics={"z"}),
        ]
        catalog = Catalog(pois)
        task = TaskSpec(
            hard=HardConstraints.for_trips(
                3.0, 1, 2, theme_adjacency_gap=False
            ),
            soft=SoftConstraints(
                ideal_topics=frozenset({"x"}),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "S"]]
                ),
            ),
        )
        diagnosis = diagnose(catalog, task, DomainMode.TRIP)
        assert "time_budget" in diagnosis.codes()

    def test_category_supply_short(self):
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, topics={"t"},
                          category="x"),
                make_item("b", ItemType.SECONDARY, topics={"u"},
                          category="y"),
            ]
        )
        task = _task(6, 1, 1, categories={"x": 9})
        diagnosis = diagnose(catalog, task)
        assert "category_supply" in diagnosis.codes()

    def test_category_slots_overcommitted(self):
        items = [
            make_item(f"x{i}", ItemType.PRIMARY if i == 0
                      else ItemType.SECONDARY,
                      topics={f"t{i}"}, category="x")
            for i in range(6)
        ]
        catalog = Catalog(items)
        # 2-slot plan but category x demands 9 credits = 3 courses.
        task = _task(6, 1, 1, categories={"x": 9})
        diagnosis = diagnose(catalog, task)
        assert "category_slots" in diagnosis.codes()

    def test_gap_wider_than_plan(self):
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("s1", ItemType.SECONDARY, topics={"t2"},
                          prereqs=Prerequisites.all_of(["p1"])),
            ]
        )
        task = _task(6, 1, 1, gap=5)
        diagnosis = diagnose(catalog, task)
        assert "gap_too_wide" in diagnosis.codes()
        assert "reduce gap" in diagnosis.describe()
