"""Scenario generators and the server's dynamic-world surface.

Schedule determinism and spec parsing; the adversarial prereq-cut drill
(every served plan stays valid against the live catalog); burst churn
through the load generator (shed/degrade, never serve a plan with a
closed item); delta events over the JSON-lines wire; and drain-time
session quiescing.
"""

from __future__ import annotations

import json
import socket

import pytest
from conftest import make_item, make_task

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.deltas import (
    DELTA_CLOSE,
    DELTA_REOPEN,
    CatalogDelta,
)
from repro.core.items import ItemType, Prerequisites
from repro.obs import MetricsRegistry, use_registry
from repro.scenarios import (
    ChurnEvent,
    burst_schedule,
    poisson_schedule,
    prereq_cut_schedule,
    schedule_from_spec,
)
from repro.core.exceptions import DeltaError
from repro.serving import (
    REPLAN_DRAINING,
    REPLAN_SHED,
    PlanningServer,
    PlanningService,
    closed_loop,
)
from repro.serving.loadgen import SERVED_OUTCOMES

pytestmark = [pytest.mark.serving, pytest.mark.scenarios]


def _catalog() -> Catalog:
    items = [
        make_item("p1", ItemType.PRIMARY, topics={"t1"}),
        make_item("p2", ItemType.PRIMARY, topics={"t2"}),
        make_item("p3", ItemType.PRIMARY, topics={"t3"}),
        make_item("p4", ItemType.PRIMARY, topics={"t4"}),
        make_item("p5", ItemType.PRIMARY, topics={"t1", "t3"}),
        make_item("s1", ItemType.SECONDARY, topics={"t1"}),
        make_item(
            "s2",
            ItemType.SECONDARY,
            topics={"t2"},
            prereqs=Prerequisites.all_of(["p1"]),
        ),
        make_item(
            "s3",
            ItemType.SECONDARY,
            topics={"t3"},
            prereqs=Prerequisites.any_of(["p2", "p3"]),
        ),
        make_item("s4", ItemType.SECONDARY, topics={"t4"}),
        make_item("s5", ItemType.SECONDARY, topics={"t2", "t4"}),
    ]
    return Catalog(items, name="scenario-unit")


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return _catalog()


@pytest.fixture(scope="module")
def fitted_proto(catalog):
    service = PlanningService(
        catalog, make_task(), PlannerConfig(episodes=250, seed=3)
    )
    service.fit()
    return service


@pytest.fixture()
def service(fitted_proto):
    return PlanningService(
        fitted_proto.catalog,
        fitted_proto.task,
        fitted_proto.config,
        planner=fitted_proto.planner,
    )


class TestSchedules:
    def test_poisson_is_seed_deterministic(self, catalog):
        a = poisson_schedule(catalog, seed=7, rate=8.0, reopen_rate=4.0)
        b = poisson_schedule(catalog, seed=7, rate=8.0, reopen_rate=4.0)
        assert a.to_dict() == b.to_dict()
        c = poisson_schedule(catalog, seed=8, rate=8.0, reopen_rate=4.0)
        assert a.to_dict() != c.to_dict()

    def test_poisson_respects_max_closed_fraction(self, catalog):
        schedule = poisson_schedule(
            catalog,
            seed=1,
            rate=200.0,
            reopen_rate=0.0,
            max_closed_fraction=0.3,
        )
        closures = [
            e for e in schedule.events if e.delta.kind == DELTA_CLOSE
        ]
        assert 0 < len(closures) <= int(0.3 * len(catalog))

    def test_burst_closes_then_reopens(self, catalog):
        schedule = burst_schedule(
            catalog, seed=2, every=0.25, length=0.1, per_burst=2
        )
        closes = [
            e for e in schedule.events if e.delta.kind == DELTA_CLOSE
        ]
        reopens = [
            e for e in schedule.events if e.delta.kind == DELTA_REOPEN
        ]
        assert len(closes) == len(reopens) == 8
        assert {e.delta.item_id for e in closes} == {
            e.delta.item_id for e in reopens
        }
        assert schedule.to_dict() == burst_schedule(
            catalog, seed=2, every=0.25, length=0.1, per_burst=2
        ).to_dict()

    def test_prereq_cut_targets_load_bearing_antecedents(self, catalog):
        schedule = prereq_cut_schedule(catalog, seed=0, cuts=2)
        cut_ids = {e.delta.item_id for e in schedule.events}
        # p1, p2, p3 are the only antecedents; the two chosen must come
        # from that set.
        assert cut_ids <= {"p1", "p2", "p3"}
        assert len(cut_ids) == 2

    def test_prereq_cut_prioritizes_committed_prefix(
        self, catalog, fitted_proto
    ):
        plan = fitted_proto.serve().plan
        schedule = prereq_cut_schedule(
            catalog, seed=0, cuts=1, plan=plan, executed=2
        )
        prefix_antecedents = set(plan.item_ids[:2]) & {"p1", "p2", "p3"}
        if prefix_antecedents:
            assert schedule.events[0].delta.item_id in prefix_antecedents

    def test_events_until_is_ordered_filter(self, catalog):
        schedule = poisson_schedule(catalog, seed=3, rate=10.0)
        due = schedule.events_until(0.5)
        assert all(e.at <= 0.5 for e in due)
        assert list(due) == [e for e in schedule.events if e.at <= 0.5]

    def test_event_fraction_validated(self, catalog):
        with pytest.raises(ValueError):
            ChurnEvent(
                at=1.5,
                delta=CatalogDelta(kind=DELTA_CLOSE, item_id="p1", seq=1),
            )


class TestSpecParsing:
    def test_round_trip_specs(self, catalog):
        for spec, kind in (
            ("poisson:rate=6,reopen=3,seed=4", "poisson"),
            ("cut:cuts=2,at=0.5,seed=1", "cut"),
            ("burst:every=0.25,len=0.1,per=2,seed=9", "burst"),
        ):
            schedule = schedule_from_spec(catalog, spec)
            assert schedule.kind == kind
            assert schedule.to_dict() == schedule_from_spec(
                catalog, spec
            ).to_dict()

    def test_unknown_kind_rejected(self, catalog):
        with pytest.raises(ValueError):
            schedule_from_spec(catalog, "meteor:rate=1")

    def test_unknown_field_rejected(self, catalog):
        with pytest.raises(ValueError):
            schedule_from_spec(catalog, "burst:every=0.25,wat=1")

    def test_bad_value_rejected(self, catalog):
        with pytest.raises(ValueError):
            schedule_from_spec(catalog, "poisson:rate=fast")


class TestChurnUnderLoad:
    def test_burst_churn_never_serves_closed_items(self, service):
        server = PlanningServer(service, workers=1, max_queue=8)
        try:
            report = closed_loop(
                server,
                concurrency=1,
                requests=24,
                deadline_s=5.0,
                churn_spec="burst:every=0.25,len=0.1,per=2,seed=5",
            )
        finally:
            server.close()
        assert report["invalid_served"] == 0
        assert report["churn"]["applied"] > 0
        assert report["churn"]["errors"] == 0
        assert sum(report["outcomes"].values()) == 24

    def test_adversarial_prereq_cut_drill(self, service):
        """Every served plan must pass validation against the live world."""
        server = PlanningServer(service, workers=1, max_queue=8)
        try:
            report = closed_loop(
                server,
                concurrency=1,
                requests=16,
                deadline_s=5.0,
                churn_spec="cut:cuts=2,at=0.5,seed=0",
            )
        finally:
            server.close()
        assert report["invalid_served"] == 0
        assert report["churn"]["applied"] == 2
        # Post-drill: plans served now must avoid the cut items and
        # their orphaned dependents.
        live = service.live_catalog
        result = service.serve()
        if result.outcome in SERVED_OUTCOMES:
            assert all(i in live for i in result.plan.item_ids)

    def test_open_sessions_receive_broadcast_deltas(self, service):
        server = PlanningServer(service, workers=1, max_queue=8)
        try:
            plan = service.serve().plan
            session = server.open_session(plan, executed=1)
            victim = plan.item_ids[-1]
            report = server.apply_delta(
                CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
            )
            assert report is not None and report.catalog_version == 1
            assert session.pending_deltas == 1
            future = server.submit_replan(session, deadline_s=5.0)
            result = future.result(timeout=30.0)
            assert result.ok
            assert victim not in result.plan.item_ids
        finally:
            server.close()

    def test_broadcast_survives_one_failing_session(self, service):
        """A session whose ingest raises must not starve the sessions
        after it in the broadcast list (REVIEW: high)."""

        class _Exploding:
            session_id = "boom"
            drained = False
            executed = 0

            def ingest(self, delta):
                raise DeltaError("cannot absorb this delta")

        server = PlanningServer(service, workers=1, max_queue=8)
        try:
            plan = service.serve().plan
            with server._lock:
                server._sessions["boom"] = _Exploding()
            healthy = server.open_session(plan, executed=1)
            victim = plan.item_ids[-1]
            report = server.apply_delta(
                CatalogDelta(kind=DELTA_CLOSE, item_id=victim, seq=1)
            )
            # The service-level state moved and the healthy session
            # (broadcast after the exploding one) still got the delta.
            assert report is not None and report.catalog_version == 1
            assert healthy.pending_deltas == 1
        finally:
            with server._lock:
                server._sessions.pop("boom", None)
            server.close()

    def test_replan_sheds_at_queue_full(self, service):
        """Replans share the serve path's max_queue backpressure."""
        server = PlanningServer(service, workers=1, max_queue=1)
        try:
            plan = service.serve().plan
            session = server.open_session(plan, executed=1)
            with server._lock:
                server._queued = server.max_queue  # simulate a full queue
            shed = server.submit_replan(session, deadline_s=1.0).result()
            assert shed.outcome == REPLAN_SHED
            assert shed.trigger == "queue_full"
            with server._lock:
                server._queued = 0
        finally:
            server.close()

    def test_drain_quiesces_open_sessions(self, service):
        obs = MetricsRegistry()
        with use_registry(obs):
            server = PlanningServer(
                service,
                workers=1,
                max_queue=8,
                drain_session_grace_s=5.0,
            )
            plan = service.serve().plan
            finishing = server.open_session(plan, executed=1)
            finishing.ingest(
                CatalogDelta(
                    kind=DELTA_CLOSE, item_id=plan.item_ids[-1], seq=1
                )
            )
            idle = server.open_session(plan, executed=1)
            server.drain()
            assert finishing.drained and idle.drained
            assert finishing.last_result.outcome != REPLAN_DRAINING
            assert idle.last_result.outcome == REPLAN_DRAINING
            payload = obs.snapshot()["counters"]
            quiesced = {
                name: count
                for name, count in payload.items()
                if name.startswith("server_sessions_quiesced_total")
            }
            assert sum(quiesced.values()) == 2
            # Replans after drain shed with the typed draining envelope.
            shed = server.submit_replan(idle, deadline_s=1.0).result()
            assert shed.outcome == REPLAN_DRAINING
            server.close()

    def test_draining_server_rejects_new_sessions(self, service):
        from repro.core.exceptions import PlanningError

        server = PlanningServer(service, workers=1, max_queue=8)
        plan = service.serve().plan
        server.drain()
        with pytest.raises(PlanningError):
            server.open_session(plan)
        server.close()


class TestWireDeltas:
    def _roundtrip(self, sock_file, wfile, payload):
        wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        wfile.flush()
        return json.loads(sock_file.readline().decode("utf-8"))

    def test_delta_events_over_the_wire(self, service):
        server = PlanningServer(service, workers=2, max_queue=8)
        victim = service.serve().plan.item_ids[-1]
        try:
            host, port = server.listen()
            with socket.create_connection((host, port), timeout=10.0) as conn:
                rfile = conn.makefile("rb")
                wfile = conn.makefile("wb")
                reply = self._roundtrip(
                    rfile,
                    wfile,
                    {"delta": {"kind": DELTA_CLOSE, "item": victim}},
                )
                assert reply["outcome"] == "delta_applied"
                assert reply["kind"] == DELTA_CLOSE
                assert reply["catalog_version"] == 1
                assert reply["fingerprint_changed"] is False
                # A follow-up request must avoid the closed item and
                # carry delta provenance in its envelope.
                served = self._roundtrip(rfile, wfile, {"deadline_s": 5.0})
                assert served["outcome"] in SERVED_OUTCOMES
                assert served["catalog_version"] == 1
                assert victim not in served["plan"]
                # Malformed deltas get typed error envelopes.
                bad = self._roundtrip(
                    rfile,
                    wfile,
                    {"delta": {"kind": "close", "item": "ghost"}},
                )
                assert bad["outcome"] == "error"
                worse = self._roundtrip(
                    rfile,
                    wfile,
                    {"delta": {"kind": "melt", "item": victim}},
                )
                assert worse["outcome"] == "error"
        finally:
            server.close()
