"""Unit tests for the item catalog (repro.core.catalog)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import DataModelError, UnknownItemError
from repro.core.items import ItemType, Prerequisites

from conftest import make_item


@pytest.fixture
def small_catalog():
    items = [
        make_item("a", ItemType.PRIMARY, topics={"t1"}),
        make_item("b", ItemType.SECONDARY, topics={"t2"}),
        make_item(
            "c",
            ItemType.SECONDARY,
            topics={"t1", "t3"},
            prereqs=Prerequisites.all_of(["a"]),
            category="cat1",
        ),
    ]
    return Catalog(items, name="small")


class TestConstruction:
    def test_empty_catalog_rejected(self):
        with pytest.raises(DataModelError):
            Catalog([], name="empty")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataModelError):
            Catalog([make_item("a"), make_item("a")])

    def test_dangling_prerequisite_rejected(self):
        items = [make_item("b", prereqs=Prerequisites.all_of(["ghost"]))]
        with pytest.raises(DataModelError):
            Catalog(items)

    def test_dangling_prerequisite_allowed_when_unchecked(self):
        items = [make_item("b", prereqs=Prerequisites.all_of(["ghost"]))]
        catalog = Catalog(items, validate_prerequisites=False)
        assert "b" in catalog

    def test_explicit_vocabulary_must_cover_topics(self):
        with pytest.raises(DataModelError):
            Catalog(
                [make_item("a", topics={"weird"})],
                topic_vocabulary=["t1"],
            )

    def test_vocabulary_defaults_to_sorted_topic_union(self, small_catalog):
        assert small_catalog.topic_vocabulary == ("t1", "t2", "t3")
        assert small_catalog.num_topics == 3


class TestLookups:
    def test_getitem_and_contains(self, small_catalog):
        assert small_catalog["a"].item_id == "a"
        assert "a" in small_catalog and "zzz" not in small_catalog

    def test_unknown_item_error(self, small_catalog):
        with pytest.raises(UnknownItemError):
            small_catalog["zzz"]
        with pytest.raises(UnknownItemError):
            small_catalog.index_of("zzz")

    def test_index_round_trip(self, small_catalog):
        for item in small_catalog:
            assert small_catalog.item_at(
                small_catalog.index_of(item.item_id)
            ) is item

    def test_type_partitions(self, small_catalog):
        assert [i.item_id for i in small_catalog.primaries()] == ["a"]
        assert [i.item_id for i in small_catalog.secondaries()] == ["b", "c"]

    def test_category_queries(self, small_catalog):
        assert small_catalog.categories() == ("cat1",)
        assert [i.item_id for i in small_catalog.in_category("cat1")] == ["c"]

    def test_with_topic(self, small_catalog):
        assert {i.item_id for i in small_catalog.with_topic("t1")} == {
            "a", "c",
        }

    def test_antecedent_ids(self, small_catalog):
        assert small_catalog.antecedent_ids() == frozenset({"a"})

    def test_dependents_of(self, small_catalog):
        assert [i.item_id for i in small_catalog.dependents_of("a")] == ["c"]
        with pytest.raises(UnknownItemError):
            small_catalog.dependents_of("zzz")


class TestSubsetsAndStats:
    def test_subset_preserves_order(self, small_catalog):
        sub = small_catalog.subset(["c", "a"])
        assert sub.item_ids == ("a", "c")

    def test_subset_unknown_id_rejected(self, small_catalog):
        with pytest.raises(UnknownItemError):
            small_catalog.subset(["a", "nope"])

    def test_shared_item_ids(self, small_catalog):
        other = Catalog([make_item("b"), make_item("z")])
        assert small_catalog.shared_item_ids(other) == ("b",)

    def test_stats(self, small_catalog):
        stats = small_catalog.stats()
        assert stats["num_items"] == 3
        assert stats["num_primary"] == 1
        assert stats["num_with_prerequisites"] == 1
        assert stats["total_credits"] == 9.0
