"""Unit tests for the item catalog (repro.core.catalog)."""

import pytest

from repro.core.catalog import (
    SUBSET_ORPHANED_ITEM,
    SUBSET_PRUNED_PREREQ,
    Catalog,
)
from repro.core.exceptions import (
    DanglingPrerequisiteError,
    DataModelError,
    UnknownItemError,
)
from repro.core.items import ItemType, Prerequisites

from conftest import make_item


@pytest.fixture
def small_catalog():
    items = [
        make_item("a", ItemType.PRIMARY, topics={"t1"}),
        make_item("b", ItemType.SECONDARY, topics={"t2"}),
        make_item(
            "c",
            ItemType.SECONDARY,
            topics={"t1", "t3"},
            prereqs=Prerequisites.all_of(["a"]),
            category="cat1",
        ),
    ]
    return Catalog(items, name="small")


class TestConstruction:
    def test_empty_catalog_rejected(self):
        with pytest.raises(DataModelError):
            Catalog([], name="empty")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataModelError):
            Catalog([make_item("a"), make_item("a")])

    def test_dangling_prerequisite_rejected(self):
        items = [make_item("b", prereqs=Prerequisites.all_of(["ghost"]))]
        with pytest.raises(DataModelError):
            Catalog(items)

    def test_dangling_prerequisite_allowed_when_unchecked(self):
        items = [make_item("b", prereqs=Prerequisites.all_of(["ghost"]))]
        catalog = Catalog(items, validate_prerequisites=False)
        assert "b" in catalog

    def test_explicit_vocabulary_must_cover_topics(self):
        with pytest.raises(DataModelError):
            Catalog(
                [make_item("a", topics={"weird"})],
                topic_vocabulary=["t1"],
            )

    def test_vocabulary_defaults_to_sorted_topic_union(self, small_catalog):
        assert small_catalog.topic_vocabulary == ("t1", "t2", "t3")
        assert small_catalog.num_topics == 3


class TestLookups:
    def test_getitem_and_contains(self, small_catalog):
        assert small_catalog["a"].item_id == "a"
        assert "a" in small_catalog and "zzz" not in small_catalog

    def test_unknown_item_error(self, small_catalog):
        with pytest.raises(UnknownItemError):
            small_catalog["zzz"]
        with pytest.raises(UnknownItemError):
            small_catalog.index_of("zzz")

    def test_index_round_trip(self, small_catalog):
        for item in small_catalog:
            assert small_catalog.item_at(
                small_catalog.index_of(item.item_id)
            ) is item

    def test_type_partitions(self, small_catalog):
        assert [i.item_id for i in small_catalog.primaries()] == ["a"]
        assert [i.item_id for i in small_catalog.secondaries()] == ["b", "c"]

    def test_category_queries(self, small_catalog):
        assert small_catalog.categories() == ("cat1",)
        assert [i.item_id for i in small_catalog.in_category("cat1")] == ["c"]

    def test_with_topic(self, small_catalog):
        assert {i.item_id for i in small_catalog.with_topic("t1")} == {
            "a", "c",
        }

    def test_antecedent_ids(self, small_catalog):
        assert small_catalog.antecedent_ids() == frozenset({"a"})

    def test_dependents_of(self, small_catalog):
        assert [i.item_id for i in small_catalog.dependents_of("a")] == ["c"]
        with pytest.raises(UnknownItemError):
            small_catalog.dependents_of("zzz")


class TestSubsetsAndStats:
    def test_subset_preserves_order(self, small_catalog):
        sub = small_catalog.subset(["c", "a"])
        assert sub.item_ids == ("a", "c")

    def test_subset_unknown_id_rejected(self, small_catalog):
        with pytest.raises(UnknownItemError):
            small_catalog.subset(["a", "nope"])

    def test_shared_item_ids(self, small_catalog):
        other = Catalog([make_item("b"), make_item("z")])
        assert small_catalog.shared_item_ids(other) == ("b",)

    def test_stats(self, small_catalog):
        stats = small_catalog.stats()
        assert stats["num_items"] == 3
        assert stats["num_primary"] == 1
        assert stats["num_with_prerequisites"] == 1
        assert stats["total_credits"] == 9.0


class TestSubsetFindings:
    """on_dangling semantics for churn-driven sub-catalogs (ISSUE-8)."""

    @pytest.fixture
    def chain_catalog(self):
        # s2 needs p1 (AND); s3 needs p2-or-p3 (OR); s4 needs s3.
        items = [
            make_item("p1", ItemType.PRIMARY),
            make_item("p2", ItemType.PRIMARY),
            make_item("p3", ItemType.PRIMARY),
            make_item(
                "s2",
                ItemType.SECONDARY,
                prereqs=Prerequisites.all_of(["p1"]),
            ),
            make_item(
                "s3",
                ItemType.SECONDARY,
                prereqs=Prerequisites.any_of(["p2", "p3"]),
            ),
            make_item(
                "s4",
                ItemType.SECONDARY,
                prereqs=Prerequisites.all_of(["s3"]),
            ),
        ]
        return Catalog(items, name="chain")

    def test_keep_is_the_default_and_reports_nothing(self, chain_catalog):
        sub, findings = chain_catalog.subset_with_findings(
            ["p2", "s2", "s3", "s4"]
        )
        assert findings == ()
        # The dead edge survives verbatim: s2 still references p1.
        assert "p1" in sub["s2"].prerequisites.groups[0]

    def test_prune_slims_or_groups(self, chain_catalog):
        sub, findings = chain_catalog.subset_with_findings(
            ["p2", "s3", "s4"], on_dangling="prune"
        )
        assert sub.item_ids == ("p2", "s3", "s4")
        codes = [f.code for f in findings]
        assert codes == [SUBSET_PRUNED_PREREQ]
        assert findings[0].item_ids == ("s3",)
        # s3 kept its surviving alternative only.
        assert sub["s3"].prerequisites.groups[0] == frozenset({"p2"})

    def test_prune_cascades_orphans(self, chain_catalog):
        # Dropping both p2 and p3 kills s3's only OR-group; s4 then
        # loses its only prerequisite and cascades out too.
        sub, findings = chain_catalog.subset_with_findings(
            ["p1", "s2", "s3", "s4"], on_dangling="prune"
        )
        assert sub.item_ids == ("p1", "s2")
        orphaned = sorted(
            f.item_ids[0]
            for f in findings
            if f.code == SUBSET_ORPHANED_ITEM
        )
        assert orphaned == ["s3", "s4"]

    def test_reject_raises_with_findings_attached(self, chain_catalog):
        with pytest.raises(DanglingPrerequisiteError) as exc:
            chain_catalog.subset(
                ["s2", "s3", "s4"], on_dangling="reject"
            )
        codes = {f.code for f in exc.value.findings}
        assert SUBSET_PRUNED_PREREQ in codes or SUBSET_ORPHANED_ITEM in codes

    def test_reject_passes_when_clean(self, chain_catalog):
        sub = chain_catalog.subset(
            ["p1", "s2"], on_dangling="reject"
        )
        assert sub.item_ids == ("p1", "s2")

    def test_out_of_program_prereqs_tolerated_everywhere(self):
        # References to ids the base catalog never contained mirror real
        # degree programs and survive every mode untouched.
        items = [
            make_item("a"),
            make_item(
                "b", prereqs=Prerequisites.all_of(["external-101"])
            ),
        ]
        base = Catalog(items, validate_prerequisites=False)
        for mode in ("keep", "prune", "reject"):
            sub, findings = base.subset_with_findings(
                ["a", "b"], on_dangling=mode
            )
            assert findings == ()
            assert "external-101" in sub["b"].prerequisites.groups[0]

    def test_invalid_mode_rejected(self, chain_catalog):
        with pytest.raises(ValueError):
            chain_catalog.subset(["p1"], on_dangling="explode")
