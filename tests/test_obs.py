"""Tests for the observability layer (repro.obs).

Covers the registry primitives (counters, gauges, histograms, spans),
the NullRegistry no-op guarantees, snapshot/merge semantics (the
cross-process aggregation path), the timing-independent fingerprint,
the Prometheus renderer, and the integration through ExperimentRunner
and the ``rl-planner run --metrics`` / ``rl-planner metrics`` CLI.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.exceptions import ArtifactError
from repro.datasets import load_toy
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    is_timing_metric,
    iter_span_nodes,
    labelled,
    load_metrics,
    metrics_payload,
    snapshot_fingerprint,
    to_prometheus,
    use_registry,
    write_metrics,
)
from repro.runner import ExperimentRunner


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with the global registry disabled."""
    obs.disable()
    yield
    obs.disable()


# Worker functions must be importable top-level names so the process
# pool can pickle them.

def _observe(x):
    registry = obs.get_registry()
    registry.inc("worker_events_total", x)
    registry.set_gauge("worker_gauge", x)
    with registry.span("work"):
        pass
    return x * x


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total")
        registry.inc("jobs_total", 2.5)
        assert registry.counter("jobs_total").value == 3.5

    def test_labelled_sorts_keys(self):
        assert (
            labelled("t_total", b=1, a="x") == 't_total{a="x",b="1"}'
        )
        assert labelled("t_total") == "t_total"

    def test_gauge_running_statistics(self):
        registry = MetricsRegistry()
        for value in (3.0, -1.0, 2.0):
            registry.set_gauge("episode_reward", value)
        gauge = registry.gauge("episode_reward")
        assert gauge.last == 2.0
        assert gauge.min == -1.0
        assert gauge.max == 3.0
        assert gauge.total == 4.0
        assert gauge.count == 3
        assert gauge.mean == pytest.approx(4.0 / 3.0)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        # counts[i] = observations <= bounds[i]; final slot is +Inf.
        assert hist.counts == [1, 2, 3, 4]
        assert hist.count == 4
        assert hist.total == pytest.approx(55.55)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(1.0, 0.1))


class TestSpans:
    def test_nesting_builds_a_tree(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        with registry.span("outer"):
            pass
        spans = registry.snapshot()["spans"]
        paths = dict(iter_span_nodes(spans))
        assert set(paths) == {"outer", "outer/inner"}
        assert paths["outer"]["count"] == 2
        assert paths["outer/inner"]["count"] == 1
        assert paths["outer"]["seconds"] >= paths["outer/inner"]["seconds"]

    def test_reentry_accumulates_into_one_node(self):
        registry = MetricsRegistry()
        for _ in range(5):
            with registry.span("step"):
                pass
        (path, node), = iter_span_nodes(registry.snapshot()["spans"])
        assert path == "step"
        assert node["count"] == 5


class TestNullRegistry:
    def test_default_registry_is_disabled(self):
        registry = obs.get_registry()
        assert isinstance(registry, NullRegistry)
        assert registry.enabled is False

    def test_span_is_a_shared_singleton(self):
        null = NullRegistry()
        assert null.span("a") is null.span("b")
        assert null.counter("a") is null.counter("b")

    def test_operations_record_nothing(self):
        null = NullRegistry()
        null.inc("jobs_total")
        null.set_gauge("g", 1.0)
        null.observe("h", 1.0)
        with null.span("a"):
            pass
        null.merge({"counters": {"jobs_total": 7.0}})
        snapshot = null.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == {}

    def test_use_registry_restores_previous(self):
        outer = obs.get_registry()
        inner = MetricsRegistry()
        with use_registry(inner) as active:
            assert obs.get_registry() is inner
            assert active is inner
        assert obs.get_registry() is outer

    def test_enable_returns_fresh_recording_registry(self):
        first = obs.enable()
        first.inc("jobs_total")
        second = obs.enable()
        assert second is obs.get_registry()
        assert second.snapshot()["counters"] == {}


def _sample_registry(scale=1.0):
    registry = MetricsRegistry()
    registry.inc("tasks_total", 2 * scale)
    registry.set_gauge("reward", 1.5 * scale)
    registry.observe("latency", 0.2)
    with registry.span("outer"):
        with registry.span("inner"):
            pass
    return registry


class TestSnapshotMerge:
    def test_merge_adds_counters_and_histograms(self):
        a = _sample_registry()
        b = _sample_registry()
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["counters"]["tasks_total"] == 4.0
        assert snapshot["histograms"]["latency"]["count"] == 2
        assert snapshot["histograms"]["latency"]["counts"][-1] == 2

    def test_merge_combines_gauge_statistics(self):
        a = MetricsRegistry()
        a.set_gauge("g", 1.0)
        b = MetricsRegistry()
        b.set_gauge("g", 5.0)
        b.set_gauge("g", -2.0)
        a.merge(b.snapshot())
        gauge = a.gauge("g")
        assert gauge.min == -2.0
        assert gauge.max == 5.0
        assert gauge.total == 4.0
        assert gauge.count == 3
        # `last` comes from the incoming snapshot (merge order decides).
        assert gauge.last == -2.0

    def test_merge_adds_span_subtrees(self):
        a = _sample_registry()
        a.merge(_sample_registry().snapshot())
        paths = dict(iter_span_nodes(a.snapshot()["spans"]))
        assert paths["outer"]["count"] == 2
        assert paths["outer/inner"]["count"] == 2

    def test_merge_is_associative_on_totals(self):
        parts = [_sample_registry(scale=s).snapshot() for s in (1, 2, 3)]
        left = MetricsRegistry()
        for part in parts:
            left.merge(part)
        right = MetricsRegistry()
        inner = MetricsRegistry()
        inner.merge(parts[1])
        inner.merge(parts[2])
        right.merge(parts[0])
        right.merge(inner.snapshot())
        assert (
            left.snapshot()["counters"] == right.snapshot()["counters"]
        )
        assert (
            left.snapshot()["histograms"]
            == right.snapshot()["histograms"]
        )

    def test_bucket_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", bounds=(5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


class TestFingerprint:
    def test_timing_metric_name_detection(self):
        assert is_timing_metric("task_seconds")
        assert is_timing_metric("task_seconds_total")
        assert is_timing_metric('task_seconds{kind="x"}')
        assert not is_timing_metric("tasks_total")
        assert not is_timing_metric("secondsight_total")

    def test_fingerprint_ignores_wall_clock(self):
        a = _sample_registry()
        b = _sample_registry()
        # Perturb everything wall-clock: span durations and _seconds
        # metrics differ between the two registries.
        b._span_root.children["outer"].seconds += 123.0
        a.observe("task_seconds", 0.1)
        b.observe("task_seconds", 99.0)
        assert snapshot_fingerprint(a.snapshot()) == snapshot_fingerprint(
            b.snapshot()
        )

    def test_fingerprint_sees_counts(self):
        a = _sample_registry()
        b = _sample_registry()
        b.inc("tasks_total")
        assert snapshot_fingerprint(a.snapshot()) != snapshot_fingerprint(
            b.snapshot()
        )


class TestExport:
    def test_write_and_load_round_trip(self, tmp_path):
        registry = _sample_registry()
        path = write_metrics(tmp_path, registry)
        assert path is not None and path.name == "metrics.json"
        loaded = load_metrics(tmp_path)
        assert loaded["counters"] == registry.snapshot()["counters"]
        # The stored fingerprint re-verifies against the stored data.
        assert loaded["fingerprint"] == snapshot_fingerprint(loaded)

    def test_write_metrics_noops_when_disabled(self, tmp_path):
        assert write_metrics(tmp_path, NullRegistry()) is None
        assert not (tmp_path / "metrics.json").exists()

    def test_load_metrics_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_metrics(tmp_path)
        (tmp_path / "metrics.json").write_text("{ torn")
        with pytest.raises(ArtifactError):
            load_metrics(tmp_path)

    def test_prometheus_rendering(self):
        registry = _sample_registry()
        registry.inc(labelled("tasks_total", status="ok"))
        text = to_prometheus(metrics_payload(registry))
        assert "# TYPE tasks_total counter" in text
        assert 'tasks_total{status="ok"} 1' in text
        assert "reward_sum 1.5" in text
        assert "reward_count 1" in text
        assert 'latency{le="+Inf"} 1' in text
        assert 'repro_span_seconds_total{span="outer/inner"}' in text
        assert 'repro_span_calls_total{span="outer"} 1' in text


class TestRunnerIntegration:
    def test_parallel_workers_merge_into_parent(self):
        registry = obs.enable()
        results = ExperimentRunner(workers=2).map(_observe, [1, 2, 3])
        assert [r.value for r in results] == [1, 4, 9]
        # Every worker snapshot rode the TaskResult channel back.
        assert all(r.metrics is not None for r in results)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["worker_events_total"] == 6.0
        assert snapshot["counters"]["runner_tasks_total"] == 3.0
        assert snapshot["counters"]['runner_tasks_total{status="ok"}'] == 3.0
        gauge = snapshot["gauges"]["worker_gauge"]
        assert gauge.items() >= {"count": 3, "min": 1.0, "max": 3.0}.items()
        paths = dict(iter_span_nodes(snapshot["spans"]))
        assert paths["work"]["count"] == 3
        assert "runner.map" in paths

    def test_serial_counters_match_parallel(self):
        serial = obs.enable()
        ExperimentRunner(workers=1).map(_observe, [1, 2, 3])
        serial_counters = serial.snapshot()["counters"]
        parallel = obs.enable()
        ExperimentRunner(workers=2).map(_observe, [1, 2, 3])
        parallel_counters = parallel.snapshot()["counters"]
        assert serial_counters == parallel_counters

    def test_disabled_runs_carry_no_envelopes(self):
        results = ExperimentRunner(workers=2).map(_observe, [1, 2])
        assert [r.value for r in results] == [1, 4]
        assert all(r.metrics is None for r in results)
        assert obs.get_registry().snapshot()["counters"] == {}

    def test_fault_fires_counted_by_kind(self, tmp_path):
        from repro.runner import FaultInjector

        registry = obs.enable()
        injector = FaultInjector.from_spec(
            "error@0:times=1", state_dir=tmp_path
        )
        results = ExperimentRunner(
            workers=2, max_retries=2, fault_injector=injector
        ).map(_observe, [1, 2])
        # The injected fault fired once, the retry recovered the task.
        assert [r.value for r in results] == [1, 4]
        counters = registry.snapshot()["counters"]
        assert counters['faults_fired_total{kind="error"}'] == 1.0
        assert counters["runner_retries_total"] == 1.0


@pytest.mark.slow
class TestEndToEndDeterminism:
    def test_identical_seeded_runs_fingerprint_equal(self, tmp_path):
        from repro.analysis import compare_planners

        dataset = load_toy(seed=0, with_gold=True)
        fingerprints = []
        for name in ("a", "b"):
            obs.enable()
            compare_planners(
                dataset, runs=2, episodes=5, workers=1,
                out_dir=tmp_path / name,
            )
            payload = load_metrics(tmp_path / name)
            fingerprints.append(payload["fingerprint"])
            obs.disable()
        assert fingerprints[0] == fingerprints[1]

    def test_cli_run_and_metrics_subcommand(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main([
            "run", "toy", "--protocol", "compare", "--runs", "2",
            "--episodes", "5", "--metrics", "--out", str(out),
        ]) == 0
        assert (out / "metrics.json").exists()
        assert "metrics  :" in capsys.readouterr().out

        assert main(["metrics", str(out)]) == 0
        text = capsys.readouterr().out
        assert text.startswith("# metrics fingerprint ")
        assert "sarsa_episodes_total" in text
        assert "env_steps_total" in text

        assert main(["metrics", str(out), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["runner_tasks_total"] == 2.0
