"""Tests for the trip domain: generators, themes, gold itinerary oracle."""

import pytest

from repro.core.env import DomainMode
from repro.core.scoring import PlanScorer, mean_popularity
from repro.core.validation import PlanValidator, plan_travel_distance_km
from repro.domains.trips import (
    NYC,
    NYC_THEMES,
    PARIS,
    PARIS_THEMES,
    build_trip_task,
    gold_trip_plan,
    load_city,
    theme_bank,
)


@pytest.fixture(scope="module")
def nyc():
    return load_city("nyc", seed=0)


@pytest.fixture(scope="module")
def paris():
    return load_city("paris", seed=0)


class TestPaperStatistics:
    def test_poi_counts(self, nyc, paris):
        assert len(nyc.catalog) == 90
        assert len(paris.catalog) == 114

    def test_theme_counts(self, nyc, paris):
        assert nyc.catalog.num_topics == 21
        assert paris.catalog.num_topics == 16
        assert len(NYC_THEMES) == 21
        assert len(PARIS_THEMES) == 16

    def test_itinerary_counts(self, nyc, paris):
        assert len(nyc.itineraries) == 2908
        assert len(paris.itineraries) == 5494

    def test_trip_hard_constraints(self, nyc):
        hard = nyc.task.hard
        assert hard.min_credits == 6.0  # the 6-hour budget
        assert hard.num_primary == 2 and hard.num_secondary == 3
        assert hard.theme_adjacency_gap
        assert hard.max_distance == 5.0


class TestPOIs:
    def test_metadata_complete(self, nyc):
        for poi in nyc.catalog:
            assert poi.meta("lat") is not None
            assert poi.meta("lon") is not None
            assert 1.0 <= float(poi.meta("popularity")) <= 5.0
            assert poi.credits > 0

    def test_primaries_are_most_popular(self, nyc):
        primaries = nyc.catalog.primaries()
        assert len(primaries) == NYC.num_primary_pois
        for poi in primaries:
            assert float(poi.meta("popularity")) >= 4.5

    def test_every_theme_appears(self, nyc):
        used = set()
        for poi in nyc.catalog:
            used |= poi.topics
        assert used == set(NYC_THEMES)

    def test_restaurant_antecedents_are_culture_pois(self, paris):
        found = 0
        for poi in paris.catalog:
            if poi.prerequisites.is_empty:
                continue
            found += 1
            for ref in poi.prerequisites.referenced_ids():
                culture = paris.catalog[ref]
                assert culture.topics & {"museum", "gallery"}
        assert found > 0


class TestItineraries:
    def test_itineraries_reference_catalog_pois(self, nyc):
        for itinerary in nyc.itineraries[:200]:
            for poi_id in itinerary:
                assert poi_id in nyc.catalog

    def test_itinerary_lengths_in_range(self, nyc):
        for itinerary in nyc.itineraries[:500]:
            assert 1 <= len(itinerary) <= 6

    def test_no_repeats_within_itinerary(self, nyc):
        for itinerary in nyc.itineraries[:500]:
            assert len(set(itinerary)) == len(itinerary)


class TestTaskBuilder:
    def test_overrides(self, nyc):
        task = build_trip_task(
            NYC, nyc.catalog, time_budget=8.0, distance_threshold=4.0
        )
        assert task.hard.min_credits == 8.0
        assert task.hard.max_distance == 4.0

    def test_unknown_city_rejected(self):
        from repro.core.exceptions import DatasetError

        with pytest.raises(DatasetError):
            load_city("atlantis")

    def test_theme_bank_lookup(self):
        assert theme_bank("NYC") == NYC_THEMES
        with pytest.raises(KeyError):
            theme_bank("atlantis")


class TestGoldItinerary:
    @pytest.mark.parametrize("city", ["nyc", "paris"])
    def test_gold_is_template_perfect_and_valid(self, city):
        dataset = load_city(city, seed=0)
        plan = gold_trip_plan(
            dataset.catalog, dataset.task,
            start_item_id=dataset.default_start,
        )
        scorer = PlanScorer(dataset.task, mode=DomainMode.TRIP)
        score = scorer.score(plan)
        assert score.value == 5.0  # template length = the gold score
        assert score.is_valid

    def test_gold_respects_time_and_distance(self, nyc):
        plan = gold_trip_plan(nyc.catalog, nyc.task)
        assert plan.total_credits <= nyc.task.hard.min_credits
        distance = plan_travel_distance_km(plan)
        assert distance is not None
        assert distance <= nyc.task.hard.max_distance

    def test_gold_prefers_popular_pois(self, nyc):
        plan = gold_trip_plan(nyc.catalog, nyc.task)
        assert mean_popularity(plan) >= 3.5

    def test_validator_agrees(self, paris):
        plan = gold_trip_plan(paris.catalog, paris.task)
        validator = PlanValidator(paris.task.hard, credits_are_budget=True)
        assert validator.is_valid(plan)
