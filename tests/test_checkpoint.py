"""Tests for checkpointed (resumable) training — repro.runner."""

import json

import numpy as np
import pytest

from repro.core.exceptions import PlanningError
from repro.core.planner import RLPlanner
from repro.core.sarsa import SarsaLearner
from repro.datasets import load_toy
from repro.runner import (
    CHECKPOINT_NAME,
    EPISODES_NAME,
    POLICY_NAME,
    RECOMMENDATION_NAME,
    TrainingCheckpoint,
    load_checkpoint,
    resume_training,
    run_training,
)


@pytest.fixture(scope="module")
def dataset():
    return load_toy(with_gold=False)


def _make_learner(dataset, seed=0):
    config = dataset.default_config.replace(seed=seed)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    return SarsaLearner(planner.env, config)


def _entries(qtable):
    return qtable.to_entries()


class TestChunkedLearningEquivalence:
    def test_two_halves_equal_one_full_run(self, dataset):
        """2 x N/2 chunks on one learner == one N-episode call."""
        start = dataset.default_start
        full = _make_learner(dataset).learn(
            start_item_ids=[start], episodes=60
        )

        chunked = _make_learner(dataset)
        first = chunked.learn(start_item_ids=[start], episodes=30)
        second = chunked.learn(
            start_item_ids=[start], episodes=30,
            qtable=first.qtable, start_episode=30,
        )
        assert _entries(full.qtable) == _entries(second.qtable)
        assert full.qtable.update_count == second.qtable.update_count

    def test_rng_state_json_round_trip(self, dataset):
        """Restoring a JSON-serialized RNG state continues bit-identically."""
        start = dataset.default_start
        reference = _make_learner(dataset)
        reference.learn(start_item_ids=[start], episodes=30)
        state = json.loads(json.dumps(reference.rng_state))

        restored = _make_learner(dataset, seed=999)  # wrong seed on purpose
        restored.rng_state = state
        a = reference.learn(start_item_ids=[start], episodes=20)
        b = restored.learn(start_item_ids=[start], episodes=20)
        assert _entries(a.qtable) == _entries(b.qtable)


class TestRunTraining:
    def test_uninterrupted_run_completes(self, dataset, tmp_path):
        outcome = run_training(
            dataset, tmp_path / "run", episodes=80, checkpoint_every=40
        )
        assert outcome.complete
        assert outcome.completed_episodes == 80
        assert outcome.plan_item_ids
        for name in (
            CHECKPOINT_NAME, EPISODES_NAME, POLICY_NAME,
            RECOMMENDATION_NAME, "manifest.json",
        ):
            assert (tmp_path / "run" / name).exists(), name

    def test_kill_and_resume_is_bit_identical(self, dataset, tmp_path):
        """Interrupted-and-resumed == uninterrupted, byte for byte."""
        straight = run_training(
            dataset, tmp_path / "straight", episodes=120,
            checkpoint_every=40,
        )
        partial = run_training(
            dataset, tmp_path / "resumed", episodes=120,
            checkpoint_every=40, limit_episodes=40,
        )
        assert not partial.complete
        assert partial.completed_episodes == 40
        resumed = resume_training(tmp_path / "resumed")
        assert resumed.complete
        assert resumed.completed_episodes == 120

        assert resumed.plan_item_ids == straight.plan_item_ids
        assert resumed.score == straight.score
        for name in (POLICY_NAME, RECOMMENDATION_NAME):
            assert (
                (tmp_path / "straight" / name).read_text()
                == (tmp_path / "resumed" / name).read_text()
            ), name

    def test_episode_stream_has_each_episode_once(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=90,
            checkpoint_every=30, limit_episodes=30,
        )
        resume_training(tmp_path / "run")
        rows = [
            json.loads(line)
            for line in (tmp_path / "run" / EPISODES_NAME)
            .read_text()
            .splitlines()
        ]
        assert sorted(r["episode"] for r in rows) == list(range(90))

    def test_torn_stream_tail_is_truncated_on_resume(
        self, dataset, tmp_path
    ):
        run_training(
            dataset, tmp_path / "run", episodes=60,
            checkpoint_every=30, limit_episodes=30,
        )
        stream = tmp_path / "run" / EPISODES_NAME
        with stream.open("a") as handle:
            # Rows past the checkpoint, as left by a crash mid-chunk.
            handle.write(json.dumps({"episode": 30, "length": 0}) + "\n")
            handle.write("{not json\n")
        resume_training(tmp_path / "run")
        rows = [
            json.loads(line) for line in stream.read_text().splitlines()
        ]
        assert sorted(r["episode"] for r in rows) == list(range(60))

    def test_fresh_dir_required(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=40, checkpoint_every=20
        )
        with pytest.raises(PlanningError):
            run_training(
                dataset, tmp_path / "run", episodes=40, checkpoint_every=20
            )

    def test_resume_without_checkpoint_rejected(self, dataset, tmp_path):
        with pytest.raises((PlanningError, OSError)):
            resume_training(tmp_path / "empty")

    def test_resume_refuses_config_drift(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=60,
            checkpoint_every=30, limit_episodes=30,
        )
        drifted = dataset.default_config.replace(learning_rate=0.123)
        with pytest.raises(PlanningError, match="different configuration"):
            resume_training(tmp_path / "run", config=drifted)

    def test_resume_completed_run_is_idempotent(self, dataset, tmp_path):
        run_training(
            dataset, tmp_path / "run", episodes=40, checkpoint_every=20
        )
        before = (tmp_path / "run" / POLICY_NAME).read_text()
        outcome = resume_training(tmp_path / "run")
        assert outcome.complete
        assert (tmp_path / "run" / POLICY_NAME).read_text() == before


class TestCheckpointFile:
    def test_round_trip_preserves_rng_and_qtable(self, dataset, tmp_path):
        learner = _make_learner(dataset)
        result = learner.learn(
            start_item_ids=[dataset.default_start], episodes=25
        )
        path = tmp_path / "checkpoint.json"
        TrainingCheckpoint(
            qtable=result.qtable,
            episode=25,
            rng_state=learner.rng_state,
            config_fingerprint="fp",
            target_episodes=100,
            start_item=dataset.default_start,
        ).save(path)

        loaded = TrainingCheckpoint.load(path, dataset.catalog)
        assert loaded.episode == 25
        assert loaded.target_episodes == 100
        assert loaded.rng_state == learner.rng_state
        assert _entries(loaded.qtable) == _entries(result.qtable)
        assert loaded.qtable.update_count == result.qtable.update_count

    def test_load_checkpoint_returns_none_without_file(
        self, dataset, tmp_path
    ):
        assert load_checkpoint(tmp_path, dataset.catalog) is None

    def test_checkpoint_values_survive_as_floats(self, dataset, tmp_path):
        learner = _make_learner(dataset)
        result = learner.learn(
            start_item_ids=[dataset.default_start], episodes=25
        )
        path = tmp_path / "checkpoint.json"
        TrainingCheckpoint(
            qtable=result.qtable,
            episode=25,
            rng_state=learner.rng_state,
            config_fingerprint="fp",
            target_episodes=100,
            start_item=dataset.default_start,
        ).save(path)
        loaded = TrainingCheckpoint.load(path, dataset.catalog)
        for (s, a), q in _entries(result.qtable).items():
            assert loaded.qtable.get(s, a) == q
            assert isinstance(loaded.qtable.get(s, a), float)
        assert np.isfinite(list(_entries(loaded.qtable).values())).all()
