"""Unit tests for the item data model (repro.core.items)."""

import pytest

from repro.core.exceptions import DataModelError
from repro.core.items import Item, ItemType, Prerequisites, make_metadata

from conftest import make_item


class TestPrerequisites:
    def test_none_is_empty(self):
        assert Prerequisites.none().is_empty

    def test_all_of_requires_every_member(self):
        pre = Prerequisites.all_of(["a", "b"])
        assert pre.satisfied_by({"a": 0, "b": 1}, 3, gap=1)
        assert not pre.satisfied_by({"a": 0}, 3, gap=1)

    def test_any_of_requires_one_member(self):
        pre = Prerequisites.any_of(["a", "b"])
        assert pre.satisfied_by({"b": 0}, 2, gap=1)
        assert not pre.satisfied_by({"c": 0}, 2, gap=1)

    def test_any_of_empty_is_none(self):
        assert Prerequisites.any_of([]).is_empty

    def test_gap_is_enforced(self):
        pre = Prerequisites.all_of(["a"])
        # a at position 0, item at position 2, gap 3 -> distance 2 < 3.
        assert not pre.satisfied_by({"a": 0}, 2, gap=3)
        assert pre.satisfied_by({"a": 0}, 3, gap=3)

    def test_cnf_mixes_and_and_or(self):
        pre = Prerequisites.from_cnf([{"a"}, {"b", "c"}])
        assert pre.satisfied_by({"a": 0, "c": 1}, 3, gap=1)
        assert not pre.satisfied_by({"b": 0, "c": 1}, 3, gap=1)

    def test_empty_group_rejected(self):
        with pytest.raises(DataModelError):
            Prerequisites.from_cnf([set()])

    def test_referenced_ids(self):
        pre = Prerequisites.from_cnf([{"a"}, {"b", "c"}])
        assert pre.referenced_ids() == frozenset({"a", "b", "c"})

    def test_describe(self):
        pre = Prerequisites.from_cnf([{"a"}, {"b", "c"}])
        text = pre.describe()
        assert "a" in text and "AND" in text and "OR" in text
        assert Prerequisites.none().describe() == "(none)"


class TestItem:
    def test_quadruple_fields(self):
        item = Item(
            item_id="CS 1",
            name="Intro",
            item_type=ItemType.PRIMARY,
            credits=3,
            topics=frozenset({"algorithms"}),
        )
        assert item.is_primary and not item.is_secondary
        assert item.credits == 3
        assert item.topics == frozenset({"algorithms"})

    def test_empty_id_rejected(self):
        with pytest.raises(DataModelError):
            make_item("")

    def test_nonpositive_credits_rejected(self):
        with pytest.raises(DataModelError):
            make_item("x", credits=0)
        with pytest.raises(DataModelError):
            make_item("x", credits=-1)

    def test_self_prerequisite_rejected(self):
        with pytest.raises(DataModelError):
            make_item("x", prereqs=Prerequisites.all_of(["x"]))

    def test_topic_vector_follows_vocabulary_order(self):
        item = make_item("x", topics={"b", "d"})
        assert item.topic_vector(["a", "b", "c", "d"]) == (0, 1, 0, 1)

    def test_with_type_flips_role_only(self):
        item = make_item("x", item_type=ItemType.PRIMARY, topics={"t"})
        flipped = item.with_type(ItemType.SECONDARY)
        assert flipped.is_secondary
        assert flipped.item_id == item.item_id
        assert flipped.topics == item.topics

    def test_metadata_lookup(self):
        item = Item(
            item_id="poi",
            name="POI",
            item_type=ItemType.SECONDARY,
            credits=1.0,
            metadata=make_metadata(lat=1.5, popularity=4.2),
        )
        assert item.meta("lat") == 1.5
        assert item.meta("missing") is None
        assert item.meta("missing", "dflt") == "dflt"

    def test_items_are_hashable(self):
        a, b = make_item("a"), make_item("b")
        assert len({a, b, a}) == 2
