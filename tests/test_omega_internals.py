"""White-box tests for the adapted OMEGA baseline internals."""

import pytest

from repro.baselines import OmegaPlanner
from repro.baselines.omega import cofrequency_matrix, topic_utility_matrix
from repro.core.catalog import Catalog
from repro.core.items import ItemType, Prerequisites

from conftest import make_item, make_task


@pytest.fixture
def dag_catalog():
    """A prerequisite DAG: a -> b -> d, a -> c, e free."""
    return Catalog(
        [
            make_item("a", ItemType.PRIMARY, topics={"t1"}),
            make_item(
                "b", ItemType.SECONDARY, topics={"t2"},
                prereqs=Prerequisites.all_of(["a"]),
            ),
            make_item(
                "c", ItemType.SECONDARY, topics={"t3"},
                prereqs=Prerequisites.all_of(["a"]),
            ),
            make_item(
                "d", ItemType.PRIMARY, topics={"t4"},
                prereqs=Prerequisites.all_of(["b"]),
            ),
            make_item("e", ItemType.SECONDARY, topics={"t5"}),
        ]
    )


class TestPrerequisitePrefix:
    def test_topological_order_respected(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        prefix = omega._prerequisite_prefix(dag_catalog["a"], 5)
        positions = {
            item.item_id: i for i, item in enumerate(prefix)
        }
        # Every emitted dependent comes after its antecedents.
        for item in prefix:
            for ref in item.prerequisites.referenced_ids():
                if ref in positions:
                    assert positions[ref] < positions[item.item_id]

    def test_prefix_prefers_unlocking_items(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        prefix = omega._prerequisite_prefix(dag_catalog["a"], 3)
        # 'a' unlocks b and c; 'b' unlocks d; both should precede
        # leaf/free items in a greedy unlock-count ordering.
        ids = [item.item_id for item in prefix]
        assert ids[0] == "a"
        assert "b" in ids

    def test_prefix_stops_at_budget(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        prefix = omega._prerequisite_prefix(dag_catalog["a"], 2)
        assert len(prefix) == 2


class TestOmegaSequence:
    def test_no_duplicates_across_steps(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        plan = omega.recommend("a")
        assert len(set(plan.item_ids)) == len(plan)

    def test_excluded_items_respected(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        sequence = omega._omega_sequence({"a", "b"}, 3)
        ids = {item.item_id for item in sequence}
        assert not ids & {"a", "b"}
        assert len(sequence) == 3

    def test_zero_length_request(self, dag_catalog):
        omega = OmegaPlanner(dag_catalog, make_task(), seed=0)
        assert omega._omega_sequence(set(), 0) == []


class TestUtilityMatrices:
    def test_topic_matrix_symmetric_in_union_size(self, dag_catalog):
        matrix = topic_utility_matrix(dag_catalog)
        i = dag_catalog.index_of("a")
        j = dag_catalog.index_of("b")
        assert matrix[i, j] == matrix[j, i] == 2.0

    def test_cofrequency_asymmetric(self, dag_catalog):
        matrix = cofrequency_matrix(dag_catalog, [["a", "b", "a"]])
        i = dag_catalog.index_of("a")
        j = dag_catalog.index_of("b")
        # a-before-b once; b-before-a once (second visit of a).
        assert matrix[i, j] == 1.0
        assert matrix[j, i] == 1.0

    def test_empty_histories_zero_matrix(self, dag_catalog):
        matrix = cofrequency_matrix(dag_catalog, [])
        assert not matrix.any()
