"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the heavier ones — transfer, group —
exercise the exact same code paths through dedicated integration tests
and benches).
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "script,needle",
    [
        ("quickstart.py", "Recommended plan:"),
        ("custom_domain.py", "Weekly program:"),
    ],
)
def test_fast_examples_run(script, needle):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout


def test_every_example_is_syntactically_valid():
    """All example scripts at least compile (cheap full-coverage check)."""
    import py_compile

    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
