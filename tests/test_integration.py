"""Integration tests: full train -> recommend -> validate pipelines.

These exercise the whole stack (generators -> catalog -> environment ->
SARSA -> recommendation -> validation -> scoring) on every dataset with
reduced episode counts so the suite stays quick.
"""

import pytest

from repro import RLPlanner
from repro.baselines import EDAPlanner, OmegaPlanner
from repro.core.validation import PlanValidator
from repro.datasets import load

pytestmark = pytest.mark.slow


@pytest.mark.parametrize(
    "key,episodes",
    [
        ("toy", 100),
        ("njit_dsct", 200),
        ("njit_cyber", 200),
        ("njit_cs", 200),
        ("univ2_ds", 100),
        ("nyc", 200),
        ("paris", 200),
    ],
)
class TestEndToEnd:
    def test_rl_planner_produces_valid_plan(self, key, episodes):
        dataset = load(key, seed=0, with_gold=False)
        planner = RLPlanner(
            dataset.catalog,
            dataset.task,
            dataset.default_config,
            mode=dataset.mode,
        )
        planner.fit(
            start_item_ids=[dataset.default_start], episodes=episodes
        )
        plan, score = planner.recommend_scored(dataset.default_start)
        assert score.is_valid, score.report.describe()
        assert score.value > 0
        # Independent referee: the validator agrees with the scorer.
        validator = PlanValidator(
            dataset.task.hard,
            credits_are_budget=(dataset.mode.value == "trip"),
        )
        assert validator.is_valid(plan)


class TestHeadlineShape:
    """The Figure-1 ordering: RL-Planner >= EDA >= OMEGA, RL near gold."""

    @pytest.mark.parametrize("key", ["njit_dsct", "nyc"])
    def test_rl_beats_omega_and_tracks_gold(self, key):
        dataset = load(key, seed=0)
        config = dataset.default_config
        planner = RLPlanner(
            dataset.catalog, dataset.task, config, mode=dataset.mode
        )
        planner.fit(
            start_item_ids=[dataset.default_start], episodes=300
        )
        _, rl = planner.recommend_scored(dataset.default_start)

        omega = OmegaPlanner(
            dataset.catalog,
            dataset.task,
            mode=dataset.mode,
            histories=dataset.itineraries or None,
            seed=0,
        )
        omega_score = planner.score(
            omega.recommend(dataset.default_start)
        )
        gold_score = planner.score(dataset.gold_plan)

        assert rl.value >= omega_score.value
        assert rl.value >= 0.5 * gold_score.value
        assert gold_score.value == planner.scorer.gold_reference_score()

    def test_rl_at_least_matches_eda_on_courses(self):
        dataset = load("njit_dsct", seed=0, with_gold=False)
        config = dataset.default_config
        planner = RLPlanner(
            dataset.catalog, dataset.task, config, mode=dataset.mode
        )
        planner.fit(
            start_item_ids=[dataset.default_start], episodes=300
        )
        _, rl = planner.recommend_scored(dataset.default_start)
        eda = EDAPlanner(
            dataset.catalog, dataset.task, config, mode=dataset.mode,
            seed=0,
        )
        eda_score = planner.score(eda.recommend(dataset.default_start))
        assert rl.value >= eda_score.value


class TestTransferIntegration:
    def test_dsct_to_cs_transfer_produces_plan(self):
        source = load("njit_dsct", seed=0, with_gold=False)
        target = load("njit_cs", seed=0, with_gold=False)
        planner = RLPlanner(
            source.catalog,
            source.task,
            source.default_config,
            mode=source.mode,
        )
        planner.fit(
            start_item_ids=[source.default_start], episodes=200
        )
        transferred, result = planner.transfer_to(
            target.catalog, target.task,
            config=target.default_config,
        )
        assert result.report.entries_transferred > 0
        plan = transferred.recommend(target.default_start)
        assert len(plan) == target.task.hard.plan_length

    def test_nyc_to_paris_theme_transfer(self):
        source = load("nyc", seed=0, with_gold=False)
        target = load("paris", seed=0, with_gold=False)
        planner = RLPlanner(
            source.catalog,
            source.task,
            source.default_config,
            mode=source.mode,
        )
        planner.fit(
            start_item_ids=[source.default_start], episodes=200
        )
        transferred, result = planner.transfer_to(
            target.catalog, target.task, strategy="theme",
            config=target.default_config,
        )
        assert result.report.entries_transferred > 0
        plan = transferred.recommend(target.default_start)
        assert len(plan) > 0
