"""Unit tests for the CMDP environment (repro.core.env)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.env import DomainMode, TPPEnvironment
from repro.core.exceptions import PlanningError
from repro.core.items import ItemType

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
        ]
    )


@pytest.fixture
def env(catalog):
    return TPPEnvironment(
        catalog,
        make_task(),
        PlannerConfig(coverage_threshold=1.0, exploration=0.0),
    )


class TestEpisodeLifecycle:
    def test_reset_starts_episode(self, env):
        item = env.reset("p1")
        assert item.item_id == "p1"
        assert len(env.builder) == 1

    def test_builder_before_reset_raises(self, catalog):
        env = TPPEnvironment(catalog, make_task(), PlannerConfig())
        with pytest.raises(PlanningError):
            env.builder

    def test_step_returns_reward_and_done(self, env):
        env.reset("p1")
        reward, done = env.step(env.catalog["s1"])
        assert reward > 0
        assert not done

    def test_episode_ends_at_horizon(self, env):
        env.reset("p1")
        env.step(env.catalog["s1"])
        env.step(env.catalog["p2"])
        _, done = env.step(env.catalog["s2"])
        assert done
        assert len(env.current_plan()) == env.horizon == 4

    def test_repeat_item_rejected(self, env):
        env.reset("p1")
        with pytest.raises(PlanningError):
            env.step(env.catalog["p1"])

    def test_valid_actions_exclude_visited(self, env):
        env.reset("p1")
        ids = {item.item_id for item in env.valid_actions()}
        assert "p1" not in ids


class TestTripBudget:
    def _trip_env(self, budget):
        catalog = Catalog(
            [
                make_item("a", ItemType.PRIMARY, credits=2.0,
                          topics={"t1"}),
                make_item("b", ItemType.SECONDARY, credits=2.0,
                          topics={"t2"}),
                make_item("c", ItemType.SECONDARY, credits=3.0,
                          topics={"t3"}),
            ]
        )
        task = TaskSpec(
            hard=HardConstraints.for_trips(
                budget, 1, 2, theme_adjacency_gap=False
            ),
            soft=SoftConstraints(
                ideal_topics=frozenset({"t1", "t2", "t3"}),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "S"]]
                ),
            ),
        )
        return TPPEnvironment(
            catalog,
            task,
            PlannerConfig(coverage_threshold=1.0),
            mode=DomainMode.TRIP,
        )

    def test_actions_respect_remaining_budget(self):
        env = self._trip_env(budget=4.5)
        env.reset("a")  # 2.0 used, 2.5 left
        ids = {item.item_id for item in env.valid_actions()}
        assert ids == {"b"}  # c (3.0) no longer fits

    def test_episode_ends_when_budget_exhausted(self):
        env = self._trip_env(budget=4.5)
        env.reset("a")
        _, done = env.step(env.catalog["b"])  # 4.0 used, nothing fits
        assert done

    def test_larger_budget_allows_full_template(self):
        env = self._trip_env(budget=10.0)
        env.reset("a")
        _, done = env.step(env.catalog["b"])
        assert not done
        _, done = env.step(env.catalog["c"])
        assert done


class TestMasking:
    def test_masking_hides_gate_failures(self, catalog):
        # An item covering no new ideal topic is masked when others pass.
        catalog2 = Catalog(
            list(catalog.items) + [
                make_item("dead", ItemType.SECONDARY, topics={"zzz"})
            ]
        )
        env = TPPEnvironment(
            catalog2,
            make_task(),
            PlannerConfig(coverage_threshold=1.0, exploration=0.0),
        )
        env.reset("p1")
        ids = {item.item_id for item in env.valid_actions()}
        assert "dead" not in ids

    def test_masking_can_be_disabled(self, catalog):
        catalog2 = Catalog(
            list(catalog.items) + [
                make_item("dead", ItemType.SECONDARY, topics={"zzz"})
            ]
        )
        env = TPPEnvironment(
            catalog2,
            make_task(),
            PlannerConfig(
                coverage_threshold=1.0, mask_invalid_actions=False
            ),
        )
        env.reset("p1")
        ids = {item.item_id for item in env.valid_actions()}
        assert "dead" in ids


class TestRewardInjection:
    def test_custom_reward_is_used(self, catalog):
        """TPPEnvironment accepts an injected reward object (the hook
        the feedback adapter uses)."""
        from repro.core.reward import RewardFunction

        config = PlannerConfig(coverage_threshold=1.0)
        task = make_task()

        class DoubleReward(RewardFunction):
            def __call__(self, builder, item):
                return 2.0 * super().__call__(builder, item)

        custom = DoubleReward(task, config)
        env = TPPEnvironment(catalog, task, config, reward=custom)
        base_env = TPPEnvironment(catalog, task, config)
        env.reset("p1")
        base_env.reset("p1")
        item = catalog["s1"]
        custom_r, _ = env.step(item)
        base_r, _ = base_env.step(item)
        assert custom_r == pytest.approx(2.0 * base_r)


class TestTripBudgetTolerance:
    """valid_actions and is_done share one affordability rule."""

    def _trip_env(self, extra_cost):
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, credits=3.0,
                          topics={"t1"}),
                make_item("s1", ItemType.SECONDARY,
                          credits=3.0 + extra_cost, topics={"t2"}),
            ]
        )
        task = make_task(
            num_primary=1, num_secondary=1, min_credits=6.0,
            template_labels=[["P", "S"]],
        )
        env = TPPEnvironment(
            catalog,
            task,
            PlannerConfig(
                coverage_threshold=1.0, exploration=0.0,
                mask_invalid_actions=False,
            ),
            mode=DomainMode.TRIP,
        )
        env.reset("p1")
        return env

    def test_float_noise_within_tolerance_is_affordable(self):
        env = self._trip_env(extra_cost=5e-10)
        assert [i.item_id for i in env.valid_actions()] == ["s1"]
        assert not env.is_done()

    def test_over_tolerance_is_unaffordable_and_done(self):
        env = self._trip_env(extra_cost=1e-6)
        assert env.valid_actions() == ()
        assert env.is_done()

    def test_exact_budget_fit_is_affordable(self):
        env = self._trip_env(extra_cost=0.0)
        assert [i.item_id for i in env.valid_actions()] == ["s1"]

    def test_the_two_checks_never_disagree(self):
        # is_done must be True exactly when no affordable item remains
        # (before the horizon is reached).
        for extra in (0.0, 5e-10, 1e-9, 2e-9, 1e-6, 1.0):
            env = self._trip_env(extra)
            assert (env.valid_actions() == ()) == env.is_done(), extra
