"""Tests for group planning (repro.group)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.exceptions import ConstraintError
from repro.core.items import ItemType
from repro.core.plan import plan_from_ids
from repro.group import (
    AggregationStrategy,
    GroupMember,
    GroupPlanner,
    aggregate_ideal_topics,
    group_satisfaction,
    group_task,
    member_satisfaction,
)

from conftest import make_item, make_task


@pytest.fixture
def members():
    return [
        GroupMember("ana", frozenset({"t1", "t2"})),
        GroupMember("bo", frozenset({"t2", "t3"})),
        GroupMember("cy", frozenset({"t2", "t4"}), weight=2.0),
    ]


class TestGroupMember:
    def test_validation(self):
        with pytest.raises(ConstraintError):
            GroupMember("", frozenset({"t"}))
        with pytest.raises(ConstraintError):
            GroupMember("x", frozenset())
        with pytest.raises(ConstraintError):
            GroupMember("x", frozenset({"t"}), weight=0)


class TestAggregation:
    def test_union(self, members):
        assert aggregate_ideal_topics(
            members, AggregationStrategy.UNION
        ) == frozenset({"t1", "t2", "t3", "t4"})

    def test_intersection(self, members):
        assert aggregate_ideal_topics(
            members, AggregationStrategy.INTERSECTION
        ) == frozenset({"t2"})

    def test_empty_intersection_falls_back_to_union(self):
        disjoint = [
            GroupMember("a", frozenset({"x"})),
            GroupMember("b", frozenset({"y"})),
        ]
        assert aggregate_ideal_topics(
            disjoint, AggregationStrategy.INTERSECTION
        ) == frozenset({"x", "y"})

    def test_majority_uses_weights(self, members):
        # total weight 4; threshold 2: t2 (weight 4) and t4 (weight 2).
        assert aggregate_ideal_topics(
            members, AggregationStrategy.MAJORITY
        ) == frozenset({"t2", "t4"})

    def test_weighted_custom_threshold(self, members):
        out = aggregate_ideal_topics(
            members, AggregationStrategy.WEIGHTED, weight_threshold=1.0
        )
        assert out == frozenset({"t1", "t2", "t3", "t4"})

    def test_empty_group_rejected(self):
        with pytest.raises(ConstraintError):
            aggregate_ideal_topics([], AggregationStrategy.UNION)

    def test_group_task_keeps_hard_constraints(self, members):
        base = make_task()
        task = group_task(base, members)
        assert task.hard is base.hard
        assert task.soft.template is base.soft.template
        assert task.soft.ideal_topics == frozenset(
            {"t1", "t2", "t3", "t4"}
        )


class TestSatisfaction:
    @pytest.fixture
    def catalog(self):
        return Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("p2", ItemType.PRIMARY, topics={"t2"}),
                make_item("s1", ItemType.SECONDARY, topics={"t3"}),
                make_item("s2", ItemType.SECONDARY, topics={"t4"}),
            ]
        )

    def test_member_satisfaction_is_coverage(self, catalog, members):
        plan = plan_from_ids(catalog, ["p1", "p2"])  # covers t1, t2
        assert member_satisfaction(plan, members[0]) == 1.0  # t1+t2
        assert member_satisfaction(plan, members[1]) == 0.5  # t2 only

    def test_group_profile(self, catalog, members):
        plan = plan_from_ids(catalog, ["p1", "p2", "s1", "s2"])
        profile = group_satisfaction(plan, members)
        assert profile.mean == 1.0
        assert profile.minimum == 1.0
        assert profile.disagreement == 0.0
        assert profile.of("ana") == 1.0
        with pytest.raises(KeyError):
            profile.of("nobody")

    def test_disagreement(self, catalog, members):
        plan = plan_from_ids(catalog, ["p1"])  # only t1
        profile = group_satisfaction(plan, members)
        assert profile.of("ana") == 0.5
        assert profile.of("bo") == 0.0
        assert profile.disagreement == 0.5


class TestGroupPlanner:
    def test_strategies_produce_valid_plans(self, members):
        catalog = Catalog(
            [
                make_item("p1", ItemType.PRIMARY, topics={"t1"}),
                make_item("p2", ItemType.PRIMARY, topics={"t2"}),
                make_item("s1", ItemType.SECONDARY, topics={"t3"}),
                make_item("s2", ItemType.SECONDARY, topics={"t4"}),
                make_item("s3", ItemType.SECONDARY, topics={"t5"}),
            ]
        )
        base = make_task(ideal_topics=("t1", "t2", "t3", "t4", "t5"))
        planner = GroupPlanner(
            catalog,
            base,
            members,
            config=PlannerConfig(
                episodes=40, coverage_threshold=1.0, seed=0
            ),
        )
        outcomes = planner.compare_strategies("p1", episodes=40)
        assert set(outcomes) == set(AggregationStrategy)
        for outcome in outcomes.values():
            assert outcome.score.is_valid
            assert 0.0 <= outcome.satisfaction.mean <= 1.0
        fair = planner.best_for_fairness(outcomes)
        assert fair.satisfaction.minimum == max(
            o.satisfaction.minimum for o in outcomes.values()
        )
