"""Tests for the alternative learners (repro.core.learners)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.env import TPPEnvironment
from repro.core.items import ItemType
from repro.core.learners import (
    ExpectedSarsaLearner,
    LEARNERS,
    MonteCarloLearner,
    QLearningLearner,
    make_learner,
)
from repro.core.planner import RLPlanner
from repro.core.sarsa import SarsaLearner

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
            make_item("s3", ItemType.SECONDARY, topics={"t1", "t4"}),
        ]
    )


@pytest.fixture
def env_config(catalog):
    config = PlannerConfig(
        episodes=25, coverage_threshold=1.0, exploration=0.15, seed=0
    )
    env = TPPEnvironment(catalog, make_task(), config)
    return env, config


ALL_LEARNER_CLASSES = [
    SarsaLearner,
    QLearningLearner,
    ExpectedSarsaLearner,
    MonteCarloLearner,
]


class TestRegistry:
    def test_four_learners_registered(self):
        assert set(LEARNERS) == {
            "sarsa", "q_learning", "expected_sarsa", "monte_carlo",
        }

    def test_make_learner(self, env_config):
        env, config = env_config
        learner = make_learner("q_learning", env, config)
        assert isinstance(learner, QLearningLearner)

    def test_unknown_name_rejected(self, env_config):
        env, config = env_config
        with pytest.raises(ValueError):
            make_learner("dqn", env, config)


class TestAllLearnersShareContract:
    @pytest.mark.parametrize("cls", ALL_LEARNER_CLASSES)
    def test_learn_produces_updated_table(self, cls, env_config):
        env, config = env_config
        result = cls(env, config).learn()
        assert result.episodes == 25
        assert result.qtable.update_count > 0
        assert result.mean_episode_reward > 0

    @pytest.mark.parametrize("cls", ALL_LEARNER_CLASSES)
    def test_seed_determinism(self, cls, catalog):
        def run():
            config = PlannerConfig(
                episodes=15, coverage_threshold=1.0, exploration=0.15,
                seed=9,
            )
            env = TPPEnvironment(catalog, make_task(), config)
            return cls(env, config).learn().qtable.values

        assert (run() == run()).all()

    @pytest.mark.parametrize("cls", ALL_LEARNER_CLASSES)
    def test_episode_lengths_bounded(self, cls, env_config):
        env, config = env_config
        result = cls(env, config).learn()
        horizon = env.horizon
        assert all(s.length <= horizon for s in result.stats)


class TestPlannerIntegration:
    @pytest.mark.parametrize(
        "name", ["sarsa", "q_learning", "expected_sarsa", "monte_carlo"]
    )
    def test_planner_accepts_learner_name(self, name, catalog):
        config = PlannerConfig(
            episodes=40, coverage_threshold=1.0, exploration=0.15, seed=0
        )
        planner = RLPlanner(catalog, make_task(), config, learner=name)
        planner.fit(start_item_ids=["p1"])
        plan, score = planner.recommend_scored("p1")
        assert len(plan) == 4
        assert score.is_valid

    def test_unknown_learner_raises_at_fit(self, catalog):
        planner = RLPlanner(
            catalog, make_task(), PlannerConfig(episodes=5),
            learner="nope",
        )
        with pytest.raises(ValueError):
            planner.fit()


class TestTargetsDiffer:
    def test_q_learning_diverges_from_sarsa(self, catalog):
        """Off-policy max targets produce a different table than
        on-policy SARSA under exploration."""
        def table_for(cls):
            config = PlannerConfig(
                episodes=40, coverage_threshold=1.0, exploration=0.3,
                seed=2,
            )
            env = TPPEnvironment(catalog, make_task(), config)
            return cls(env, config).learn().qtable.values

        assert (table_for(SarsaLearner) != table_for(QLearningLearner)).any()

    def test_monte_carlo_uses_full_returns(self, catalog):
        config = PlannerConfig(
            episodes=1, coverage_threshold=1.0, exploration=0.0, seed=0,
            learning_rate=1.0,
        )
        env = TPPEnvironment(catalog, make_task(), config)
        result = MonteCarloLearner(env, config).learn(
            start_item_ids=["p1"]
        )
        # With alpha=1 and one episode, the first transition's Q equals
        # the full discounted return of the episode from that step —
        # which is at least the final-step reward alone.
        values = result.qtable.values
        assert values.max() > 0


class TestTripModeLearners:
    @pytest.mark.parametrize(
        "name", ["sarsa", "q_learning", "expected_sarsa", "monte_carlo"]
    )
    def test_learners_handle_budget_termination(self, name):
        """All learners cope with trip-mode early episode termination."""
        from repro.core.constraints import (
            HardConstraints,
            InterleavingTemplate,
            SoftConstraints,
            TaskSpec,
        )
        from repro.core.env import DomainMode

        items = [
            make_item("a", ItemType.PRIMARY, credits=2.0,
                      topics={"t1"}),
            make_item("b", ItemType.SECONDARY, credits=2.0,
                      topics={"t2"}),
            make_item("c", ItemType.SECONDARY, credits=2.0,
                      topics={"t3"}),
            make_item("d", ItemType.SECONDARY, credits=3.0,
                      topics={"t4"}),
        ]
        from repro.core.catalog import Catalog as _Catalog

        catalog = _Catalog(items)
        task = TaskSpec(
            hard=HardConstraints.for_trips(
                5.0, 1, 2, theme_adjacency_gap=False
            ),
            soft=SoftConstraints(
                ideal_topics=frozenset({"t1", "t2", "t3", "t4"}),
                template=InterleavingTemplate.from_labels(
                    [["P", "S", "S"]]
                ),
            ),
        )
        config = PlannerConfig(
            episodes=15, coverage_threshold=1.0, exploration=0.2, seed=0
        )
        env = TPPEnvironment(
            catalog, task, config, mode=DomainMode.TRIP
        )
        result = make_learner(name, env, config).learn(
            start_item_ids=["a"]
        )
        assert result.qtable.update_count > 0
        # Budget 5.0 with 2h items: at most 2 steps after the start.
        assert all(s.length <= 3 for s in result.stats)
