"""Tests for the fluent task builder (repro.core.builder)."""

import pytest

from repro.core.builder import TaskBuilder
from repro.core.exceptions import ConstraintError
from repro.core.items import ItemType


class TestCourseTasks:
    def test_paper_running_example(self):
        task = (
            TaskBuilder("M.S. DS-CT")
            .credits(30)
            .primaries(5)
            .secondaries(5)
            .gap(3)
            .ideal_topics(["clustering", "classification"])
            .template(["P", "P", "S", "P", "S", "S", "P", "S", "P", "S"])
            .build()
        )
        assert task.name == "M.S. DS-CT"
        assert task.hard.min_credits == 30
        assert task.hard.plan_length == 10
        assert task.hard.gap == 3
        assert not task.hard.theme_adjacency_gap

    def test_default_template_alternates(self):
        task = (
            TaskBuilder()
            .credits(12)
            .primaries(2)
            .secondaries(2)
            .ideal_topics(["t"])
            .build()
        )
        assert task.soft.template.permutations[0] == (
            ItemType.PRIMARY, ItemType.SECONDARY,
            ItemType.PRIMARY, ItemType.SECONDARY,
        )

    def test_category_minima(self):
        task = (
            TaskBuilder()
            .credits(12)
            .primaries(2)
            .secondaries(2)
            .category_minimum("math", 6)
            .ideal_topics(["t"])
            .build()
        )
        assert task.hard.category_credit_map == {"math": 6.0}

    def test_multiple_templates(self):
        task = (
            TaskBuilder()
            .credits(12)
            .primaries(2)
            .secondaries(2)
            .ideal_topics(["t"])
            .templates([["P", "S", "P", "S"], ["P", "P", "S", "S"]])
            .build()
        )
        assert len(task.soft.template) == 2


class TestTripTasks:
    def test_trip_semantics(self):
        task = (
            TaskBuilder("Paris day")
            .time_budget(6)
            .primaries(2)
            .secondaries(3)
            .max_distance(5)
            .no_adjacent_same_theme()
            .ideal_topics(["museum"])
            .build()
        )
        assert task.hard.min_credits == 6
        assert task.hard.max_distance == 5
        assert task.hard.theme_adjacency_gap


class TestValidation:
    def test_missing_fields_reported(self):
        with pytest.raises(ConstraintError) as excinfo:
            TaskBuilder().credits(10).build()
        message = str(excinfo.value)
        assert "primaries" in message and "ideal_topics" in message

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b.credits(0),
            lambda b: b.primaries(-1),
            lambda b: b.secondaries(-1),
            lambda b: b.gap(-1),
            lambda b: b.category_minimum("x", 0),
            lambda b: b.max_distance(0),
        ],
    )
    def test_eager_setter_validation(self, mutate):
        with pytest.raises(ConstraintError):
            mutate(TaskBuilder())

    def test_template_split_mismatch_caught_at_build(self):
        builder = (
            TaskBuilder()
            .credits(12)
            .primaries(2)
            .secondaries(2)
            .ideal_topics(["t"])
            .template(["P", "S", "S", "S"])  # only 1 primary slot
        )
        with pytest.raises(ConstraintError):
            builder.build()

    def test_builder_chains_return_self(self):
        builder = TaskBuilder()
        assert builder.credits(10) is builder
        assert builder.primaries(1) is builder
