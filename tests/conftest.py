"""Shared fixtures for the test suite.

Expensive artifacts (generated datasets, trained planners) are session-
scoped so the suite stays fast; tests that need mutation make copies.
"""

from __future__ import annotations

import pytest

from repro import RLPlanner
from repro.core.catalog import Catalog
from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.items import Item, ItemType, Prerequisites
from repro.datasets import (
    load_nyc,
    load_paris,
    load_toy,
    load_univ1_cs,
    load_univ1_dsct,
    load_univ2_ds,
    toy_course_catalog,
    toy_course_task,
)


@pytest.fixture(scope="session")
def toy_catalog() -> Catalog:
    """The paper's Table II six-course catalog."""
    return toy_course_catalog()


@pytest.fixture(scope="session")
def toy_task() -> TaskSpec:
    """Example 1's TPP instance over the toy catalog."""
    return toy_course_task()


@pytest.fixture(scope="session")
def toy_dataset():
    """Full toy dataset bundle."""
    return load_toy(seed=0, with_gold=True)


@pytest.fixture(scope="session")
def dsct_dataset():
    """Univ-1 M.S. DS-CT dataset (gold included)."""
    return load_univ1_dsct(seed=0)


@pytest.fixture(scope="session")
def cs_dataset():
    """Univ-1 M.S. CS dataset (gold included)."""
    return load_univ1_cs(seed=0)


@pytest.fixture(scope="session")
def univ2_dataset():
    """Univ-2 M.S. DS dataset (gold included)."""
    return load_univ2_ds(seed=0)


@pytest.fixture(scope="session")
def nyc_dataset():
    """NYC trip dataset (gold included)."""
    return load_nyc(seed=0)


@pytest.fixture(scope="session")
def paris_dataset():
    """Paris trip dataset (gold included)."""
    return load_paris(seed=0)


@pytest.fixture(scope="session")
def fitted_toy_planner(toy_dataset) -> RLPlanner:
    """A trained planner on the toy dataset."""
    planner = RLPlanner(
        toy_dataset.catalog,
        toy_dataset.task,
        toy_dataset.default_config,
        mode=toy_dataset.mode,
    )
    planner.fit(start_item_ids=[toy_dataset.default_start])
    return planner


@pytest.fixture(scope="session")
def fitted_dsct_planner(dsct_dataset) -> RLPlanner:
    """A trained planner on Univ-1 DS-CT (200 episodes for speed)."""
    planner = RLPlanner(
        dsct_dataset.catalog,
        dsct_dataset.task,
        dsct_dataset.default_config,
        mode=dsct_dataset.mode,
    )
    planner.fit(
        start_item_ids=[dsct_dataset.default_start], episodes=200
    )
    return planner


def make_item(
    item_id: str,
    item_type: ItemType = ItemType.PRIMARY,
    credits: float = 3.0,
    topics=(),
    prereqs: Prerequisites = None,
    category=None,
) -> Item:
    """Terse item factory used across unit tests."""
    return Item(
        item_id=item_id,
        name=item_id,
        item_type=item_type,
        credits=credits,
        prerequisites=prereqs if prereqs is not None else Prerequisites.none(),
        topics=frozenset(topics),
        category=category,
    )


def make_task(
    num_primary: int = 2,
    num_secondary: int = 2,
    min_credits: float = 12.0,
    gap: int = 1,
    ideal_topics=("t1", "t2", "t3", "t4"),
    template_labels=None,
) -> TaskSpec:
    """Terse task factory used across unit tests."""
    if template_labels is None:
        template_labels = [["P", "S", "P", "S"], ["P", "P", "S", "S"]]
    return TaskSpec(
        hard=HardConstraints.for_courses(
            min_credits=min_credits,
            num_primary=num_primary,
            num_secondary=num_secondary,
            gap=gap,
        ),
        soft=SoftConstraints(
            ideal_topics=frozenset(ideal_topics),
            template=InterleavingTemplate.from_labels(template_labels),
        ),
        name="unit-test task",
    )
