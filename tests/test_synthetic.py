"""Tests for the parametric synthetic instance generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DatasetError
from repro.datasets import SyntheticSpec, generate_instance


class TestGeneration:
    def test_default_instance(self):
        catalog, task = generate_instance()
        assert len(catalog) == 40
        assert catalog.num_topics == 30
        assert task.hard.plan_length == 9

    def test_overrides(self):
        catalog, task = generate_instance(num_items=20, num_topics=10,
                                          plan_primary=3,
                                          plan_secondary=3,
                                          num_primary_items=8)
        assert len(catalog) == 20
        assert catalog.num_topics == 10
        assert task.hard.num_primary == 3

    def test_vocabulary_fully_used(self):
        catalog, _ = generate_instance(seed=5)
        used = set()
        for item in catalog:
            used |= item.topics
        assert used == set(catalog.topic_vocabulary)

    def test_primary_count(self):
        catalog, _ = generate_instance(num_primary_items=10)
        assert len(catalog.primaries()) == 10

    def test_prerequisites_resolvable_and_shallow(self):
        catalog, _ = generate_instance(seed=2,
                                       prerequisite_fraction=0.5)
        for item in catalog:
            for ref in item.prerequisites.referenced_ids():
                assert ref in catalog
                # Depth <= 2: antecedents have no antecedents.
                assert catalog[ref].prerequisites.is_empty

    def test_determinism(self):
        a, _ = generate_instance(seed=9)
        b, _ = generate_instance(seed=9)
        assert a.item_ids == b.item_ids
        assert all(a[i].topics == b[i].topics for i in a.item_ids)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_items=5, plan_primary=4, plan_secondary=4),
            dict(num_primary_items=2, plan_primary=4),
            dict(num_primary_items=40, num_items=40),
            dict(topics_per_item=(5, 2)),
            dict(prerequisite_fraction=1.5),
        ],
    )
    def test_inconsistent_specs_rejected(self, overrides):
        with pytest.raises(DatasetError):
            generate_instance(**overrides)


@pytest.mark.slow
class TestPlannability:
    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_every_seed_yields_valid_plan(self, seed):
        """Property: generated instances are always solvable by the
        planner end-to-end."""
        from repro import PlannerConfig, RLPlanner

        catalog, task = generate_instance(
            num_items=30, num_topics=20, num_primary_items=10,
            plan_primary=3, plan_secondary=4, seed=seed,
        )
        config = PlannerConfig(
            episodes=120, coverage_threshold=1.0, seed=seed
        )
        planner = RLPlanner(catalog, task, config)
        start = catalog.primaries()[0].item_id
        planner.fit(start_item_ids=[start])
        _, score = planner.recommend_scored(start)
        assert score.is_valid, score.report.describe()
