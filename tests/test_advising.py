"""Tests for prerequisite-graph analytics (repro.domains.courses.advising)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.exceptions import DataModelError
from repro.core.items import ItemType, Prerequisites
from repro.domains.courses import (
    analyze_prerequisites,
    chain_depth,
    entry_courses,
    max_chain_depth,
    topological_layers,
    unlocked_by,
)

from conftest import make_item


@pytest.fixture
def chain_catalog():
    """a -> b -> c chain plus an OR shortcut and a free course."""
    return Catalog(
        [
            make_item("a", topics={"t1"}),
            make_item(
                "b", topics={"t2"},
                prereqs=Prerequisites.all_of(["a"]),
            ),
            make_item(
                "c", topics={"t3"},
                prereqs=Prerequisites.all_of(["b"]),
            ),
            make_item(
                "d", topics={"t4"},
                prereqs=Prerequisites.any_of(["a", "c"]),
            ),
            make_item("free", topics={"t5"}),
        ]
    )


class TestChainDepth:
    def test_entry_course_depth_zero(self, chain_catalog):
        assert chain_depth(chain_catalog, "a") == 0
        assert chain_depth(chain_catalog, "free") == 0

    def test_and_chain_depth(self, chain_catalog):
        assert chain_depth(chain_catalog, "b") == 1
        assert chain_depth(chain_catalog, "c") == 2

    def test_or_group_takes_shallowest(self, chain_catalog):
        # d needs a (depth 0) OR c (depth 2): the shortcut wins.
        assert chain_depth(chain_catalog, "d") == 1

    def test_max_depth(self, chain_catalog):
        assert max_chain_depth(chain_catalog) == 2

    def test_cycle_detected(self):
        catalog = Catalog(
            [
                make_item("x", prereqs=Prerequisites.all_of(["y"])),
                make_item("y", prereqs=Prerequisites.all_of(["x"])),
            ],
            validate_prerequisites=False,
        )
        with pytest.raises(DataModelError):
            chain_depth(catalog, "x")


class TestUnlocking:
    def test_transitive_unlocks(self, chain_catalog):
        assert unlocked_by(chain_catalog, "a") == ("b", "c", "d")
        assert unlocked_by(chain_catalog, "b") == ("c", "d")
        assert unlocked_by(chain_catalog, "free") == ()

    def test_entry_courses(self, chain_catalog):
        assert {i.item_id for i in entry_courses(chain_catalog)} == {
            "a", "free",
        }


class TestLayers:
    def test_layering_matches_depths(self, chain_catalog):
        layers = topological_layers(chain_catalog)
        assert layers[0] == ("a", "free")
        assert layers[1] == ("b", "d")
        assert layers[2] == ("c",)


class TestReport:
    def test_report_fields(self, chain_catalog):
        report = analyze_prerequisites(chain_catalog)
        assert report.max_chain_depth == 2
        assert report.num_with_prerequisites == 3
        assert report.num_unlockers == 3  # a, b, c all unlock something
        assert set(report.entry_course_ids) == {"a", "free"}
        assert report.critical_course_ids[0] == "a"

    def test_generated_catalogs_stay_shallow(self):
        """Generated programs keep chains <= 2 deep (plan feasibility)."""
        from repro.datasets import load

        for key in ("njit_dsct", "njit_cs", "univ2_ds"):
            dataset = load(key, seed=0, with_gold=False)
            assert max_chain_depth(dataset.catalog) <= 2
