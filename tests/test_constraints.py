"""Unit tests for constraint specifications (repro.core.constraints)."""

import pytest

from repro.core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from repro.core.exceptions import ConstraintError
from repro.core.items import ItemType


class TestInterleavingTemplate:
    def test_from_labels_accepts_aliases(self):
        template = InterleavingTemplate.from_labels(
            [["primary", "S"], ["core", "elective"]]
        )
        assert template.permutations[0] == (
            ItemType.PRIMARY, ItemType.SECONDARY,
        )
        assert template.permutations[1] == (
            ItemType.PRIMARY, ItemType.SECONDARY,
        )

    def test_unknown_label_rejected(self):
        with pytest.raises(ConstraintError):
            InterleavingTemplate.from_labels([["X", "S"]])

    def test_empty_template_rejected(self):
        with pytest.raises(ConstraintError):
            InterleavingTemplate(())

    def test_ragged_lengths_rejected(self):
        with pytest.raises(ConstraintError):
            InterleavingTemplate.from_labels([["P", "S"], ["P"]])

    def test_count_of(self):
        template = InterleavingTemplate.from_labels([["P", "S", "P"]])
        assert template.count_of(ItemType.PRIMARY) == 2
        assert template.count_of(ItemType.SECONDARY) == 1

    def test_describe_is_compact(self):
        template = InterleavingTemplate.from_labels(
            [["P", "S"], ["S", "P"]]
        )
        assert template.describe() == "[P,S] | [S,P]"


class TestHardConstraints:
    def test_paper_example_values(self):
        # P_hard = <30, 5, 5, 3> from Section II-B-1.
        hard = HardConstraints.for_courses(30, 5, 5, 3)
        assert hard.plan_length == 10
        assert hard.gap == 3

    def test_trip_constructor_sets_budget_semantics(self):
        hard = HardConstraints.for_trips(6, 2, 3, max_distance=5)
        assert hard.plan_length == 5
        assert hard.theme_adjacency_gap
        assert hard.max_distance == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_credits=0, num_primary=1, num_secondary=1, gap=0),
            dict(min_credits=10, num_primary=-1, num_secondary=1, gap=0),
            dict(min_credits=10, num_primary=0, num_secondary=0, gap=0),
            dict(min_credits=10, num_primary=1, num_secondary=1, gap=-1),
            dict(
                min_credits=10, num_primary=1, num_secondary=1, gap=0,
                max_distance=0,
            ),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConstraintError):
            HardConstraints(**kwargs)

    def test_category_credit_map(self):
        hard = HardConstraints.for_courses(
            30, 5, 5, 3, category_credits={"a": 6, "b": 3}
        )
        assert hard.category_credit_map == {"a": 6, "b": 3}


class TestSoftConstraints:
    def test_empty_ideal_topics_rejected(self):
        template = InterleavingTemplate.from_labels([["P", "S"]])
        with pytest.raises(ConstraintError):
            SoftConstraints(ideal_topics=frozenset(), template=template)

    def test_ideal_vector(self):
        template = InterleavingTemplate.from_labels([["P", "S"]])
        soft = SoftConstraints(
            ideal_topics=frozenset({"b"}), template=template
        )
        assert soft.ideal_vector(["a", "b", "c"]) == (0, 1, 0)


class TestTaskSpec:
    def test_template_length_must_match_split(self):
        hard = HardConstraints.for_courses(12, 2, 2, 1)
        template = InterleavingTemplate.from_labels([["P", "S", "P"]])
        soft = SoftConstraints(
            ideal_topics=frozenset({"t"}), template=template
        )
        with pytest.raises(ConstraintError):
            TaskSpec(hard=hard, soft=soft)

    def test_template_primary_count_must_match_split(self):
        hard = HardConstraints.for_courses(12, 2, 2, 1)
        template = InterleavingTemplate.from_labels([["P", "S", "S", "S"]])
        soft = SoftConstraints(
            ideal_topics=frozenset({"t"}), template=template
        )
        with pytest.raises(ConstraintError):
            TaskSpec(hard=hard, soft=soft)

    def test_consistent_spec_accepted(self):
        hard = HardConstraints.for_courses(12, 2, 2, 1)
        template = InterleavingTemplate.from_labels(
            [["P", "S", "P", "S"], ["P", "P", "S", "S"]]
        )
        soft = SoftConstraints(
            ideal_topics=frozenset({"t"}), template=template
        )
        task = TaskSpec(hard=hard, soft=soft, name="ok")
        assert task.name == "ok"
