"""Tests for the learning-curve analysis (repro.analysis.convergence)."""

import pytest

from repro.analysis import (
    detect_convergence,
    moving_average,
    render_learning_curve,
    summarize_learning,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        assert moving_average([1.0, 2.0, 3.0], 1) == [1.0, 2.0, 3.0]

    def test_trailing_window(self):
        out = moving_average([2.0, 4.0, 6.0, 8.0], 2)
        assert out == [2.0, 3.0, 5.0, 7.0]

    def test_window_larger_than_series(self):
        out = moving_average([2.0, 4.0], 10)
        assert out == [2.0, 3.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestDetectConvergence:
    def test_flat_curve_converges_immediately(self):
        summary = detect_convergence([5.0] * 50, window=5)
        assert summary.converged
        assert summary.converged_at == 0
        assert summary.final_level == 5.0

    def test_rising_then_flat(self):
        curve = [float(i) for i in range(20)] + [20.0] * 40
        summary = detect_convergence(curve, window=5, tolerance=0.05)
        assert summary.converged
        assert summary.converged_at >= 15
        assert summary.improved_fraction > 0.5

    def test_never_settling_curve(self):
        curve = [float(i) for i in range(100)]  # keeps rising
        summary = detect_convergence(curve, window=5, tolerance=0.01)
        assert not summary.converged

    def test_empty_curve(self):
        summary = detect_convergence([])
        assert summary.episodes == 0
        assert not summary.converged

    def test_real_learning_run_summary(self, fitted_toy_planner):
        result = fitted_toy_planner.last_learning_result
        summary = summarize_learning(result)
        assert summary.episodes == result.episodes
        assert summary.final_level > 0


class TestRenderCurve:
    def test_render_contains_bounds(self):
        text = render_learning_curve([1.0, 2.0, 3.0, 4.0], width=10,
                                     height=4)
        assert "episodes 1..4" in text
        assert "#" in text

    def test_empty(self):
        assert "empty" in render_learning_curve([])
