"""Property tests: incremental similarity == the Eq. 6/7 reference.

The :class:`~repro.core.similarity.IncrementalSimilarity` tracker is the
heart of the batched reward engine: it maintains per-permutation match
counts and longest runs so that extending a prefix by one item costs
O(|IT|) instead of re-scanning the whole prefix.  These tests pin it
bit-for-bit to :func:`~repro.core.similarity.aggregate_similarity` — the
direct (re-scan) implementation — across random templates, prefixes and
all three aggregation modes, including the paper's Section III-B-4
worked example.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import InterleavingTemplate
from repro.core.items import ItemType
from repro.core.similarity import (
    IncrementalSimilarity,
    SimilarityMode,
    aggregate_similarity,
    similarity_profile,
)

P = ItemType.PRIMARY
S = ItemType.SECONDARY

MODES = (
    SimilarityMode.AVERAGE,
    SimilarityMode.MINIMUM,
    SimilarityMode.MAXIMUM,
)


def _random_case(rng: random.Random):
    """One random (template, prefix) pair; prefixes may exceed |IT|."""
    length = rng.randint(1, 10)
    num_perms = rng.randint(1, 6)
    template = InterleavingTemplate.from_labels(
        [
            [rng.choice("PS") for _ in range(length)]
            for _ in range(num_perms)
        ]
    )
    prefix = [
        rng.choice((P, S)) for _ in range(rng.randint(1, length + 2))
    ]
    return template, prefix


@pytest.fixture(scope="module")
def example1_template():
    """The Section II-B-1 template of the paper's worked example."""
    return InterleavingTemplate.from_labels(
        [
            ["P", "P", "S", "P", "S", "S"],
            ["P", "S", "S", "S", "P", "P"],
            ["P", "S", "S", "P", "P", "S"],
        ]
    )


class TestAgainstReference:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_matches_aggregate_similarity_on_random_prefixes(self, mode):
        """200 random (template, prefix) pairs agree exactly per append."""
        rng = random.Random(20260805 + hash(mode.value) % 1000)
        for _ in range(200):
            template, prefix = _random_case(rng)
            state = IncrementalSimilarity(template, mode)
            for k in range(1, len(prefix) + 1):
                state.append(prefix[k - 1])
                if k > template.length:
                    # Past the template the Eq. 6 ratio is undefined;
                    # the tracker reports 0.0 (the reward never asks).
                    assert state.value() == 0.0
                else:
                    expected = aggregate_similarity(
                        prefix[:k], template, mode
                    )
                    assert state.value() == expected

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_peek_equals_append_without_mutation(self, mode):
        """peek(t) == value-after-append(t), and peek never mutates."""
        rng = random.Random(42)
        for _ in range(50):
            template, prefix = _random_case(rng)
            state = IncrementalSimilarity(template, mode)
            for item_type in prefix:
                for probe in (P, S):
                    fresh = IncrementalSimilarity(template, mode)
                    for prior in prefix[: state.position]:
                        fresh.append(prior)
                    fresh.append(probe)
                    assert state.peek(probe) == fresh.value()
                before = state.position
                peek_p, peek_s = state.peek_types()
                assert state.position == before
                state.append(item_type)
                expected = peek_p if item_type is P else peek_s
                assert state.value() == expected


@st.composite
def _template_and_prefix(draw):
    """Random (template, prefix); prefixes may run past the horizon."""
    length = draw(st.integers(min_value=1, max_value=8))
    labels = draw(
        st.lists(
            st.lists(
                st.sampled_from("PS"),
                min_size=length,
                max_size=length,
            ),
            min_size=1,
            max_size=5,
        )
    )
    prefix = draw(
        st.lists(
            st.sampled_from((P, S)),
            min_size=1,
            max_size=length + 3,
        )
    )
    return InterleavingTemplate.from_labels(labels), prefix


class TestProfileProperty:
    """similarity_profile == an IncrementalSimilarity replay, everywhere.

    This is the horizon-consistency contract: for every prefix length
    ``k`` — including k past the template horizon, where both sides
    must report 0.0 — the k-th profile entry equals the tracker's value
    after k appends, bit for bit, in every aggregation mode.
    """

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    @given(case=_template_and_prefix())
    @settings(max_examples=60, deadline=None)
    def test_profile_entries_match_incremental_replay(self, mode, case):
        template, prefix = case
        profile = similarity_profile(prefix, template, mode)
        assert len(profile) == len(prefix)
        state = IncrementalSimilarity(template, mode)
        for k, item_type in enumerate(prefix, start=1):
            state.append(item_type)
            assert profile[k - 1] == state.value()
            if k > template.length:
                assert profile[k - 1] == 0.0

    def test_past_horizon_profile_is_zero_not_an_error(
        self, example1_template
    ):
        """Regression: over-long prefixes used to raise from Eq. 6."""
        prefix = [P, S, P, P, S, S, P, P]  # template length is 6
        profile = similarity_profile(prefix, example1_template)
        assert profile[6:] == [0.0, 0.0]
        assert aggregate_similarity(prefix, example1_template) == 0.0


class TestWorkedExample:
    def test_paper_section_iii_b_4(self, example1_template):
        """Prefix [P, S, P, P]: Sim = (0.5, 1, 1.5) => AvgSim = 1."""
        state = IncrementalSimilarity(
            example1_template, SimilarityMode.AVERAGE
        )
        for item_type in (P, S, P, P):
            state.append(item_type)
        assert state.value() == 1.0
        minimum = IncrementalSimilarity(
            example1_template, SimilarityMode.MINIMUM
        )
        maximum = IncrementalSimilarity(
            example1_template, SimilarityMode.MAXIMUM
        )
        for item_type in (P, S, P, P):
            minimum.append(item_type)
            maximum.append(item_type)
        assert minimum.value() == 0.5
        assert maximum.value() == 1.5


class TestLifecycle:
    def test_reset_restarts_the_prefix(self, example1_template):
        state = IncrementalSimilarity(
            example1_template, SimilarityMode.AVERAGE
        )
        for item_type in (P, S, P, P):
            state.append(item_type)
        state.reset()
        assert state.position == 0
        assert state.value() == 0.0
        state.append(P)
        assert state.value() == aggregate_similarity(
            [P], example1_template, SimilarityMode.AVERAGE
        )

    def test_empty_prefix_scores_zero(self, example1_template):
        state = IncrementalSimilarity(
            example1_template, SimilarityMode.AVERAGE
        )
        assert state.position == 0
        assert state.value() == 0.0
