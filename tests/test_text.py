"""Unit tests for topic extraction (repro.domains.text)."""

from repro.domains.text import STOPWORDS, extract_topics, tokenize, vocabulary_of


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Data Structures and Algorithms") == [
            "data", "structures", "and", "algorithms",
        ]

    def test_keeps_digits_and_symbols(self):
        assert tokenize("C++ and Web 2.0") == ["c++", "and", "web"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestExtractTopics:
    def test_paper_style_course_title(self):
        topics = extract_topics("Data Structures and Algorithms")
        assert topics == frozenset({"data", "structures", "algorithms"})

    def test_stopwords_removed(self):
        topics = extract_topics("Introduction to Machine Learning")
        assert "introduction" not in topics
        assert "to" not in topics
        assert {"machine", "learning"} <= topics

    def test_extra_stopwords(self):
        topics = extract_topics(
            "Advanced Quantum Widgets", extra_stopwords=["widgets"]
        )
        assert topics == frozenset({"quantum"})

    def test_adverbs_filtered(self):
        assert "really" not in extract_topics("Really Fast Systems")

    def test_single_letters_dropped(self):
        assert extract_topics("A B Data") == frozenset({"data"})


class TestVocabulary:
    def test_union_is_sorted_and_distinct(self):
        vocab = vocabulary_of(
            ["Data Mining", "Mining Economics", "Data Privacy"]
        )
        assert vocab == ("data", "economics", "mining", "privacy")

    def test_stopword_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
