"""Unit tests for the SARSA learner (repro.core.sarsa)."""

import pytest

from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.env import TPPEnvironment
from repro.core.exceptions import PlanningError
from repro.core.items import ItemType
from repro.core.qtable import QTable
from repro.core.sarsa import ActionSelection, SarsaLearner

from conftest import make_item, make_task


@pytest.fixture
def catalog():
    return Catalog(
        [
            make_item("p1", ItemType.PRIMARY, topics={"t1"}),
            make_item("p2", ItemType.PRIMARY, topics={"t2"}),
            make_item("s1", ItemType.SECONDARY, topics={"t3"}),
            make_item("s2", ItemType.SECONDARY, topics={"t4"}),
            make_item("s3", ItemType.SECONDARY, topics={"t1", "t3"}),
        ]
    )


def build_learner(catalog, **config_kwargs):
    defaults = dict(
        episodes=30, coverage_threshold=1.0, exploration=0.1, seed=0
    )
    defaults.update(config_kwargs)
    config = PlannerConfig(**defaults)
    env = TPPEnvironment(catalog, make_task(), config)
    return SarsaLearner(env, config)


class TestLearning:
    def test_learn_runs_requested_episodes(self, catalog):
        result = build_learner(catalog).learn()
        assert result.episodes == 30
        assert len(result.stats) == 30

    def test_qtable_receives_updates(self, catalog):
        result = build_learner(catalog).learn()
        assert result.qtable.update_count > 0
        assert (result.qtable.values != 0).any()

    def test_episode_override(self, catalog):
        result = build_learner(catalog).learn(episodes=5)
        assert result.episodes == 5

    def test_start_pool_restriction(self, catalog):
        result = build_learner(catalog).learn(start_item_ids=["p1"])
        assert {s.start_item_id for s in result.stats} == {"p1"}

    def test_unknown_start_rejected(self, catalog):
        with pytest.raises(PlanningError):
            build_learner(catalog).learn(start_item_ids=["ghost"])

    def test_empty_start_pool_rejected(self, catalog):
        with pytest.raises(PlanningError):
            build_learner(catalog).learn(start_item_ids=[])

    def test_warm_start_continues_table(self, catalog):
        learner = build_learner(catalog)
        first = learner.learn(episodes=5)
        updates = first.qtable.update_count
        second = build_learner(catalog).learn(
            episodes=5, qtable=first.qtable
        )
        assert second.qtable is first.qtable
        assert second.qtable.update_count > updates

    def test_on_episode_callback(self, catalog):
        seen = []
        build_learner(catalog).learn(
            episodes=3, on_episode=seen.append
        )
        assert [s.episode for s in seen] == [0, 1, 2]


class TestDeterminismAndStats:
    def test_same_seed_same_qtable(self, catalog):
        r1 = build_learner(catalog, seed=7).learn()
        r2 = build_learner(catalog, seed=7).learn()
        assert (r1.qtable.values == r2.qtable.values).all()

    def test_different_seed_differs(self, catalog):
        r1 = build_learner(catalog, seed=1).learn()
        r2 = build_learner(catalog, seed=2).learn()
        assert (r1.qtable.values != r2.qtable.values).any()

    def test_mean_episode_reward_positive(self, catalog):
        result = build_learner(catalog).learn()
        assert result.mean_episode_reward > 0

    def test_reward_trace_length(self, catalog):
        result = build_learner(catalog).learn(episodes=7)
        assert len(result.reward_trace()) == 7

    def test_episode_length_bounded_by_horizon(self, catalog):
        result = build_learner(catalog).learn()
        assert all(s.length <= 4 for s in result.stats)


class _TwoSeedDeadEnv(TPPEnvironment):
    """reset() seeds two items and no action is ever available.

    Models the dead-start corner: an environment may legitimately seed
    more than the start item before the first step (e.g. mandated
    items), and the episode can still offer no legal action.
    """

    def reset(self, start_item_id):
        item = super().reset(start_item_id)
        self.builder.add(self.catalog["p2"])
        return item

    def valid_actions(self):
        return ()


class TestDeadStartEpisodes:
    def test_length_counts_everything_reset_seeded(self, catalog):
        # Regression: the dead-start branch used to hardcode length=1,
        # disagreeing with len(env.builder) whenever reset() seeded
        # more than the start item.
        config = PlannerConfig(
            episodes=3, coverage_threshold=1.0, exploration=0.1, seed=0
        )
        env = _TwoSeedDeadEnv(catalog, make_task(), config)
        learner = SarsaLearner(env, config)
        result = learner.learn(start_item_ids=["p1"])
        assert len(result.stats) == 3
        for stats in result.stats:
            assert stats.length == 2
            # Zero steps taken => zero zero-reward steps, exactly as
            # the stepping path would count them.
            assert stats.zero_reward_steps == 0
            assert stats.total_reward == 0.0


class TestSelectionModes:
    def test_q_greedy_mode_learns(self, catalog):
        config = PlannerConfig(
            episodes=20, coverage_threshold=1.0, exploration=0.2, seed=0
        )
        env = TPPEnvironment(catalog, make_task(), config)
        learner = SarsaLearner(
            env, config, selection=ActionSelection.Q_GREEDY
        )
        result = learner.learn()
        assert result.qtable.update_count > 0

    def test_zero_exploration_is_paper_algorithm(self, catalog):
        # exploration=0 -> pure reward-greedy rollouts; still learns.
        result = build_learner(catalog, exploration=0.0).learn()
        assert result.mean_episode_reward > 0
