"""Additional property-based tests across subsystems.

* Q-table serialization round-trips arbitrary sparse entries.
* Feedback-store smoothing keeps preferences in [-1, 1] under any
  signal sequence, and the sign of a long unanimous streak wins.
* Scoring: a plan's gated value is 0 or its raw value, never anything
  else; the gold reference bounds every template score.
* Schedule folding preserves item order and multiplicity.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import Catalog
from repro.core.items import ItemType
from repro.core.plan import plan_from_ids
from repro.core.qtable import QTable
from repro.core.schedule import fold_plan
from repro.core.scoring import PlanScorer
from repro.core.serialization import policy_from_dict, policy_to_dict
from repro.feedback import Feedback, FeedbackStore

from conftest import make_item, make_task

ITEM_IDS = tuple(f"i{k}" for k in range(6))


def _catalog():
    return Catalog(
        [
            make_item(
                item_id,
                ItemType.PRIMARY if k < 3 else ItemType.SECONDARY,
                topics={f"t{k}"},
            )
            for k, item_id in enumerate(ITEM_IDS)
        ]
    )


class TestSerializationProperties:
    @given(
        st.dictionaries(
            st.tuples(
                st.sampled_from(ITEM_IDS), st.sampled_from(ITEM_IDS)
            ),
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=40)
    def test_round_trip_preserves_entries(self, entries):
        catalog = _catalog()
        table = QTable(catalog)
        for (state, action), value in entries.items():
            table.set(state, action, value)
        rebuilt = policy_from_dict(policy_to_dict(table), catalog)
        assert rebuilt.to_entries() == table.to_entries()


class TestFeedbackProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(ITEM_IDS),
                st.floats(
                    min_value=-1, max_value=1,
                    allow_nan=False,
                ),
            ),
            max_size=30,
        ),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_preferences_stay_bounded(self, signals, smoothing):
        store = FeedbackStore(smoothing=smoothing)
        for item_id, utility in signals:
            store.add(Feedback(item_id=item_id, utility=utility))
        for item_id in ITEM_IDS:
            assert -1.0 <= store.preference(item_id) <= 1.0

    @given(st.integers(min_value=5, max_value=30))
    @settings(max_examples=20)
    def test_unanimous_streak_dominates(self, n):
        store = FeedbackStore(smoothing=0.5)
        store.add(Feedback.binary("x", False))
        for _ in range(n):
            store.add(Feedback.binary("x", True))
        assert store.preference("x") > 0.9


class TestScoringProperties:
    @given(st.permutations(list(ITEM_IDS)), st.integers(1, 6))
    @settings(max_examples=50)
    def test_gated_value_is_zero_or_raw(self, order, take):
        catalog = _catalog()
        task = make_task(
            num_primary=2,
            num_secondary=2,
            min_credits=12.0,
            ideal_topics=tuple(f"t{k}" for k in range(6)),
        )
        scorer = PlanScorer(task)
        plan = plan_from_ids(catalog, order[:take])
        score = scorer.score(plan)
        assert score.value in (0.0, score.raw_value)
        assert 0.0 <= score.raw_value <= scorer.gold_reference_score()


class TestScheduleProperties:
    @given(
        st.permutations(list(ITEM_IDS)),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40)
    def test_fold_preserves_order(self, order, period_size):
        catalog = _catalog()
        plan = plan_from_ids(catalog, order)
        schedule = fold_plan(plan, items_per_period=period_size)
        flattened = [
            item.item_id
            for period in schedule.periods
            for item in period.items
        ]
        assert flattened == list(order)
        sizes = [len(p.items) for p in schedule.periods]
        assert all(s == period_size for s in sizes[:-1])
        assert 1 <= sizes[-1] <= period_size
