"""Tests for the paired study protocol (repro.userstudy.protocol)."""

import numpy as np
import pytest

from repro.core.plan import plan_from_ids
from repro.datasets import load_toy
from repro.userstudy import PairedComparison, Question, StudyProtocol
from repro.userstudy.protocol import _bootstrap_ci, _sign_test_p


@pytest.fixture(scope="module")
def toy():
    return load_toy(seed=0, with_gold=True)


@pytest.fixture(scope="module")
def weak_plan(toy):
    # Prerequisite-violating order: m6 before its antecedents.
    return plan_from_ids(
        toy.catalog, ["m1", "m6", "m3", "m2", "m4", "m5"]
    )


class TestProtocol:
    def test_identical_plans_are_comparable(self, toy):
        protocol = StudyProtocol(toy.task, num_raters=30, seed=0)
        results = protocol.run([(toy.gold_plan, toy.gold_plan)])
        for comparison in results.values():
            assert abs(comparison.mean_gap) < 0.3
            assert comparison.comparable
            # No systematic direction -> sign test not significant.
            assert comparison.sign_test_p > 0.01

    def test_weak_plan_shows_significant_gap(self, toy, weak_plan):
        protocol = StudyProtocol(toy.task, num_raters=30, seed=0)
        results = protocol.run([(weak_plan, toy.gold_plan)])
        ordering = results[Question.ORDERING]
        assert ordering.mean_gap > 0.5
        assert ordering.sign_test_p < 0.01
        assert ordering.gap_ci_low > 0

    def test_multiple_pairs_pool_raters(self, toy, weak_plan):
        protocol = StudyProtocol(toy.task, num_raters=10, seed=0)
        results = protocol.run(
            [(weak_plan, toy.gold_plan)] * 3
        )
        assert set(results) == set(Question)

    def test_empty_pairs_rejected(self, toy):
        protocol = StudyProtocol(toy.task, num_raters=5, seed=0)
        with pytest.raises(ValueError):
            protocol.run([])

    def test_seed_determinism(self, toy, weak_plan):
        def run():
            protocol = StudyProtocol(toy.task, num_raters=10, seed=4)
            return protocol.run([(weak_plan, toy.gold_plan)])

        a, b = run(), run()
        for question in Question:
            assert a[question].mean_gap == b[question].mean_gap


class TestStatistics:
    def test_bootstrap_ci_contains_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(2.0, 1.0, size=400)
        low, high = _bootstrap_ci(values, rng, samples=500)
        assert low < 2.0 < high
        assert high - low < 0.5

    def test_sign_test_balanced_is_insignificant(self):
        gaps = np.array([1.0, -1.0] * 20)
        assert _sign_test_p(gaps) > 0.5

    def test_sign_test_one_sided_is_significant(self):
        gaps = np.ones(30)
        assert _sign_test_p(gaps) < 1e-6

    def test_sign_test_all_zero(self):
        assert _sign_test_p(np.zeros(10)) == 1.0

    def test_sign_test_large_sample_normal_branch(self):
        rng = np.random.default_rng(1)
        gaps = rng.normal(0.5, 1.0, size=200)
        p = _sign_test_p(gaps)
        assert 0.0 <= p <= 1.0
        assert p < 0.05  # clear positive shift
