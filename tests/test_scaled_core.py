"""Scaled-learning-core regression suite (sparse backend, pruning,
episode batching) plus the Q-table/catalog bugfix sweep.

Covers:

* backend selection (``auto`` / explicit / threshold) and config knobs,
* ``copy()`` carrying ``skipped_on_load`` (regression),
* dense ``to_entries`` correctness incl. touched-zero and raw-array
  writes (regression for the dense-temporaries rewrite),
* ``Catalog.subset`` / ``subset_with_findings`` base-catalog item order
  (regression for the docstring/contract fix),
* ``best_action_idx`` equivalence with ``best_action`` (winner set,
  NaN handling, tie-break rng draws),
* candidate-action pruning bit-identity with the unpruned argmax,
* episode-batched training determinism and the batch=1 byte-identity,
* a hypothesis property test pinning dense and sparse backends to
  bit-identical Q-values, payloads, and plans — including save → load
  → serve round trips through the policy registry.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_item
from repro.core.catalog import Catalog
from repro.core.config import PlannerConfig
from repro.core.env import DomainMode, TPPEnvironment
from repro.core.exceptions import ConstraintError, PlanningError
from repro.core.learners import QLearningLearner
from repro.core.policy import GreedyPolicy
from repro.core.qtable import (
    QTable,
    SPARSE_BACKEND_THRESHOLD,
    SparseQTable,
    make_qtable,
    resolve_backend,
)
from repro.core.reward import RewardFunction, batch_rewards
from repro.core.sarsa import ActionSelection, SarsaLearner
from repro.core.serialization import (
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)
from repro.datasets.synthetic import generate_instance
from repro.serving.registry import PolicyRegistry, SOURCE_DISK

BACKENDS = (QTable, SparseQTable)


@pytest.fixture()
def catalog() -> Catalog:
    return Catalog([make_item(i) for i in ("a", "b", "c", "d")])


def _train(catalog, task, config, episodes=6, episode_batch=1,
           selection=ActionSelection.REWARD_GREEDY):
    env = TPPEnvironment(catalog, task, config)
    learner = SarsaLearner(env, config, selection=selection)
    return learner.learn(episodes=episodes, episode_batch=episode_batch)


class TestBackendSelection:
    def test_auto_picks_dense_below_threshold(self, catalog):
        assert resolve_backend(catalog, "auto") is QTable
        assert isinstance(make_qtable(catalog), QTable)

    def test_auto_threshold_is_catalog_size(self, catalog):
        # The cutover is on |I|; a tiny catalog forced sparse still works.
        assert SPARSE_BACKEND_THRESHOLD > len(catalog)
        assert resolve_backend(catalog, "sparse") is SparseQTable
        assert resolve_backend(catalog, "dense") is QTable

    def test_unknown_backend_rejected(self, catalog):
        with pytest.raises(PlanningError):
            resolve_backend(catalog, "bogus")

    def test_sparse_rejects_nonzero_initial_value(self, catalog):
        with pytest.raises(PlanningError):
            SparseQTable(catalog, initial_value=0.5)

    def test_sparse_has_no_dense_values(self, catalog):
        with pytest.raises(PlanningError):
            SparseQTable(catalog).values

    def test_config_validates_backend(self):
        with pytest.raises(ConstraintError):
            PlannerConfig(qtable_backend="compressed")
        for ok in ("auto", "dense", "sparse"):
            assert PlannerConfig(qtable_backend=ok).qtable_backend == ok

    def test_config_validates_top_k(self):
        with pytest.raises(ConstraintError):
            PlannerConfig(candidate_top_k=0)
        assert PlannerConfig(candidate_top_k=5).candidate_top_k == 5
        assert PlannerConfig().candidate_top_k is None


class TestCopyCarriesLoadProvenance:
    """Regression: ``copy()`` used to silently drop ``skipped_on_load``."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_copy_keeps_skipped_on_load(self, catalog, backend):
        entries = {("a", "b"): 0.5, ("a", "ghost"): 1.0, ("x", "y"): 2.0}
        table = backend.from_entries(catalog, entries, update_count=7)
        assert table.skipped_on_load == 2
        clone = table.copy()
        assert type(clone) is backend
        assert clone.skipped_on_load == 2
        assert clone.update_count == 7
        assert clone.to_entries() == table.to_entries()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_copy_is_deep(self, catalog, backend):
        table = backend(catalog)
        table.set("a", "b", 0.5)
        clone = table.copy()
        clone.set("a", "b", 9.0)
        assert table.get("a", "b") == 0.5


class TestDenseToEntries:
    """Regression: the flatnonzero rewrite must keep the old contract."""

    def test_touched_zero_entry_survives(self, catalog):
        table = QTable(catalog)
        table.set("a", "b", 0.5)
        table.set("a", "b", 0.0)
        assert table.to_entries() == {("a", "b"): 0.0}

    def test_raw_array_write_is_exported(self, catalog):
        # Safety net: tables built by direct array manipulation (no
        # touched bit) still export their non-zero cells.
        table = QTable(catalog)
        table.values[2, 0] = 0.25
        assert table.to_entries() == {("c", "a"): 0.25}

    def test_matches_sparse_on_same_writes(self, catalog):
        dense, sparse = QTable(catalog), SparseQTable(catalog)
        for s, a, v in (("a", "b", 0.3), ("b", "c", -1.5), ("c", "a", 0.0)):
            dense.set(s, a, v)
            sparse.set(s, a, v)
            dense.td_update(
                catalog.index_of(s), catalog.index_of(a), 1.0, 0.5
            )
            sparse.td_update(
                catalog.index_of(s), catalog.index_of(a), 1.0, 0.5
            )
        assert dense.to_entries() == sparse.to_entries()


class TestSubsetOrderContract:
    """Regression: subsets keep *base-catalog* order, not input order."""

    def test_subset_ignores_input_order(self, catalog):
        sub = catalog.subset(["d", "b"])
        assert sub.item_ids == ("b", "d")
        # Same id set, any order -> same catalog indexing.
        again = catalog.subset(["b", "d"])
        assert again.item_ids == sub.item_ids

    def test_subset_with_findings_same_order(self, catalog):
        sub, findings = catalog.subset_with_findings(["c", "a", "d"])
        assert sub.item_ids == ("a", "c", "d")
        assert findings == ()


class TestBestActionIdxEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_best_action_under_ties(self, catalog, backend):
        rng = np.random.default_rng(3)
        table = backend(catalog)
        ids = catalog.item_ids
        for _ in range(40):
            s = ids[int(rng.integers(len(ids)))]
            a = ids[int(rng.integers(len(ids)))]
            table.set(s, a, float(rng.integers(0, 3)) / 2.0)
        index_map = {i: catalog.index_of(i) for i in ids}
        for state in ids:
            allowed = [i for i in ids if i != state]
            allowed_idx = np.array([index_map[i] for i in allowed])
            # Deterministic (no rng): first winner in allowed order.
            assert (
                catalog.item_at(
                    table.best_action_idx(index_map[state], allowed_idx)
                ).item_id
                == table.best_action(state, allowed)
            )
            # Tied argmax: identical rng streams draw identical winners.
            r1, r2 = (np.random.default_rng(11) for _ in range(2))
            assert (
                catalog.item_at(
                    table.best_action_idx(
                        index_map[state], allowed_idx, rng=r1
                    )
                ).item_id
                == table.best_action(state, allowed, rng=r2)
            )
            assert r1.bit_generator.state == r2.bit_generator.state

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nan_rows(self, catalog, backend):
        table = backend(catalog)
        table.set("a", "b", float("nan"))
        table.set("a", "c", float("nan"))
        table.set("a", "d", float("nan"))
        allowed = ["b", "c", "d"]
        allowed_idx = np.array([catalog.index_of(i) for i in allowed])
        # All-NaN row: tie over the whole allowed set, never a NaN win.
        assert table.best_action("a", allowed) == "b"
        assert (
            table.best_action_idx(catalog.index_of("a"), allowed_idx)
            == catalog.index_of("b")
        )
        table.set("a", "c", -2.0)
        # A finite value beats NaN even when negative.
        assert table.best_action("a", allowed) == "c"
        assert (
            table.best_action_idx(catalog.index_of("a"), allowed_idx)
            == catalog.index_of("c")
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_allowed_raises(self, catalog, backend):
        table = backend(catalog)
        with pytest.raises(PlanningError):
            table.best_action_idx(0, np.array([], dtype=np.int64))


class TestPruningBitIdentity:
    """Two-stage candidate pruning must not change the greedy argmax."""

    @pytest.mark.parametrize("top_k", (1, 4, 16))
    def test_pruned_argmax_matches_full(self, top_k):
        catalog, task = generate_instance(num_items=48, seed=5)
        full_cfg = PlannerConfig()
        pruned_cfg = PlannerConfig(candidate_top_k=top_k)
        env_full = TPPEnvironment(catalog, task, full_cfg)
        env_pruned = TPPEnvironment(catalog, task, pruned_cfg)
        for start in ("item000", "item003"):
            env_full.reset(start)
            env_pruned.reset(start)
            while not env_full.is_done():
                full = env_full.valid_actions()
                pruned = env_pruned.valid_actions()
                if not full:
                    assert not pruned
                    break
                assert set(i.item_id for i in pruned) <= set(
                    i.item_id for i in full
                )
                r_full = batch_rewards(
                    env_full.reward, env_full.builder, full
                )
                r_pruned = batch_rewards(
                    env_pruned.reward, env_pruned.builder, pruned
                )
                # The winner *sets* agree exactly, in catalog order —
                # same argmax, same tie-break draw distribution.
                winners_full = [
                    full[i].item_id
                    for i in np.flatnonzero(r_full == r_full.max())
                ]
                winners_pruned = [
                    pruned[i].item_id
                    for i in np.flatnonzero(r_pruned == r_pruned.max())
                ]
                assert winners_pruned == winners_full
                chosen = catalog[winners_full[0]]
                env_full.step(chosen)
                env_pruned.step(chosen)

    def test_pruned_training_equals_full_when_greedy(self):
        # With exploration off, every selection is the argmax — so a
        # pruned run must learn the byte-identical table.
        catalog, task = generate_instance(num_items=40, seed=2)
        base = dict(exploration=0.0, episodes=4, seed=9)
        full = _train(catalog, task, PlannerConfig(**base), episodes=4)
        pruned = _train(
            catalog, task,
            PlannerConfig(candidate_top_k=6, **base), episodes=4,
        )
        assert full.qtable.to_entries() == pruned.qtable.to_entries()


class TestEpisodeBatching:
    def _instance(self):
        return generate_instance(num_items=30, seed=4)

    def test_batch_of_one_is_byte_identical(self):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=13, exploration=0.2)
        legacy = _train(catalog, task, cfg, episodes=6, episode_batch=1)
        default = _train(catalog, task, cfg, episodes=6)
        assert legacy.qtable.to_entries() == default.qtable.to_entries()
        assert (
            legacy.qtable.update_count == default.qtable.update_count
        )

    @pytest.mark.parametrize("batch", (2, 4))
    def test_batched_training_is_deterministic(self, batch):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=21, exploration=0.3)
        first = _train(catalog, task, cfg, episodes=8, episode_batch=batch)
        second = _train(catalog, task, cfg, episodes=8, episode_batch=batch)
        assert first.qtable.to_entries() == second.qtable.to_entries()
        assert first.qtable.update_count == second.qtable.update_count
        assert len(first.stats) == len(second.stats)

    def test_batched_training_learns(self):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=21, exploration=0.3)
        result = _train(catalog, task, cfg, episodes=8, episode_batch=4)
        assert result.qtable.update_count > 0
        assert result.qtable.to_entries()

    def test_batch_requires_positive(self):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=0)
        env = TPPEnvironment(catalog, task, cfg)
        with pytest.raises(PlanningError):
            SarsaLearner(env, cfg).learn(episodes=2, episode_batch=0)

    def test_subclasses_reject_batching(self):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=0)
        env = TPPEnvironment(catalog, task, cfg)
        learner = QLearningLearner(env, cfg)
        with pytest.raises(PlanningError):
            learner.learn(episodes=2, episode_batch=2)

    def test_q_greedy_selection_batched(self):
        catalog, task = self._instance()
        cfg = PlannerConfig(seed=5, exploration=0.1)
        result = _train(
            catalog, task, cfg, episodes=6, episode_batch=3,
            selection=ActionSelection.Q_GREEDY,
        )
        again = _train(
            catalog, task, cfg, episodes=6, episode_batch=3,
            selection=ActionSelection.Q_GREEDY,
        )
        assert result.qtable.to_entries() == again.qtable.to_entries()


class TestSparseTrainingUsesConfigBackend:
    def test_learner_honours_backend_knob(self):
        catalog, task = generate_instance(num_items=24, seed=1)
        cfg = PlannerConfig(seed=3, qtable_backend="sparse")
        result = _train(catalog, task, cfg, episodes=3)
        assert isinstance(result.qtable, SparseQTable)
        dense = _train(
            catalog, task,
            PlannerConfig(seed=3, qtable_backend="dense"), episodes=3,
        )
        assert isinstance(dense.qtable, QTable)
        assert dense.qtable.to_entries() == result.qtable.to_entries()


@st.composite
def _universes(draw):
    num_items = draw(st.integers(min_value=14, max_value=34))
    seed = draw(st.integers(min_value=0, max_value=50))
    train_seed = draw(st.integers(min_value=0, max_value=50))
    exploration = draw(st.sampled_from((0.0, 0.2, 0.5)))
    episodes = draw(st.integers(min_value=2, max_value=5))
    return num_items, seed, train_seed, exploration, episodes


class TestDenseSparseEquivalenceProperty:
    @settings(max_examples=12, deadline=None)
    @given(_universes())
    def test_backends_bit_identical(self, universe):
        num_items, seed, train_seed, exploration, episodes = universe
        catalog, task = generate_instance(num_items=num_items, seed=seed)
        tables = {}
        for backend in ("dense", "sparse"):
            cfg = PlannerConfig(
                seed=train_seed,
                exploration=exploration,
                qtable_backend=backend,
            )
            tables[backend] = _train(
                catalog, task, cfg, episodes=episodes
            ).qtable
        dense, sparse = tables["dense"], tables["sparse"]
        # Bit-identical learned values and payloads.
        entries = dense.to_entries()
        assert entries == sparse.to_entries()
        assert policy_to_dict(dense)["entries"] == (
            policy_to_dict(sparse)["entries"]
        )
        assert dense.update_count == sparse.update_count
        # Identical recommended plans from both backends.
        cfg = PlannerConfig(seed=train_seed, exploration=exploration)
        reward = RewardFunction(task, cfg)
        plans = [
            GreedyPolicy(
                table, task, reward=reward, rng_seed=7
            ).recommend("item000", require_trained=False).item_ids
            for table in (dense, sparse)
        ]
        assert plans[0] == plans[1]
        # Cross-backend save -> load round trips.
        reloaded_sparse = policy_from_dict(
            policy_to_dict(dense), catalog, backend="sparse"
        )
        reloaded_dense = policy_from_dict(
            policy_to_dict(sparse), catalog, backend="dense"
        )
        assert isinstance(reloaded_sparse, SparseQTable)
        assert isinstance(reloaded_dense, QTable)
        assert reloaded_sparse.to_entries() == entries
        assert reloaded_dense.to_entries() == entries
        assert reloaded_sparse.update_count == dense.update_count


class TestRegistryRoundTrip:
    def test_sparse_artifact_serves_after_disk_reload(self, tmp_path):
        catalog, task = generate_instance(num_items=20, seed=8)
        cfg = PlannerConfig(seed=2, qtable_backend="sparse")
        result = _train(catalog, task, cfg, episodes=4)
        table = result.qtable
        assert isinstance(table, SparseQTable)

        writer = PolicyRegistry(tmp_path / "reg")
        writer.publish(
            catalog, task, cfg, DomainMode.COURSE, table,
            episodes=4, label="sparse-train",
        )

        # A fresh registry instance must satisfy the lookup from disk —
        # never retraining — and serve the identical policy.
        reader = PolicyRegistry(tmp_path / "reg")
        def _no_train():
            raise AssertionError("round trip must not retrain")
        entry, source = reader.acquire(
            catalog, task, cfg, trainer=_no_train
        )
        assert source == SOURCE_DISK
        assert entry.qtable.to_entries() == table.to_entries()
        assert entry.qtable.update_count == table.update_count
        assert entry.meta.label == "sparse-train"

        reward = RewardFunction(task, cfg)
        served = GreedyPolicy(
            entry.qtable, task, reward=reward, rng_seed=0
        ).recommend("item000", require_trained=False)
        direct = GreedyPolicy(
            table, task, reward=reward, rng_seed=0
        ).recommend("item000", require_trained=False)
        assert served.item_ids == direct.item_ids

    def test_save_load_file_round_trip(self, tmp_path):
        catalog, task = generate_instance(num_items=16, seed=3)
        cfg = PlannerConfig(seed=1)
        table = _train(catalog, task, cfg, episodes=3).qtable
        path = tmp_path / "policy.json"
        save_policy(table, path)
        for backend, cls in (("dense", QTable), ("sparse", SparseQTable)):
            loaded = load_policy(path, catalog, backend=backend)
            assert type(loaded) is cls
            assert loaded.to_entries() == table.to_entries()
            assert loaded.update_count == table.update_count
