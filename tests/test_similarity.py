"""Unit tests for the Eq. 6/7 interleaving similarity."""

import pytest

from repro.core.constraints import InterleavingTemplate
from repro.core.exceptions import ConstraintError
from repro.core.items import ItemType
from repro.core.similarity import (
    SimilarityMode,
    aggregate_similarity,
    avg_similarity,
    longest_run,
    match_vector,
    max_similarity,
    min_similarity,
    similarity_profile,
    template_similarity,
)

P = ItemType.PRIMARY
S = ItemType.SECONDARY


@pytest.fixture(scope="module")
def example1_template():
    """The Section II-B-1 template used in the paper's worked example."""
    return InterleavingTemplate.from_labels(
        [
            ["P", "P", "S", "P", "S", "S"],
            ["P", "S", "S", "S", "P", "P"],
            ["P", "S", "S", "P", "P", "S"],
        ]
    )


class TestMatchVector:
    def test_positionwise_comparison(self):
        assert match_vector([P, S, P], (P, P, P)) == (1, 0, 1)

    def test_prefix_shorter_than_template(self):
        assert match_vector([P], (P, S, S)) == (1,)

    def test_longer_than_template_rejected(self):
        with pytest.raises(ConstraintError):
            match_vector([P, S, P], (P, S))


class TestLongestRun:
    @pytest.mark.parametrize(
        "bits,expected",
        [
            ([], 0),
            ([0, 0], 0),
            ([1], 1),
            ([1, 0, 1, 1], 2),
            ([1, 1, 1], 3),
            ([0, 1, 1, 0, 1], 2),
        ],
    )
    def test_runs(self, bits, expected):
        assert longest_run(bits) == expected


class TestPaperWorkedExample:
    """Section III-B-4: prefix [P,S,P,P] vs the Example-1 template."""

    def test_per_template_sims(self, example1_template):
        seq = [P, S, P, P]
        sims = [
            template_similarity(seq, perm) for perm in example1_template
        ]
        assert sims == [0.5, 1.0, 1.5]

    def test_avg_sim_is_one(self, example1_template):
        assert avg_similarity([P, S, P, P], example1_template) == 1.0

    def test_min_and_max(self, example1_template):
        assert min_similarity([P, S, P, P], example1_template) == 0.5
        assert max_similarity([P, S, P, P], example1_template) == 1.5


class TestTemplateSimilarity:
    def test_perfect_match_scores_k(self, example1_template):
        perm = example1_template.permutations[0]
        assert template_similarity(list(perm), perm) == len(perm)

    def test_total_mismatch_scores_zero(self):
        assert template_similarity([S, S], (P, P)) == 0.0

    def test_empty_prefix_scores_zero(self, example1_template):
        assert template_similarity(
            [], example1_template.permutations[0]
        ) == 0.0

    def test_paper_gold_scores(self):
        # A 10-slot plan equal to its template scores 10 (Univ-1 gold).
        perm = tuple([P] * 5 + [S] * 5)
        template = InterleavingTemplate((perm,))
        assert max_similarity(list(perm), template) == 10.0


class TestAggregation:
    def test_modes_are_ordered(self, example1_template):
        seq = [P, S, P, P]
        mn = aggregate_similarity(seq, example1_template,
                                  SimilarityMode.MINIMUM)
        avg = aggregate_similarity(seq, example1_template,
                                   SimilarityMode.AVERAGE)
        mx = aggregate_similarity(seq, example1_template,
                                  SimilarityMode.MAXIMUM)
        assert mn <= avg <= mx

    def test_single_permutation_modes_agree(self):
        template = InterleavingTemplate.from_labels([["P", "S", "P"]])
        seq = [P, S, S]
        values = {
            aggregate_similarity(seq, template, mode)
            for mode in SimilarityMode
        }
        assert len(values) == 1


class TestProfile:
    def test_profile_length_matches_sequence(self, example1_template):
        profile = similarity_profile([P, S, P, P], example1_template)
        assert len(profile) == 4
        assert profile[-1] == 1.0
