# Developer entry points.  The test suite needs src/ on the path; the
# bench targets write their artifacts next to this file / under
# benchmarks/results/.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-fast test-chaos test-serving test-registry test-scenarios test-durability lint bench bench-runner bench-obs bench-serving bench-paper loadtest-smoke

## Full tier-1 suite (everything under tests/).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest

## Quick loop: the suite minus the @slow integration/example tests.
test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m "not slow"

## Fault-injection suite: worker kills, torn writes, checkpoint rot.
test-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m chaos

## Serving-layer suite: admission, deadlines, breaker, ladder.
test-serving:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m serving

## Policy-registry suite: fingerprints, warm cache, background refit.
test-registry:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m registry

## Dynamic-world suite: availability churn, mid-plan replanning, drain.
test-scenarios:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m scenarios

## Durability suite: journal format, replay, kill -9 restart drill.
test-durability:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_journal.py

## Static checks (ruff: syntax errors + pyflakes).  `pip install -e .[lint]`.
lint:
	$(PYTHON) -m ruff check src tests benchmarks

## Reward-engine micro-benchmark -> BENCH_reward_engine.json.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_reward_engine.py --obs

## Parallel-runner benchmark (serial vs workers) -> BENCH_runner.json.
bench-runner:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_runner.py

## Observability overhead only (< 5% assertion + fingerprint equality).
bench-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_runner.py --only obs --runs 2 --episodes 80

## Serving-facade latency (p50/p95 per rung) -> BENCH_serving.json.
bench-serving:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_serving.py

## Paper tables/figures (pytest-benchmark harness; slow).
bench-paper:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -p no:cacheprovider

## Short closed-loop sweep through the concurrent server (1/4/16
## clients on the toy dataset) -> loadtest-smoke.json.  CI uploads the
## latency section as an artifact.
loadtest-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli loadtest toy \
		--mode closed --levels 1,4,16 --requests 48 --episodes 60 \
		--deadline 2.0 --slo 0.5 --output loadtest-smoke.json
