# Developer entry points.  The test suite needs src/ on the path; the
# bench targets write their artifacts next to this file / under
# benchmarks/results/.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-fast bench bench-paper

## Full tier-1 suite (everything under tests/).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest

## Quick loop: the suite minus the @slow integration/example tests.
test-fast:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -m "not slow"

## Reward-engine micro-benchmark -> BENCH_reward_engine.json.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_reward_engine.py

## Paper tables/figures (pytest-benchmark harness; slow).
bench-paper:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -p no:cacheprovider
