"""Simulated user study (Table IV).

The paper runs two studies: 25 DS-CT students rate course plans and 50
AMT workers rate itineraries, each answering four questions on a 1-5
scale (overall, ordering, topic coverage, interleaving/thresholds) for
an RL-Planner plan and a gold-standard plan shown blind.

Human raters are not reproducible offline, so we build a *rater model*:
each simulated rater turns measurable plan features into a rating

    rating = clip(1 + 4 * quality + bias + noise, 1, 5)

where ``quality`` in [0, 1] is the feature relevant to the question
(template adherence for "ordering", ideal-topic coverage for "topic
coverage", ...), ``bias`` is a per-rater leniency drawn once per rater,
and ``noise`` is per-judgment.  The paper's observable claim — gold
slightly above RL-Planner on all four questions, both in the 3-4.5
band — is then a property of the *plans*, which is exactly what the
bench checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.plan import Plan
from ..core.scoring import PlanScorer
from ..core.validation import plan_travel_distance_km


class Question(enum.Enum):
    """The four Table-IV questions."""

    OVERALL = "Overall Rating"
    ORDERING = "Ordering of Items"
    COVERAGE = "Topic/Theme Coverage"
    INTERLEAVING = "Core and Elective Interleaving / Distance and Time Threshold"


@dataclass(frozen=True)
class StudyResult:
    """Mean ratings per question for one plan."""

    ratings: Tuple[Tuple[Question, float], ...]

    def mean(self, question: Question) -> float:
        """Mean rating of one question."""
        for q, value in self.ratings:
            if q is question:
                return value
        raise KeyError(question)

    @property
    def overall(self) -> float:
        """Shorthand for the overall-rating mean."""
        return self.mean(Question.OVERALL)

    def as_dict(self) -> Dict[str, float]:
        """Question name -> mean rating."""
        return {q.value: v for q, v in self.ratings}


class PlanFeatureExtractor:
    """Maps a plan to per-question quality features in [0, 1]."""

    def __init__(self, task: TaskSpec, mode: DomainMode) -> None:
        self.task = task
        self.mode = mode
        self.scorer = PlanScorer(task, mode=mode)

    def features(self, plan: Plan) -> Dict[Question, float]:
        """The four per-question qualities of a plan."""
        h = max(1, self.task.hard.plan_length)
        template_quality = min(1.0, self.scorer.raw_score(plan) / h)
        coverage = self._coverage_quality(plan)
        ordering = self._ordering_quality(plan)
        thresholds = self._threshold_quality(plan)
        overall = (
            0.4 * template_quality
            + 0.25 * coverage
            + 0.2 * ordering
            + 0.15 * thresholds
        )
        return {
            Question.OVERALL: overall,
            Question.ORDERING: ordering,
            Question.COVERAGE: coverage,
            Question.INTERLEAVING: 0.5 * template_quality + 0.5 * thresholds,
        }

    def _coverage_quality(self, plan: Plan) -> float:
        """Ideal-topic coverage relative to what the plan *could* cover.

        Raters judge coverage against what is achievable in H items —
        a 10-course plan cannot cover 60 topics — so the raw coverage
        is normalized by the plan's own attainable ceiling
        (min(|T_ideal|, sum of item topic counts) / |T_ideal|).
        """
        ideal = self.task.soft.ideal_topics
        if not ideal or len(plan) == 0:
            return 1.0 if len(plan) else 0.0
        raw = plan.topic_coverage_of(ideal)
        ceiling = min(
            len(ideal), sum(len(item.topics) for item in plan.items)
        ) / len(ideal)
        if ceiling <= 0:
            return 0.0
        return min(1.0, raw / ceiling)

    def _ordering_quality(self, plan: Plan) -> float:
        """Fraction of antecedent requirements honoured with the gap."""
        positions = plan.positions()
        checked = 0
        satisfied = 0
        for item in plan.items:
            if item.prerequisites.is_empty:
                continue
            checked += 1
            if item.prerequisites.satisfied_by(
                positions, positions[item.item_id], self.task.hard.gap
            ):
                satisfied += 1
        if checked == 0:
            return 1.0
        return satisfied / checked

    def _threshold_quality(self, plan: Plan) -> float:
        """Credit/time/distance threshold satisfaction in [0, 1]."""
        hard = self.task.hard
        if self.mode is DomainMode.TRIP:
            time_ok = 1.0 if plan.total_credits <= hard.min_credits else max(
                0.0, 1.0 - (plan.total_credits - hard.min_credits)
                / hard.min_credits
            )
            if hard.max_distance is None:
                return time_ok
            distance = plan_travel_distance_km(plan)
            if distance is None:
                return time_ok
            dist_ok = 1.0 if distance <= hard.max_distance else max(
                0.0, 1.0 - (distance - hard.max_distance) / hard.max_distance
            )
            return 0.5 * time_ok + 0.5 * dist_ok
        if plan.total_credits >= hard.min_credits:
            return 1.0
        return plan.total_credits / hard.min_credits


class SimulatedStudy:
    """A panel of simulated raters.

    Parameters
    ----------
    task / mode:
        The TPP instance the rated plans belong to.
    num_raters:
        Panel size (paper: 25 students / 50 AMT workers).
    seed:
        Panel RNG seed (per-rater biases are drawn once here).
    rater_bias_std / noise_std:
        Leniency spread across raters and per-judgment noise.
    """

    def __init__(
        self,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        num_raters: int = 25,
        seed: Optional[int] = 0,
        rater_bias_std: float = 0.35,
        noise_std: float = 0.45,
    ) -> None:
        self.task = task
        self.mode = mode
        self.num_raters = num_raters
        self._rng = np.random.default_rng(seed)
        self._biases = self._rng.normal(0.0, rater_bias_std, size=num_raters)
        self._noise_std = noise_std
        self._extractor = PlanFeatureExtractor(task, mode)

    def rate(self, plan: Plan) -> StudyResult:
        """Panel means for the four questions on one plan."""
        features = self._extractor.features(plan)
        ratings: List[Tuple[Question, float]] = []
        for question in Question:
            quality = features[question]
            raw = (
                1.0
                + 4.0 * quality
                + self._biases
                + self._rng.normal(0.0, self._noise_std, self.num_raters)
            )
            clipped = np.clip(raw, 1.0, 5.0)
            ratings.append((question, float(clipped.mean())))
        return StudyResult(ratings=tuple(ratings))

    def compare(
        self, rl_plan: Plan, gold_plan: Plan
    ) -> Dict[str, Dict[str, float]]:
        """Rate both plans blind; returns {question: {rl, gold}} means.

        This is the Table IV layout: four rows, one RL-Planner column
        and one gold-standard column per domain.
        """
        rl = self.rate(rl_plan)
        gold = self.rate(gold_plan)
        return {
            question.value: {
                "rl_planner": rl.mean(question),
                "gold": gold.mean(question),
            }
            for question in Question
        }
