"""Simulated user study reproducing Table IV's protocol.

:class:`SimulatedStudy` is the simple per-plan panel; :class:`StudyProtocol`
is the full paired protocol with sign tests and bootstrap CIs on the
RL-vs-gold rating gap.
"""

from .protocol import PairedComparison, StudyProtocol
from .raters import (
    PlanFeatureExtractor,
    Question,
    SimulatedStudy,
    StudyResult,
)

__all__ = [
    "PairedComparison",
    "PlanFeatureExtractor",
    "Question",
    "SimulatedStudy",
    "StudyProtocol",
    "StudyResult",
]
