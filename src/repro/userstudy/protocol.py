"""The full Table IV study protocol with significance analysis.

The paper's study shows each rater *two* plans blind (RL-Planner and
the gold standard) and reports per-question means.  This module runs
that protocol over a whole battery of plan pairs and adds the
statistics reviewers ask for: per-rater paired differences, a sign
test, and a bootstrap confidence interval on the mean gap — so the
claim "highly comparable to gold" can be quantified instead of
eyeballed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.plan import Plan
from .raters import PlanFeatureExtractor, Question


@dataclass(frozen=True)
class PairedComparison:
    """Per-question paired analysis of RL vs gold across raters."""

    question: Question
    rl_mean: float
    gold_mean: float
    mean_gap: float
    gap_ci_low: float
    gap_ci_high: float
    sign_test_p: float

    @property
    def comparable(self) -> bool:
        """True when the CI of (gold - RL) stays below one point —
        the operational reading of 'highly comparable'."""
        return self.gap_ci_high < 1.0


class StudyProtocol:
    """Blind paired study over one or more (rl, gold) plan pairs.

    Parameters
    ----------
    task / mode:
        The TPP instance the plans belong to.
    num_raters:
        Panel size (every rater judges every pair).
    seed:
        Panel RNG seed.
    rater_bias_std / noise_std:
        Rater leniency spread and per-judgment noise (see
        :class:`~repro.userstudy.raters.SimulatedStudy`).
    """

    def __init__(
        self,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        num_raters: int = 25,
        seed: Optional[int] = 0,
        rater_bias_std: float = 0.35,
        noise_std: float = 0.45,
    ) -> None:
        self.task = task
        self.mode = mode
        self.num_raters = num_raters
        self._rng = np.random.default_rng(seed)
        self._biases = self._rng.normal(0.0, rater_bias_std, num_raters)
        self._noise_std = noise_std
        self._extractor = PlanFeatureExtractor(task, mode)

    # ------------------------------------------------------------------
    # Ratings
    # ------------------------------------------------------------------

    def _rate_matrix(self, plan: Plan) -> Dict[Question, np.ndarray]:
        """Per-rater ratings (arrays of length num_raters)."""
        features = self._extractor.features(plan)
        out: Dict[Question, np.ndarray] = {}
        for question in Question:
            raw = (
                1.0
                + 4.0 * features[question]
                + self._biases
                + self._rng.normal(0.0, self._noise_std,
                                   self.num_raters)
            )
            out[question] = np.clip(raw, 1.0, 5.0)
        return out

    def run(
        self,
        pairs: Sequence[Tuple[Plan, Plan]],
        bootstrap_samples: int = 2000,
    ) -> Dict[Question, PairedComparison]:
        """Rate every (rl, gold) pair; aggregate paired statistics."""
        if not pairs:
            raise ValueError("the study needs at least one plan pair")
        diffs: Dict[Question, List[float]] = {q: [] for q in Question}
        rl_all: Dict[Question, List[float]] = {q: [] for q in Question}
        gold_all: Dict[Question, List[float]] = {q: [] for q in Question}

        for rl_plan, gold_plan in pairs:
            rl_ratings = self._rate_matrix(rl_plan)
            gold_ratings = self._rate_matrix(gold_plan)
            for question in Question:
                gap = gold_ratings[question] - rl_ratings[question]
                diffs[question].extend(gap.tolist())
                rl_all[question].extend(rl_ratings[question].tolist())
                gold_all[question].extend(
                    gold_ratings[question].tolist()
                )

        out: Dict[Question, PairedComparison] = {}
        for question in Question:
            gaps = np.array(diffs[question])
            low, high = _bootstrap_ci(
                gaps, self._rng, samples=bootstrap_samples
            )
            out[question] = PairedComparison(
                question=question,
                rl_mean=float(np.mean(rl_all[question])),
                gold_mean=float(np.mean(gold_all[question])),
                mean_gap=float(gaps.mean()),
                gap_ci_low=low,
                gap_ci_high=high,
                sign_test_p=_sign_test_p(gaps),
            )
        return out


def _bootstrap_ci(
    values: np.ndarray,
    rng: np.random.Generator,
    samples: int = 2000,
    alpha: float = 0.05,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of the mean."""
    n = len(values)
    means = np.empty(samples)
    for i in range(samples):
        means[i] = values[rng.integers(0, n, size=n)].mean()
    return (
        float(np.quantile(means, alpha / 2)),
        float(np.quantile(means, 1 - alpha / 2)),
    )


def _sign_test_p(gaps: np.ndarray) -> float:
    """Two-sided sign test p-value on the paired gaps.

    Exact binomial for small n, normal approximation otherwise.
    """
    nonzero = gaps[gaps != 0.0]
    n = len(nonzero)
    if n == 0:
        return 1.0
    k = int((nonzero > 0).sum())
    if n <= 50:
        total = 0.0
        extreme = min(k, n - k)
        for i in range(0, extreme + 1):
            total += math.comb(n, i)
        p = 2.0 * total / (2.0 ** n)
        return min(1.0, p)
    mean = n / 2.0
    std = math.sqrt(n) / 2.0
    z = abs(k - mean) / std
    # Two-sided normal tail via the complementary error function.
    return float(math.erfc(z / math.sqrt(2.0)))
