"""Common interface for the automated baseline planners.

Both baselines of Section IV-A-2 (the adapted *OMEGA* and the greedy
*EDA*) are model-free: they have no learning phase and produce a plan
directly from the catalog + task.  The shared :class:`BaselinePlanner`
interface lets the experiment harness treat RL-Planner and the baselines
uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.plan import Plan


class BaselinePlanner(abc.ABC):
    """Abstract model-free planner.

    Parameters
    ----------
    catalog / task:
        The TPP instance.
    mode:
        Course or trip semantics (trip mode enforces the time budget
        while the plan is being built).
    """

    name: str = "baseline"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.mode = mode

    @abc.abstractmethod
    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """Produce a plan starting at ``start_item_id``."""

    def _horizon(self, horizon: Optional[int]) -> int:
        return (
            horizon if horizon is not None else self.task.hard.plan_length
        )

    def _budget_left(self, total_credits: float) -> float:
        """Remaining trip time budget (infinite for courses)."""
        if self.mode is DomainMode.TRIP:
            return self.task.hard.min_credits - total_credits
        return float("inf")
