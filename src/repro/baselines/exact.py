"""Exact search baseline (branch-and-bound over template slots).

Related work ([1] Parameswaran et al.) solves constrained course
recommendation with integer linear programming and reports it "slow
when recommending courses" once AND/OR prerequisites enter.  This
baseline plays that role: an exhaustive, provably score-optimal planner
whose runtime grows combinatorially — the scalability contrast to
RL-Planner's constant-time recommendation.

The search enumerates template permutations and fills slots depth-first
(exact type match, gap-feasible, budget-feasible), maximizing ideal-
topic coverage; because the Eq. 7 template score of any exact-match
completion equals the plan length, coverage is the only tie-breaking
objective left.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.items import Item, ItemType
from ..core.plan import Plan
from ..core.validation import PlanValidator
from .base import BaselinePlanner


class ExactPlanner(BaselinePlanner):
    """Branch-and-bound search for the best template-perfect plan.

    Parameters
    ----------
    max_expansions:
        Node budget; the search returns the best plan found within it
        (raises only when *nothing* feasible was found).
    """

    name = "Exact"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        max_expansions: int = 100_000,
    ) -> None:
        super().__init__(catalog, task, mode)
        self.max_expansions = max_expansions
        self._validator = PlanValidator(
            task.hard, credits_are_budget=(mode is DomainMode.TRIP)
        )
        self.expansions = 0

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """The best valid, template-perfect plan from the start item."""
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        self.expansions = 0
        best: Optional[Tuple[int, Plan]] = None
        for permutation in self.task.soft.template:
            found = self._search(permutation, start_item_id)
            if found is not None and (best is None or found[0] > best[0]):
                best = found
        if best is None:
            raise PlanningError(
                f"no feasible template-perfect plan from "
                f"{start_item_id!r}"
            )
        return best[1]

    # ------------------------------------------------------------------
    # DFS with a coverage objective
    # ------------------------------------------------------------------

    def _search(
        self, permutation: Sequence[ItemType], start_item_id: str
    ) -> Optional[Tuple[int, Plan]]:
        chosen: List[Item] = []
        positions: Dict[str, int] = {}
        covered: Set[str] = set()
        best: List[Optional[Tuple[int, Plan]]] = [None]
        self._dfs(permutation, 0, chosen, positions, covered,
                  start_item_id, best)
        return best[0]

    def _dfs(
        self,
        permutation: Sequence[ItemType],
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        covered: Set[str],
        start_item_id: str,
        best: List[Optional[Tuple[int, Plan]]],
    ) -> None:
        if self.expansions >= self.max_expansions:
            return
        if slot == len(permutation):
            plan = Plan(items=tuple(chosen),
                        catalog_name=self.catalog.name)
            if not self._validator.is_valid(plan):
                return
            coverage = len(covered & self.task.soft.ideal_topics)
            if best[0] is None or coverage > best[0][0]:
                best[0] = (coverage, plan)
            return

        # Optimistic bound: even covering every remaining ideal topic
        # cannot beat the incumbent -> prune.
        if best[0] is not None:
            optimistic = len(self.task.soft.ideal_topics)
            if optimistic <= best[0][0]:
                return

        ideal = self.task.soft.ideal_topics
        required = permutation[slot]
        candidates: List[Tuple[int, str, Item]] = []
        for item in self.catalog:
            if item.item_id in positions:
                continue
            if item.item_type is not required:
                continue
            if slot == 0 and item.item_id != start_item_id:
                continue
            if not item.prerequisites.satisfied_by(
                positions, slot, self.task.hard.gap
            ):
                continue
            if self.mode is DomainMode.TRIP:
                used = sum(i.credits for i in chosen)
                if used + item.credits > self.task.hard.min_credits + 1e-9:
                    continue
                if chosen and (chosen[-1].topics & item.topics):
                    continue
            gain = len((item.topics - covered) & ideal)
            candidates.append((-gain, item.item_id, item))
        candidates.sort()

        for _, _, item in candidates:
            self.expansions += 1
            chosen.append(item)
            positions[item.item_id] = slot
            gained = item.topics - covered
            covered |= gained
            self._dfs(permutation, slot + 1, chosen, positions, covered,
                      start_item_id, best)
            chosen.pop()
            del positions[item.item_id]
            covered -= gained
