"""Sanity-check baselines (not in the paper).

A uniformly random planner and a popularity-greedy planner bound the
score range from below / give a domain-agnostic reference point.  Tests
use them to assert that RL-Planner's advantage is not an artifact of the
scoring function.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.plan import Plan, PlanBuilder
from .base import BaselinePlanner


class RandomPlanner(BaselinePlanner):
    """Uniform random item selection (respecting only the trip budget)."""

    name = "Random"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(catalog, task, mode)
        self._rng = np.random.default_rng(seed)

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """A random plan of the target length starting at the item."""
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        h = self._horizon(horizon)
        builder = PlanBuilder(self.catalog)
        builder.add(self.catalog[start_item_id])
        while len(builder) < h:
            candidates = [
                item
                for item in builder.remaining_items()
                if item.credits <= self._budget_left(builder.total_credits)
            ]
            if not candidates:
                break
            builder.add(candidates[int(self._rng.integers(len(candidates)))])
        return builder.build()


class PopularityPlanner(BaselinePlanner):
    """Greedy on item popularity metadata (falls back to topic count).

    A classic non-sequential recommender: always take the "best" item
    regardless of ordering constraints — a natural straw man for why TPP
    needs sequence awareness.
    """

    name = "Popularity"

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """Top-popularity items after the start, in descending order."""
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        h = self._horizon(horizon)
        builder = PlanBuilder(self.catalog)
        builder.add(self.catalog[start_item_id])

        def popularity(item) -> float:
            value = item.meta("popularity")
            if value is not None:
                return float(value)
            return float(len(item.topics))

        ranked = sorted(
            (item for item in self.catalog
             if item.item_id != start_item_id),
            key=popularity,
            reverse=True,
        )
        for item in ranked:
            if len(builder) >= h:
                break
            if item.credits <= self._budget_left(builder.total_credits):
                builder.add(item)
        return builder.build()
