"""The adapted *OMEGA* baseline (Section IV-A-2, item 1).

OMEGA (Tschiatschek, Singla, Krause, AAAI'17) selects sequences of items
by greedily choosing edges of a DAG to maximize a utility function over
the induced ordering.  It was built for mining *historical consumption
order* and is NOT designed to satisfy constraints, so the paper adapts
it non-trivially:

* the pairwise utility matrix, originally "how often item i is consumed
  before item j", is redesigned to "the total number of topics covered
  by i and j" (we additionally support the original co-frequency matrix
  when historical itineraries exist — the trip datasets provide them);
* a two-step process builds two sub-sequences — the first generated
  greedily to satisfy the gap constraint (prerequisite pairs in
  topological order), the second chosen by OMEGA's greedy edge selection
  to maximize the utility — and concatenates them, truncated/padded to
  the length constraint.

Exactly as in the paper, the adaptation remains blind to the
interleaving template and to the primary/secondary split, so its plans
usually violate P_hard and score 0 — reproducing OMEGA's near-zero bars
in Figure 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.items import Item
from ..core.plan import Plan, PlanBuilder
from .base import BaselinePlanner


def topic_utility_matrix(catalog: Catalog) -> np.ndarray:
    """The paper's redesigned utility: |topics(i) U topics(j)| per pair."""
    n = len(catalog)
    topics = [item.topics for item in catalog]
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                matrix[i, j] = len(topics[i] | topics[j])
    return matrix


def cofrequency_matrix(
    catalog: Catalog, histories: Sequence[Sequence[str]]
) -> np.ndarray:
    """OMEGA's original utility: #times item i was consumed before j."""
    n = len(catalog)
    matrix = np.zeros((n, n))
    for history in histories:
        indices = [
            catalog.index_of(item_id)
            for item_id in history
            if item_id in catalog
        ]
        for pos, i in enumerate(indices):
            for j in indices[pos + 1 :]:
                matrix[i, j] += 1.0
    return matrix


class OmegaPlanner(BaselinePlanner):
    """Two-step adapted OMEGA.

    Parameters
    ----------
    histories:
        Optional historical sequences (trip itineraries); when given the
        utility matrix is their before/after co-frequency, otherwise the
        topic-coverage redesign is used.
    seed:
        RNG seed for tie-breaking in the greedy edge selection.
    """

    name = "OMEGA"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        histories: Optional[Sequence[Sequence[str]]] = None,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(catalog, task, mode)
        self._rng = np.random.default_rng(seed)
        if histories:
            self.utility = cofrequency_matrix(catalog, histories)
        else:
            self.utility = topic_utility_matrix(catalog)

    # ------------------------------------------------------------------
    # Step 1: gap-aware prerequisite prefix
    # ------------------------------------------------------------------

    def _prerequisite_prefix(self, start: Item, length: int) -> List[Item]:
        """Greedy sub-sequence placing antecedents before dependents.

        A topological pass over the prerequisite relation: repeatedly
        emit an unused item whose antecedents are already emitted,
        preferring items that unlock the most dependents (this is the
        "generated greedily to satisfy the gap constraint" half of the
        paper's adaptation).
        """
        emitted: List[Item] = [start]
        emitted_ids: Set[str] = {start.item_id}
        while len(emitted) < length:
            best_item: Optional[Item] = None
            best_unlocked = -1
            for item in self.catalog:
                if item.item_id in emitted_ids:
                    continue
                if not item.prerequisites.is_empty:
                    ok = all(
                        any(m in emitted_ids for m in group)
                        for group in item.prerequisites.groups
                    )
                    if not ok:
                        continue
                unlocked = len(self.catalog.dependents_of(item.item_id))
                if unlocked > best_unlocked:
                    best_unlocked = unlocked
                    best_item = item
            if best_item is None:
                break
            emitted.append(best_item)
            emitted_ids.add(best_item.item_id)
        return emitted

    # ------------------------------------------------------------------
    # Step 2: OMEGA greedy edge selection
    # ------------------------------------------------------------------

    def _omega_sequence(
        self, excluded: Set[str], length: int
    ) -> List[Item]:
        """Greedy edge selection maximizing the pairwise utility.

        At each iteration the edge (tail of current sequence -> next
        item) with the maximum utility is appended, which is OMEGA's
        edge-greedy specialization to a path.
        """
        available = [
            item
            for item in self.catalog
            if item.item_id not in excluded
        ]
        if not available or length <= 0:
            return []
        # Seed with the item of maximum total outgoing utility.
        totals = [
            self.utility[self.catalog.index_of(item.item_id)].sum()
            for item in available
        ]
        best = max(totals)
        seeds = [
            item
            for item, total in zip(available, totals)
            if total >= best
        ]
        current = seeds[int(self._rng.integers(len(seeds)))]
        sequence = [current]
        used = {current.item_id}
        while len(sequence) < length:
            i = self.catalog.index_of(current.item_id)
            best_value = -1.0
            winners: List[Item] = []
            for item in available:
                if item.item_id in used:
                    continue
                value = self.utility[i, self.catalog.index_of(item.item_id)]
                if value > best_value:
                    best_value = value
                    winners = [item]
                elif value == best_value:
                    winners.append(item)
            if not winners:
                break
            current = winners[int(self._rng.integers(len(winners)))]
            sequence.append(current)
            used.add(current.item_id)
        return sequence

    # ------------------------------------------------------------------
    # Concatenation
    # ------------------------------------------------------------------

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """Concatenate the gap prefix and the OMEGA sub-sequence."""
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        h = self._horizon(horizon)
        prefix_len = max(1, h // 2)
        prefix = self._prerequisite_prefix(self.catalog[start_item_id],
                                           prefix_len)
        used = {item.item_id for item in prefix}
        suffix = self._omega_sequence(used, h - len(prefix))

        builder = PlanBuilder(self.catalog)
        for item in prefix + suffix:
            if len(builder) >= h:
                break
            if self.mode is DomainMode.TRIP and item.credits > (
                self._budget_left(builder.total_credits)
            ):
                continue
            builder.add(item)
        return builder.build()
