"""The paper's automated baselines (OMEGA, EDA) plus reference planners.

* :class:`OmegaPlanner` and :class:`EDAPlanner` — the two baselines of
  Section IV-A-2.
* :class:`MarkovPlanner` — a history-mining sequence recommender
  standing in for the Section V-A family (constraint-blind).
* :class:`ExactPlanner` — exhaustive branch-and-bound (the slow exact
  comparator in the spirit of the ILP approach of related work [1]).
* :class:`RandomPlanner` / :class:`PopularityPlanner` — sanity floors.
"""

from .base import BaselinePlanner
from .eda import EDAPlanner
from .exact import ExactPlanner
from .markov import MarkovPlanner
from .omega import OmegaPlanner, cofrequency_matrix, topic_utility_matrix
from .random_planner import PopularityPlanner, RandomPlanner

__all__ = [
    "BaselinePlanner",
    "EDAPlanner",
    "ExactPlanner",
    "MarkovPlanner",
    "OmegaPlanner",
    "PopularityPlanner",
    "RandomPlanner",
    "cofrequency_matrix",
    "topic_utility_matrix",
]
