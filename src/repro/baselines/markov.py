"""First-order Markov-chain sequence recommender.

Represents the "sequence mining over historical logs" family the paper
surveys (Section V-A: Caser, SASRec, and co-frequency methods all learn
*what follows what* from history).  The planner estimates first-order
transition probabilities from historical sequences (the trip datasets'
itineraries; for courses any provided logs) and recommends by following
the most likely next item.

Like OMEGA, it is constraint-blind by construction — the instructive
failure mode: high-likelihood sequences that flunk P_hard.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.plan import Plan, PlanBuilder
from .base import BaselinePlanner


class MarkovPlanner(BaselinePlanner):
    """Greedy traversal of first-order transition counts.

    Parameters
    ----------
    histories:
        Historical item sequences to mine.  Items outside the catalog
        are ignored; an empty/no-overlap history leaves a uniform chain
        (the planner then degenerates to catalog order).
    additive_smoothing:
        Laplace smoothing mass added to every transition.
    """

    name = "Markov"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        histories: Sequence[Sequence[str]] = (),
        mode: DomainMode = DomainMode.COURSE,
        additive_smoothing: float = 0.1,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(catalog, task, mode)
        self._rng = np.random.default_rng(seed)
        n = len(catalog)
        self.transitions = np.full((n, n), additive_smoothing)
        np.fill_diagonal(self.transitions, 0.0)
        for history in histories:
            indices = [
                catalog.index_of(item_id)
                for item_id in history
                if item_id in catalog
            ]
            for a, b in zip(indices, indices[1:]):
                if a != b:
                    self.transitions[a, b] += 1.0

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """Follow the most likely unvisited successor at each step."""
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        h = self._horizon(horizon)
        builder = PlanBuilder(self.catalog)
        builder.add(self.catalog[start_item_id])
        current = self.catalog.index_of(start_item_id)

        while len(builder) < h:
            candidates = [
                item
                for item in builder.remaining_items()
                if item.credits <= self._budget_left(builder.total_credits)
            ]
            if not candidates:
                break
            weights = np.array(
                [
                    self.transitions[
                        current, self.catalog.index_of(item.item_id)
                    ]
                    for item in candidates
                ]
            )
            best = weights.max()
            winners = [
                item
                for item, weight in zip(candidates, weights)
                if weight >= best
            ]
            choice = winners[int(self._rng.integers(len(winners)))]
            builder.add(choice)
            current = self.catalog.index_of(choice.item_id)
        return builder.build()

    def transition_probability(self, from_id: str, to_id: str) -> float:
        """Row-normalized transition probability between two items."""
        i = self.catalog.index_of(from_id)
        j = self.catalog.index_of(to_id)
        row = self.transitions[i]
        total = row.sum()
        if total <= 0:
            return 0.0
        return float(row[j] / total)
