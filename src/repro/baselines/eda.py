"""The *EDA* baseline (Section IV-A-2, item 2).

The paper adapts the next-step-recommendation paradigm of exploratory
data analysis into "a greedy method that chooses the action with the
highest reward based on Equation 2 in each step.  If two actions provide
the same result, one will be picked at random."

Crucially, EDA is *myopic and unmasked*: it sees the same Eq. 2 reward
RL-Planner optimizes, but it neither looks ahead (no learned Q) nor
reasons about the feasibility of completing the hard constraints — which
is exactly why it trails RL-Planner in Figure 1 and sometimes scores 0
in the robustness tables.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.items import Item
from ..core.plan import Plan, PlanBuilder
from ..core.reward import RewardFunction, batch_rewards
from .base import BaselinePlanner


class EDAPlanner(BaselinePlanner):
    """Greedy next-step planner on the Equation-2 reward.

    Parameters
    ----------
    config:
        Supplies the reward's epsilon / weights / similarity mode (the
        robustness tables sweep these for EDA too).
    seed:
        Tie-breaking RNG seed.
    """

    name = "EDA"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: Optional[PlannerConfig] = None,
        mode: DomainMode = DomainMode.COURSE,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(catalog, task, mode)
        self.config = config if config is not None else PlannerConfig()
        self.reward = RewardFunction(task, self.config)
        self._rng = np.random.default_rng(seed)

    def recommend(
        self,
        start_item_id: str,
        horizon: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Plan:
        """Greedy plan: argmax of immediate Eq. 2 reward at every step.

        ``should_stop`` is checked once per step; when it fires the plan
        built so far is returned (possibly shorter than the horizon) so
        a serving deadline can bound even this fallback.
        """
        if start_item_id not in self.catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog"
            )
        builder = PlanBuilder(self.catalog)
        builder.add(self.catalog[start_item_id])
        return self._greedy_fill(builder, self._horizon(horizon), should_stop)

    def complete(
        self,
        prefix_items: Sequence[Item],
        horizon: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Plan:
        """Greedily extend a committed plan prefix to the horizon.

        The prefix items are placed verbatim and may be foreign to this
        planner's catalog (mid-plan replanning runs EDA over the *live*
        catalog while the committed prefix references the original one);
        only the suffix is chosen, from this catalog's remaining items.
        """
        prefix = tuple(prefix_items)
        if not prefix:
            raise PlanningError("complete() requires a non-empty prefix")
        builder = PlanBuilder(self.catalog)
        for item in prefix:
            builder.add(item)
        return self._greedy_fill(builder, self._horizon(horizon), should_stop)

    def _greedy_fill(
        self,
        builder: PlanBuilder,
        horizon: int,
        should_stop: Optional[Callable[[], bool]],
    ) -> Plan:
        while len(builder) < horizon:
            if should_stop is not None and should_stop():
                break
            candidates = [
                item
                for item in builder.remaining_items()
                if item.credits <= self._budget_left(builder.total_credits)
            ]
            if not candidates:
                break
            rewards = batch_rewards(self.reward, builder, candidates)
            winners = np.flatnonzero(rewards == rewards.max())
            choice = candidates[
                int(winners[int(self._rng.integers(winners.size))])
            ]
            builder.add(choice)
        return builder.build()
