"""Infeasibility diagnostics: which constraint should the user relax?

When a TPP instance is over-constrained (a 5-POI itinerary inside a
3-hour budget, a split larger than the catalog's primary pool), the
planner can only return invalid plans.  :func:`diagnose` explains *why*
and proposes the minimal relaxations that restore feasibility — the
conversational move a human advisor makes ("with only three hours we
must drop a must-see").

The check is structural (counting arguments over the catalog), so it is
instant and requires no training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode


@dataclass(frozen=True)
class Finding:
    """One structural infeasibility with a proposed relaxation."""

    code: str
    message: str
    suggestion: str


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of a feasibility diagnosis."""

    findings: Tuple[Finding, ...]

    @property
    def is_feasible(self) -> bool:
        """True when no structural blocker was found.

        Structural feasibility is necessary, not sufficient — a gap or
        distance interaction can still defeat individual plans — but
        every finding reported here is a certain blocker.
        """
        return not self.findings

    def codes(self) -> Tuple[str, ...]:
        """Finding codes, for assertions."""
        return tuple(f.code for f in self.findings)

    def describe(self) -> str:
        """Multi-line report with suggestions."""
        if self.is_feasible:
            return "no structural infeasibility found"
        lines = []
        for finding in self.findings:
            lines.append(f"[{finding.code}] {finding.message}")
            lines.append(f"    -> {finding.suggestion}")
        return "\n".join(lines)


def diagnose(
    catalog: Catalog,
    task: TaskSpec,
    mode: DomainMode = DomainMode.COURSE,
) -> Diagnosis:
    """Check a TPP instance for certain structural blockers."""
    findings: List[Finding] = []
    hard = task.hard
    plan_length = hard.plan_length

    # 1. Catalog size vs plan length.
    if len(catalog) < plan_length:
        findings.append(
            Finding(
                code="catalog_size",
                message=(
                    f"the plan needs {plan_length} items but the "
                    f"catalog holds only {len(catalog)}"
                ),
                suggestion=(
                    "reduce #primary/#secondary or enlarge the catalog"
                ),
            )
        )

    # 2. Primary pool vs primary quota.
    primaries = len(catalog.primaries())
    if primaries < hard.num_primary:
        findings.append(
            Finding(
                code="primary_pool",
                message=(
                    f"{hard.num_primary} primary items required but the "
                    f"catalog offers {primaries}"
                ),
                suggestion=(
                    f"lower num_primary to <= {primaries} or promote "
                    f"items to primary"
                ),
            )
        )

    # 3. Credit arithmetic (courses: minimum reachable in plan_length).
    if mode is DomainMode.COURSE:
        top_credits = sorted(
            (item.credits for item in catalog), reverse=True
        )[:plan_length]
        achievable = sum(top_credits)
        if achievable < hard.min_credits - 1e-9:
            findings.append(
                Finding(
                    code="credit_ceiling",
                    message=(
                        f"{hard.min_credits:g} credits required but the "
                        f"best {plan_length} items only total "
                        f"{achievable:g}"
                    ),
                    suggestion="lower min_credits or allow more items",
                )
            )
    else:
        # Trips: the *cheapest* feasible selection must fit the budget,
        # honouring the primary quota.
        primary_costs = sorted(
            item.credits for item in catalog.primaries()
        )[: hard.num_primary]
        n_secondary = plan_length - len(primary_costs)
        secondary_costs = sorted(
            item.credits for item in catalog.secondaries()
        )[:n_secondary]
        cheapest = sum(primary_costs) + sum(secondary_costs)
        if len(primary_costs) + len(secondary_costs) == plan_length and (
            cheapest > hard.min_credits + 1e-9
        ):
            findings.append(
                Finding(
                    code="time_budget",
                    message=(
                        f"even the quickest {plan_length}-POI itinerary "
                        f"needs {cheapest:.1f}h against a "
                        f"{hard.min_credits:g}h budget"
                    ),
                    suggestion=(
                        f"raise the time budget to >= {cheapest:.1f} "
                        f"or plan fewer POIs"
                    ),
                )
            )

    # 4. Category minima (Univ-2): per-bucket supply.
    for category, minimum in sorted(hard.category_credit_map.items()):
        pool = catalog.in_category(category)
        supply = sum(item.credits for item in pool)
        if supply < minimum - 1e-9:
            findings.append(
                Finding(
                    code="category_supply",
                    message=(
                        f"category {category!r} requires {minimum:g} "
                        f"credits but the catalog supplies {supply:g}"
                    ),
                    suggestion=(
                        f"lower the {category!r} requirement or add "
                        f"courses to it"
                    ),
                )
            )
    if hard.category_credit_map:
        slots_needed = 0
        for category, minimum in hard.category_credit_map.items():
            pool = catalog.in_category(category)
            if not pool:
                continue
            per_item = min(item.credits for item in pool)
            slots_needed += int(-(-minimum // per_item))
        if slots_needed > plan_length:
            findings.append(
                Finding(
                    code="category_slots",
                    message=(
                        f"the category minima pin {slots_needed} items "
                        f"but the plan has {plan_length} slots"
                    ),
                    suggestion="relax bucket minima or lengthen the plan",
                )
            )

    # 5. Gap arithmetic: a prerequisite chain deeper than the plan
    # allows can never be scheduled; flag items whose antecedents
    # cannot fit (gap >= plan length).
    if hard.gap >= plan_length:
        constrained = [
            item.item_id
            for item in catalog
            if not item.prerequisites.is_empty
        ]
        if constrained:
            findings.append(
                Finding(
                    code="gap_too_wide",
                    message=(
                        f"gap {hard.gap} >= plan length {plan_length}: "
                        f"items with antecedents "
                        f"({', '.join(constrained[:5])}...) can never "
                        f"be placed"
                    ),
                    suggestion="reduce gap or lengthen the plan",
                )
            )

    return Diagnosis(findings=tuple(findings))


def suggest_relaxations(
    catalog: Catalog,
    task: TaskSpec,
    mode: DomainMode = DomainMode.COURSE,
) -> Sequence[str]:
    """Just the human-readable suggestions (empty when feasible)."""
    return [f.suggestion for f in diagnose(catalog, task, mode).findings]
