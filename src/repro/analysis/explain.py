"""Recommendation explanations.

An advisor doesn't just hand over a plan — they can say *why* each
course comes next.  :func:`explain_plan` replays a planner's
recommendation step by step and records, for every chosen item, the
Equation-2 breakdown (coverage gate, gap gate, similarity, type
weight), the newly covered ideal topics, and how many candidates
survived masking — the full story behind each decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.plan import Plan, PlanBuilder
from ..core.planner import RLPlanner
from ..core.reward import RewardBreakdown
from .tables import render_table


@dataclass(frozen=True)
class StepExplanation:
    """Why one item entered the plan at one step."""

    position: int
    item_id: str
    item_name: str
    item_type: str
    breakdown: Optional[RewardBreakdown]
    new_ideal_topics: Tuple[str, ...]
    candidates_considered: int


@dataclass(frozen=True)
class PlanExplanation:
    """A plan together with its per-step decision records."""

    plan: Plan
    steps: Tuple[StepExplanation, ...]

    def render(self) -> str:
        """Human-readable explanation table."""
        rows = []
        for step in self.steps:
            if step.breakdown is None:
                r1 = r2 = sim = weight = total = None
            else:
                r1 = step.breakdown.r1_coverage
                r2 = step.breakdown.r2_gap
                sim = step.breakdown.similarity
                weight = step.breakdown.type_weight
                total = step.breakdown.total
            rows.append(
                [
                    step.position + 1,
                    step.item_id,
                    step.item_type,
                    r1,
                    r2,
                    sim,
                    weight,
                    total,
                    step.candidates_considered,
                    ", ".join(step.new_ideal_topics[:4])
                    + ("…" if len(step.new_ideal_topics) > 4 else ""),
                ]
            )
        return render_table(
            ["#", "item", "type", "r1", "r2", "Sim", "w", "R",
             "cands", "new ideal topics"],
            rows,
            title="Plan explanation (Eq. 2 breakdown per step)",
        )


def explain_plan(
    planner: RLPlanner,
    start_item_id: str,
    plan: Optional[Plan] = None,
) -> PlanExplanation:
    """Replay a recommendation and record the decision evidence.

    When ``plan`` is omitted the planner recommends one first; passing a
    plan explains that exact sequence instead (useful for gold plans or
    baselines under RL-Planner's reward).
    """
    if plan is None:
        plan = planner.recommend(start_item_id)
    reward = planner.env.reward
    ideal = planner.task.soft.ideal_topics

    builder = PlanBuilder(planner.catalog)
    steps: List[StepExplanation] = []
    for position, item in enumerate(plan.items):
        if position == 0:
            breakdown = None
            candidates = 1
        else:
            candidates = len(
                reward.mask_actions(builder, builder.remaining_items())
            )
            breakdown = reward.breakdown(builder, item)
        gained = tuple(sorted(builder.new_topics(item) & ideal))
        steps.append(
            StepExplanation(
                position=position,
                item_id=item.item_id,
                item_name=item.name,
                item_type=item.item_type.value,
                breakdown=breakdown,
                new_ideal_topics=gained,
                candidates_considered=candidates,
            )
        )
        builder.add(item)

    return PlanExplanation(plan=plan, steps=tuple(steps))
