"""High-level experiment runners shared by the benchmark suite.

Each runner reproduces one experimental protocol of Section IV:

* :func:`compare_planners` — Figure 1's bar groups (RL-Planner vs OMEGA
  vs EDA vs gold, averaged over runs).
* :func:`run_user_study` — Table IV's four-question panel ratings.
* :func:`run_transfer` — the Section IV-D transfer-learning case study.

Sweep (Tables IX–XVI) and timing (Figure 2) protocols live in
:mod:`repro.analysis.robustness` and :mod:`repro.analysis.scalability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import PlanningError
from ..core.planner import RLPlanner
from ..core.plan import Plan
from ..core.scoring import PlanScore
from ..datasets import Dataset
from ..userstudy import SimulatedStudy
from .stats import Summary, summarize


@dataclass(frozen=True)
class ComparisonResult:
    """Figure-1 numbers for one dataset."""

    dataset: str
    rl_planner: Summary
    eda: Summary
    omega: Summary
    gold: float
    rl_validity: float

    def as_rows(self) -> List[Tuple[str, float]]:
        """(system, mean score) rows in the paper's bar order."""
        return [
            ("RL-Planner", self.rl_planner.mean),
            ("OMEGA", self.omega.mean),
            ("EDA", self.eda.mean),
            ("Gold Standard", self.gold),
        ]


def compare_planners(
    dataset: Dataset,
    runs: int = 10,
    episodes: Optional[int] = None,
    workers: int = 1,
    root_seed: Optional[int] = None,
    out_dir=None,
    fault_injector=None,
) -> ComparisonResult:
    """Average scores of RL-Planner, EDA, OMEGA, and gold over ``runs``.

    Each run re-seeds the planners (the paper presents averages over 10
    runs); the dataset itself is fixed so all systems see the same
    catalog and task.  Runs are embarrassingly parallel: ``workers > 1``
    fans them across a process pool via :mod:`repro.runner` with scores
    identical to the serial path (seeds are fixed before dispatch).

    ``root_seed=None`` keeps the paper's run-index seeding; an integer
    derives ``SeedSequence`` child seeds from it instead (statistically
    independent runs).  ``out_dir`` additionally writes a run manifest
    and a per-episode JSONL metrics stream.  ``fault_injector`` arms a
    :class:`repro.runner.FaultInjector` around every run — because task
    seeds are fixed before dispatch, a batch that survives injected
    worker kills or transient errors still scores identically to an
    undisturbed one (the chaos suite asserts exactly this).
    """
    from ..runner import (
        ExperimentRunner,
        RunManifest,
        RunSpec,
        child_seeds,
        execute_spec,
        prime_dataset_cache,
        write_batch_artifacts,
    )

    dataset_seed = int(dataset.default_config.seed or 0)
    prime_dataset_cache(dataset, dataset_seed)
    if root_seed is None:
        seeds = list(range(runs))
    else:
        seeds = child_seeds(root_seed, runs)
    specs = [
        RunSpec(
            kind="compare_run",
            dataset_key=dataset.key,
            dataset_seed=dataset_seed,
            seed=seed,
            index=run,
            params={
                "episodes": episodes,
                "collect_stats": out_dir is not None,
            },
        )
        for run, seed in enumerate(seeds)
    ]
    runner = ExperimentRunner(
        workers=workers, fault_injector=fault_injector
    )
    results = runner.map(execute_spec, specs, keys=[s.key for s in specs])
    failures = [r for r in results if not r.ok]
    if failures:
        detail = "; ".join(
            f"{r.key}: {(r.error or '').splitlines()[-1]}" for r in failures
        )
        raise PlanningError(
            f"{len(failures)}/{runs} comparison runs failed: {detail}"
        )

    gold = 0.0
    if dataset.gold_plan is not None:
        # Score gold under the same seeded config as run 0's planners so
        # all four bars come from identically configured scorers.
        scorer = RLPlanner(
            dataset.catalog,
            dataset.task,
            dataset.default_config.replace(seed=seeds[0] if seeds else 0),
            mode=dataset.mode,
        ).scorer
        gold = scorer.score(dataset.gold_plan).value

    comparison = ComparisonResult(
        dataset=dataset.key,
        rl_planner=summarize([r.value["rl"] for r in results]),
        eda=summarize([r.value["eda"] for r in results]),
        omega=summarize([r.value["omega"] for r in results]),
        gold=gold,
        rl_validity=sum(r.value["rl_valid"] for r in results) / runs,
    )
    if out_dir is not None:
        manifest = RunManifest(
            protocol="compare",
            dataset=dataset.key,
            dataset_seed=dataset_seed,
            root_seed=root_seed,
            workers=workers,
            status="complete",
            result={
                "rl_mean": comparison.rl_planner.mean,
                "eda_mean": comparison.eda.mean,
                "omega_mean": comparison.omega.mean,
                "gold": gold,
                "rl_validity": comparison.rl_validity,
            },
        )
        write_batch_artifacts(out_dir, manifest, results)
    return comparison


@dataclass(frozen=True)
class UserStudyResult:
    """Table-IV numbers for one domain."""

    dataset: str
    ratings: Dict[str, Dict[str, float]]

    def rl_mean(self, question: str) -> float:
        """Panel mean for RL-Planner on one question."""
        return self.ratings[question]["rl_planner"]

    def gold_mean(self, question: str) -> float:
        """Panel mean for the gold standard on one question."""
        return self.ratings[question]["gold"]


def run_user_study(
    dataset: Dataset,
    num_raters: int = 25,
    seed: int = 0,
    episodes: Optional[int] = None,
) -> UserStudyResult:
    """Simulate the Table IV protocol on one dataset."""
    config = dataset.default_config.replace(seed=seed)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    planner.fit(start_item_ids=[dataset.default_start], episodes=episodes)
    rl_plan = planner.recommend(dataset.default_start)
    gold_plan = dataset.gold_plan
    if gold_plan is None:
        raise ValueError(
            f"dataset {dataset.key!r} was loaded without a gold plan"
        )
    study = SimulatedStudy(
        dataset.task, mode=dataset.mode, num_raters=num_raters, seed=seed
    )
    return UserStudyResult(
        dataset=dataset.key, ratings=study.compare(rl_plan, gold_plan)
    )


@dataclass(frozen=True)
class TransferOutcome:
    """One direction of a Section IV-D transfer case study."""

    source: str
    target: str
    plan: Plan
    score: PlanScore
    entry_coverage: float

    @property
    def is_good(self) -> bool:
        """The paper's "good" sequences meet all hard constraints."""
        return self.score.is_valid


def run_transfer(
    source: Dataset,
    target: Dataset,
    strategy: str = "auto",
    seed: int = 0,
    episodes: Optional[int] = None,
) -> TransferOutcome:
    """Learn on ``source``, apply (without retraining) to ``target``."""
    config = source.default_config.replace(seed=seed)
    planner = RLPlanner(
        source.catalog, source.task, config, mode=source.mode
    )
    planner.fit(start_item_ids=[source.default_start], episodes=episodes)
    target_config = target.default_config.replace(seed=seed)
    transferred, result = planner.transfer_to(
        target.catalog, target.task, strategy=strategy, config=target_config
    )
    plan, score = transferred.recommend_scored(target.default_start)
    return TransferOutcome(
        source=source.key,
        target=target.key,
        plan=plan,
        score=score,
        entry_coverage=result.report.entry_coverage,
    )
