"""Learning-curve analysis: convergence of the SARSA policy.

The paper asserts SARSA "is known to converge faster and with fewer
errors"; these helpers make convergence measurable on our runs: a
smoothed episode-reward curve, a plateau detector, and a compact
convergence summary used by tests and the notebook-style examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.sarsa import LearningResult


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Simple trailing moving average (window clamped to the prefix).

    Output has the same length as the input; entry i averages the last
    ``min(i+1, window)`` values.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    out: List[float] = []
    acc = 0.0
    for i, value in enumerate(values):
        acc += value
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


@dataclass(frozen=True)
class ConvergenceSummary:
    """Where and how the learning curve settled."""

    episodes: int
    final_level: float
    peak_level: float
    converged_at: Optional[int]
    improved_fraction: float

    @property
    def converged(self) -> bool:
        """True when a plateau was detected before the final episode."""
        return self.converged_at is not None


def detect_convergence(
    rewards: Sequence[float],
    window: int = 20,
    tolerance: float = 0.05,
) -> ConvergenceSummary:
    """Detect the episode where the smoothed curve plateaus.

    The curve is considered converged at episode ``i`` when every later
    smoothed value stays within ``tolerance`` (relative) of the
    smoothed value at ``i``.  Returns the earliest such episode.
    """
    n = len(rewards)
    if n == 0:
        return ConvergenceSummary(0, 0.0, 0.0, None, 0.0)
    smooth = moving_average(rewards, window)
    final = smooth[-1]
    peak = max(smooth)
    scale = max(abs(peak), 1e-9)

    converged_at: Optional[int] = None
    for i in range(n):
        level = smooth[i]
        if all(
            abs(later - level) <= tolerance * scale
            for later in smooth[i:]
        ):
            converged_at = i
            break
    if converged_at is not None and converged_at >= n - 1:
        converged_at = None  # plateau only at the very end = not settled

    first = smooth[0]
    improved = (final - first) / scale if n > 1 else 0.0
    return ConvergenceSummary(
        episodes=n,
        final_level=final,
        peak_level=peak,
        converged_at=converged_at,
        improved_fraction=improved,
    )


def summarize_learning(
    result: LearningResult, window: int = 20, tolerance: float = 0.05
) -> ConvergenceSummary:
    """Convergence summary of a :class:`LearningResult`'s reward trace."""
    return detect_convergence(
        result.reward_trace(), window=window, tolerance=tolerance
    )


def render_learning_curve(
    rewards: Sequence[float],
    width: int = 60,
    height: int = 10,
    window: int = 10,
) -> str:
    """Tiny ASCII sparkline of the smoothed learning curve."""
    if not rewards:
        return "(empty learning curve)"
    smooth = moving_average(rewards, window)
    lo, hi = min(smooth), max(smooth)
    span = hi - lo if hi > lo else 1.0
    # Downsample to `width` columns.
    columns: List[float] = []
    for c in range(min(width, len(smooth))):
        start = c * len(smooth) // min(width, len(smooth))
        end = (c + 1) * len(smooth) // min(width, len(smooth))
        chunk = smooth[start:max(end, start + 1)]
        columns.append(sum(chunk) / len(chunk))
    rows: List[str] = []
    for r in range(height, 0, -1):
        threshold = lo + span * (r - 0.5) / height
        rows.append(
            "".join("#" if v >= threshold else " " for v in columns)
        )
    rows.append("-" * len(columns))
    rows.append(f"episodes 1..{len(rewards)}  reward {lo:.2f}..{hi:.2f}")
    return "\n".join(rows)
