"""Scalability measurements (Figure 2).

Figure 2 plots (a)(c) policy-learning time vs the number of episodes —
expected to grow linearly — and (b)(d) the time to recommend a plan from
the learned policy — expected to stay interactive (well under a second)
regardless of how long training ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.exceptions import PlanningError
from ..datasets import Dataset
from ..runner import (
    ExperimentRunner,
    RunSpec,
    execute_spec,
    prime_dataset_cache,
)
from .stats import linear_fit, pearson_r


@dataclass(frozen=True)
class TimingPoint:
    """Wall-clock measurements at one episode count."""

    episodes: int
    learn_seconds: float
    recommend_seconds: float


@dataclass(frozen=True)
class ScalabilityResult:
    """The Figure-2 series for one dataset."""

    dataset: str
    points: Tuple[TimingPoint, ...]

    def learn_series(self) -> Tuple[List[int], List[float]]:
        """(episodes, learn time) pairs — Fig. 2(a)(c)."""
        return (
            [p.episodes for p in self.points],
            [p.learn_seconds for p in self.points],
        )

    def recommend_series(self) -> Tuple[List[int], List[float]]:
        """(episodes, recommendation time) pairs — Fig. 2(b)(d)."""
        return (
            [p.episodes for p in self.points],
            [p.recommend_seconds for p in self.points],
        )

    def learning_linearity(self) -> float:
        """Pearson r of learn time vs episodes (paper: linear growth)."""
        xs, ys = self.learn_series()
        return pearson_r([float(x) for x in xs], ys)

    def learning_slope(self) -> float:
        """Seconds per extra episode from a least-squares fit."""
        xs, ys = self.learn_series()
        slope, _ = linear_fit([float(x) for x in xs], ys)
        return slope

    def max_recommend_seconds(self) -> float:
        """Worst-case recommendation latency (interactivity claim)."""
        return max(p.recommend_seconds for p in self.points)


def measure_scalability(
    dataset: Dataset,
    episode_grid: Sequence[int] = (100, 200, 300, 500, 1000),
    seed: int = 0,
    recommend_repeats: int = 5,
    workers: int = 1,
    fault_injector=None,
) -> ScalabilityResult:
    """Time learning and recommendation across an episode grid.

    Each grid point is one :class:`RunSpec`; ``workers > 1`` measures
    the points concurrently.  Timings are wall-clock and therefore noisy
    under contention — use parallel mode for smoke runs, serial mode for
    publication-quality numbers.  ``fault_injector`` (chaos drills)
    perturbs wall-clock but never which measurements come back.
    """
    dataset_seed = int(dataset.default_config.seed or 0)
    prime_dataset_cache(dataset, dataset_seed)
    specs = [
        RunSpec(
            kind="timing",
            dataset_key=dataset.key,
            dataset_seed=dataset_seed,
            seed=seed,
            index=index,
            params={
                "episodes": int(episodes),
                "recommend_repeats": recommend_repeats,
            },
        )
        for index, episodes in enumerate(episode_grid)
    ]
    runner = ExperimentRunner(
        workers=workers, fault_injector=fault_injector
    )
    results = runner.map(execute_spec, specs, keys=[s.key for s in specs])
    failures = [r for r in results if not r.ok]
    if failures:
        detail = "; ".join(
            f"{r.key}: {(r.error or '').splitlines()[-1]}" for r in failures
        )
        raise PlanningError(
            f"{len(failures)}/{len(specs)} timing tasks failed: {detail}"
        )
    points = [
        TimingPoint(
            episodes=int(r.value["episodes"]),
            learn_seconds=float(r.value["learn_seconds"]),
            recommend_seconds=float(r.value["recommend_seconds"]),
        )
        for r in results
    ]
    return ScalabilityResult(dataset=dataset.key, points=tuple(points))
