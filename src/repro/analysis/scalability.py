"""Scalability measurements (Figure 2).

Figure 2 plots (a)(c) policy-learning time vs the number of episodes —
expected to grow linearly — and (b)(d) the time to recommend a plan from
the learned policy — expected to stay interactive (well under a second)
regardless of how long training ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.planner import RLPlanner
from ..datasets import Dataset
from .stats import linear_fit, pearson_r


@dataclass(frozen=True)
class TimingPoint:
    """Wall-clock measurements at one episode count."""

    episodes: int
    learn_seconds: float
    recommend_seconds: float


@dataclass(frozen=True)
class ScalabilityResult:
    """The Figure-2 series for one dataset."""

    dataset: str
    points: Tuple[TimingPoint, ...]

    def learn_series(self) -> Tuple[List[int], List[float]]:
        """(episodes, learn time) pairs — Fig. 2(a)(c)."""
        return (
            [p.episodes for p in self.points],
            [p.learn_seconds for p in self.points],
        )

    def recommend_series(self) -> Tuple[List[int], List[float]]:
        """(episodes, recommendation time) pairs — Fig. 2(b)(d)."""
        return (
            [p.episodes for p in self.points],
            [p.recommend_seconds for p in self.points],
        )

    def learning_linearity(self) -> float:
        """Pearson r of learn time vs episodes (paper: linear growth)."""
        xs, ys = self.learn_series()
        return pearson_r([float(x) for x in xs], ys)

    def learning_slope(self) -> float:
        """Seconds per extra episode from a least-squares fit."""
        xs, ys = self.learn_series()
        slope, _ = linear_fit([float(x) for x in xs], ys)
        return slope

    def max_recommend_seconds(self) -> float:
        """Worst-case recommendation latency (interactivity claim)."""
        return max(p.recommend_seconds for p in self.points)


def measure_scalability(
    dataset: Dataset,
    episode_grid: Sequence[int] = (100, 200, 300, 500, 1000),
    seed: int = 0,
    recommend_repeats: int = 5,
) -> ScalabilityResult:
    """Time learning and recommendation across an episode grid."""
    points: List[TimingPoint] = []
    for episodes in episode_grid:
        config = dataset.default_config.replace(seed=seed)
        planner = RLPlanner(
            dataset.catalog, dataset.task, config, mode=dataset.mode
        )
        t0 = time.perf_counter()
        planner.fit(
            start_item_ids=[dataset.default_start], episodes=episodes
        )
        learn_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(recommend_repeats):
            planner.recommend(dataset.default_start)
        recommend_seconds = (time.perf_counter() - t0) / recommend_repeats

        points.append(
            TimingPoint(
                episodes=int(episodes),
                learn_seconds=learn_seconds,
                recommend_seconds=recommend_seconds,
            )
        )
    return ScalabilityResult(dataset=dataset.key, points=tuple(points))
