"""One-at-a-time parameter sweeps (Tables IX–XVI).

The paper varies one parameter while holding the rest at Table III
defaults and reports the recommendation score per value, for RL-Planner
under both similarity aggregations and (where applicable) for EDA.
:class:`SweepRunner` reproduces that protocol for any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..baselines import EDAPlanner
from ..core.config import PlannerConfig, RewardWeights
from ..core.planner import RLPlanner
from ..core.similarity import SimilarityMode
from ..datasets import Dataset
from ..domains.trips import build_trip_task
from .stats import summarize


@dataclass(frozen=True)
class SweepPoint:
    """Scores at one parameter value."""

    parameter: str
    value: object
    rl_avg_sim: float
    rl_min_sim: float
    eda: Optional[float]


@dataclass(frozen=True)
class SweepResult:
    """A full one-parameter sweep (one block of a robustness table)."""

    dataset: str
    parameter: str
    points: Tuple[SweepPoint, ...]

    def best(self, which: str = "rl_avg_sim") -> SweepPoint:
        """The point with the highest score for the given series."""
        return max(self.points, key=lambda p: getattr(p, which))

    def series(self, which: str = "rl_avg_sim") -> List[float]:
        """One score series across the sweep values."""
        return [getattr(p, which) for p in self.points]


# Sweep grids straight from Tables IX–XVI.
EPISODE_GRID: Tuple[int, ...] = (100, 200, 300, 500, 1000)
LEARNING_RATE_GRID: Tuple[float, ...] = (0.5, 0.6, 0.75, 0.8, 0.95)
DISCOUNT_GRID: Tuple[float, ...] = (0.5, 0.6, 0.9, 0.95, 0.99)
COVERAGE_GRID: Tuple[float, ...] = (0.0025, 0.005, 0.01, 0.0175, 0.02)
TYPE_WEIGHT_GRID: Tuple[Tuple[float, float], ...] = (
    (0.4, 0.6), (0.8, 0.2), (0.5, 0.5), (0.6, 0.4), (0.65, 0.35),
)
DELTA_BETA_GRID: Tuple[Tuple[float, float], ...] = (
    (0.4, 0.6), (0.45, 0.55), (0.5, 0.5), (0.55, 0.45), (0.6, 0.4),
)
TRIP_DISTANCE_GRID: Tuple[float, ...] = (4.0, 5.0)
TRIP_TIME_GRID: Tuple[float, ...] = (5.0, 6.0, 8.0)


class SweepRunner:
    """Run the paper's robustness protocol on one dataset.

    Parameters
    ----------
    dataset:
        The TPP instance (with Table III defaults attached).
    runs:
        Averaging runs per sweep point (the paper uses 10; benches use
        a smaller number to keep wall-clock sane — spread is tiny).
    episodes:
        Optional override of N for every point *except* the N sweep.
    """

    def __init__(
        self, dataset: Dataset, runs: int = 3, episodes: Optional[int] = None
    ) -> None:
        self.dataset = dataset
        self.runs = runs
        self.episodes = episodes

    # ------------------------------------------------------------------
    # Scoring one configuration
    # ------------------------------------------------------------------

    def score_config(
        self,
        config: PlannerConfig,
        task=None,
        episodes: Optional[int] = None,
    ) -> float:
        """Mean RL-Planner score over ``runs`` for one configuration."""
        task = task if task is not None else self.dataset.task
        scores = []
        for run in range(self.runs):
            planner = RLPlanner(
                self.dataset.catalog,
                task,
                config.replace(seed=run),
                mode=self.dataset.mode,
            )
            planner.fit(
                start_item_ids=[self.dataset.default_start],
                episodes=episodes if episodes is not None else self.episodes,
            )
            _, score = planner.recommend_scored(self.dataset.default_start)
            scores.append(score.value)
        return summarize(scores).mean

    def score_eda(self, config: PlannerConfig, task=None) -> float:
        """Mean EDA score over ``runs`` for one configuration."""
        task = task if task is not None else self.dataset.task
        scorer = RLPlanner(
            self.dataset.catalog, task, config, mode=self.dataset.mode
        ).scorer
        scores = []
        for run in range(self.runs):
            eda = EDAPlanner(
                self.dataset.catalog,
                task,
                config.replace(seed=run),
                mode=self.dataset.mode,
                seed=run,
            )
            plan = eda.recommend(self.dataset.default_start)
            scores.append(scorer.score(plan).value)
        return summarize(scores).mean

    # ------------------------------------------------------------------
    # Generic sweep machinery
    # ------------------------------------------------------------------

    def _sweep(
        self,
        parameter: str,
        values: Sequence[object],
        make_config: Callable[[PlannerConfig, object], PlannerConfig],
        eda_sensitive: bool,
        episodes_from_value: bool = False,
    ) -> SweepResult:
        base = self.dataset.default_config
        points: List[SweepPoint] = []
        for value in values:
            episodes = int(value) if episodes_from_value else None
            avg_cfg = make_config(base, value).replace(
                similarity=SimilarityMode.AVERAGE
            )
            min_cfg = make_config(base, value).replace(
                similarity=SimilarityMode.MINIMUM
            )
            eda_score = None
            if eda_sensitive:
                eda_score = self.score_eda(make_config(base, value))
            points.append(
                SweepPoint(
                    parameter=parameter,
                    value=value,
                    rl_avg_sim=self.score_config(avg_cfg, episodes=episodes),
                    rl_min_sim=self.score_config(min_cfg, episodes=episodes),
                    eda=eda_score,
                )
            )
        return SweepResult(
            dataset=self.dataset.key,
            parameter=parameter,
            points=tuple(points),
        )

    # ------------------------------------------------------------------
    # The paper's sweeps
    # ------------------------------------------------------------------

    def sweep_episodes(
        self, values: Sequence[int] = EPISODE_GRID
    ) -> SweepResult:
        """Vary N (EDA is model-free: not applicable)."""
        return self._sweep(
            "episodes", values, lambda c, v: c, eda_sensitive=False,
            episodes_from_value=True,
        )

    def sweep_learning_rate(
        self, values: Sequence[float] = LEARNING_RATE_GRID
    ) -> SweepResult:
        """Vary alpha."""
        return self._sweep(
            "learning_rate",
            values,
            lambda c, v: c.replace(learning_rate=float(v)),
            eda_sensitive=False,
        )

    def sweep_discount(
        self, values: Sequence[float] = DISCOUNT_GRID
    ) -> SweepResult:
        """Vary gamma."""
        return self._sweep(
            "discount",
            values,
            lambda c, v: c.replace(discount=float(v)),
            eda_sensitive=False,
        )

    def sweep_coverage_threshold(
        self, values: Sequence[float] = COVERAGE_GRID
    ) -> SweepResult:
        """Vary epsilon (EDA shares the reward, so it is swept too)."""
        return self._sweep(
            "coverage_threshold",
            values,
            lambda c, v: c.replace(coverage_threshold=float(v)),
            eda_sensitive=True,
        )

    def sweep_type_weights(
        self, values: Sequence[Tuple[float, float]] = TYPE_WEIGHT_GRID
    ) -> SweepResult:
        """Vary (w1, w2)."""
        def make(config: PlannerConfig, value) -> PlannerConfig:
            w1, w2 = value
            weights = RewardWeights(
                delta=config.weights.delta,
                beta=config.weights.beta,
                w_primary=w1,
                w_secondary=w2,
            )
            return config.replace(weights=weights)

        return self._sweep("w1_w2", values, make, eda_sensitive=True)

    def sweep_delta_beta(
        self, values: Sequence[Tuple[float, float]] = DELTA_BETA_GRID
    ) -> SweepResult:
        """Vary (delta, beta)."""
        def make(config: PlannerConfig, value) -> PlannerConfig:
            delta, beta = value
            weights = RewardWeights(
                delta=delta,
                beta=beta,
                w_primary=config.weights.w_primary,
                w_secondary=config.weights.w_secondary,
                category_weights=config.weights.category_weights,
            )
            return config.replace(weights=weights)

        return self._sweep("delta_beta", values, make, eda_sensitive=True)

    def sweep_starting_points(
        self, values: Sequence[str]
    ) -> SweepResult:
        """Vary s1 (the recommendation starting item)."""
        base = self.dataset.default_config
        points: List[SweepPoint] = []
        for start in values:
            avg_scores, min_scores = [], []
            for run in range(self.runs):
                for mode_scores, sim in (
                    (avg_scores, SimilarityMode.AVERAGE),
                    (min_scores, SimilarityMode.MINIMUM),
                ):
                    planner = RLPlanner(
                        self.dataset.catalog,
                        self.dataset.task,
                        base.replace(seed=run, similarity=sim),
                        mode=self.dataset.mode,
                    )
                    planner.fit(
                        start_item_ids=[start], episodes=self.episodes
                    )
                    _, score = planner.recommend_scored(start)
                    mode_scores.append(score.value)
            points.append(
                SweepPoint(
                    parameter="start",
                    value=start,
                    rl_avg_sim=summarize(avg_scores).mean,
                    rl_min_sim=summarize(min_scores).mean,
                    eda=None,
                )
            )
        return SweepResult(
            dataset=self.dataset.key, parameter="start", points=tuple(points)
        )

    # Trip-only sweeps -------------------------------------------------

    def sweep_trip_distance(
        self, values: Sequence[float] = TRIP_DISTANCE_GRID
    ) -> SweepResult:
        """Vary the distance threshold d (trips only)."""
        return self._sweep_trip_task(
            "distance_threshold",
            values,
            lambda spec, catalog, v: build_trip_task(
                spec, catalog, distance_threshold=float(v)
            ),
        )

    def sweep_trip_time(
        self, values: Sequence[float] = TRIP_TIME_GRID
    ) -> SweepResult:
        """Vary the time threshold t (trips only)."""
        return self._sweep_trip_task(
            "time_threshold",
            values,
            lambda spec, catalog, v: build_trip_task(
                spec, catalog, time_budget=float(v)
            ),
        )

    def _sweep_trip_task(
        self, parameter: str, values: Sequence[float], make_task
    ) -> SweepResult:
        from ..domains.trips import CITIES

        spec = CITIES[self.dataset.key]
        base = self.dataset.default_config
        points: List[SweepPoint] = []
        for value in values:
            task = make_task(spec, self.dataset.catalog, value)
            avg = self.score_config(
                base.replace(similarity=SimilarityMode.AVERAGE), task=task
            )
            mn = self.score_config(
                base.replace(similarity=SimilarityMode.MINIMUM), task=task
            )
            eda = self.score_eda(base, task=task)
            points.append(
                SweepPoint(
                    parameter=parameter,
                    value=value,
                    rl_avg_sim=avg,
                    rl_min_sim=mn,
                    eda=eda,
                )
            )
        return SweepResult(
            dataset=self.dataset.key,
            parameter=parameter,
            points=tuple(points),
        )
