"""One-at-a-time parameter sweeps (Tables IX–XVI).

The paper varies one parameter while holding the rest at Table III
defaults and reports the recommendation score per value, for RL-Planner
under both similarity aggregations and (where applicable) for EDA.
:class:`SweepRunner` reproduces that protocol for any dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import PlannerConfig, RewardWeights
from ..core.exceptions import PlanningError
from ..core.similarity import SimilarityMode
from ..datasets import Dataset
from ..domains.trips import build_trip_task
from ..runner import (
    ExperimentRunner,
    RunSpec,
    execute_spec,
    prime_dataset_cache,
)
from .stats import summarize


@dataclass(frozen=True)
class SweepPoint:
    """Scores at one parameter value."""

    parameter: str
    value: object
    rl_avg_sim: float
    rl_min_sim: float
    eda: Optional[float]


@dataclass(frozen=True)
class SweepResult:
    """A full one-parameter sweep (one block of a robustness table)."""

    dataset: str
    parameter: str
    points: Tuple[SweepPoint, ...]

    def best(self, which: str = "rl_avg_sim") -> SweepPoint:
        """The point with the highest score for the given series."""
        return max(self.points, key=lambda p: getattr(p, which))

    def series(self, which: str = "rl_avg_sim") -> List[float]:
        """One score series across the sweep values."""
        return [getattr(p, which) for p in self.points]


# Sweep grids straight from Tables IX–XVI.
EPISODE_GRID: Tuple[int, ...] = (100, 200, 300, 500, 1000)
LEARNING_RATE_GRID: Tuple[float, ...] = (0.5, 0.6, 0.75, 0.8, 0.95)
DISCOUNT_GRID: Tuple[float, ...] = (0.5, 0.6, 0.9, 0.95, 0.99)
COVERAGE_GRID: Tuple[float, ...] = (0.0025, 0.005, 0.01, 0.0175, 0.02)
TYPE_WEIGHT_GRID: Tuple[Tuple[float, float], ...] = (
    (0.4, 0.6), (0.8, 0.2), (0.5, 0.5), (0.6, 0.4), (0.65, 0.35),
)
DELTA_BETA_GRID: Tuple[Tuple[float, float], ...] = (
    (0.4, 0.6), (0.45, 0.55), (0.5, 0.5), (0.55, 0.45), (0.6, 0.4),
)
TRIP_DISTANCE_GRID: Tuple[float, ...] = (4.0, 5.0)
TRIP_TIME_GRID: Tuple[float, ...] = (5.0, 6.0, 8.0)


class SweepRunner:
    """Run the paper's robustness protocol on one dataset.

    Parameters
    ----------
    dataset:
        The TPP instance (with Table III defaults attached).
    runs:
        Averaging runs per sweep point (the paper uses 10; benches use
        a smaller number to keep wall-clock sane — spread is tiny).
    episodes:
        Optional override of N for every point *except* the N sweep.
    """

    def __init__(
        self,
        dataset: Dataset,
        runs: int = 3,
        episodes: Optional[int] = None,
        workers: int = 1,
    ) -> None:
        self.dataset = dataset
        self.runs = runs
        self.episodes = episodes
        self.workers = workers
        self._dataset_seed = int(dataset.default_config.seed or 0)
        prime_dataset_cache(dataset, self._dataset_seed)

    # ------------------------------------------------------------------
    # Spec plumbing
    # ------------------------------------------------------------------

    def _rl_spec(
        self,
        index: int,
        run: int,
        config: PlannerConfig,
        task=None,
        episodes: Optional[int] = None,
        start: Optional[str] = None,
    ) -> RunSpec:
        params = {
            "config": config.replace(seed=run),
            "episodes": episodes if episodes is not None else self.episodes,
        }
        if task is not None:
            params["task"] = task
        if start is not None:
            params["start"] = start
        return RunSpec(
            kind="rl_score",
            dataset_key=self.dataset.key,
            dataset_seed=self._dataset_seed,
            seed=run,
            index=index,
            params=params,
        )

    def _eda_spec(
        self, index: int, run: int, config: PlannerConfig, task=None
    ) -> RunSpec:
        params = {"config": config.replace(seed=run)}
        if task is not None:
            params["task"] = task
        return RunSpec(
            kind="eda_score",
            dataset_key=self.dataset.key,
            dataset_seed=self._dataset_seed,
            seed=run,
            index=index,
            params=params,
        )

    def _execute(self, specs: List[RunSpec]):
        runner = ExperimentRunner(workers=self.workers)
        results = runner.map(
            execute_spec, specs, keys=[s.key for s in specs]
        )
        failures = [r for r in results if not r.ok]
        if failures:
            detail = "; ".join(
                f"{r.key}: {(r.error or '').splitlines()[-1]}"
                for r in failures
            )
            raise PlanningError(
                f"{len(failures)}/{len(specs)} sweep tasks failed: {detail}"
            )
        return results

    # ------------------------------------------------------------------
    # Scoring one configuration
    # ------------------------------------------------------------------

    def score_config(
        self,
        config: PlannerConfig,
        task=None,
        episodes: Optional[int] = None,
    ) -> float:
        """Mean RL-Planner score over ``runs`` for one configuration."""
        specs = [
            self._rl_spec(run, run, config, task=task, episodes=episodes)
            for run in range(self.runs)
        ]
        results = self._execute(specs)
        return summarize([r.value["score"] for r in results]).mean

    def score_eda(self, config: PlannerConfig, task=None) -> float:
        """Mean EDA score over ``runs`` for one configuration."""
        specs = [
            self._eda_spec(run, run, config, task=task)
            for run in range(self.runs)
        ]
        results = self._execute(specs)
        return summarize([r.value["score"] for r in results]).mean

    # ------------------------------------------------------------------
    # Generic sweep machinery
    # ------------------------------------------------------------------

    def _sweep(
        self,
        parameter: str,
        values: Sequence[object],
        make_config: Callable[[PlannerConfig, object], PlannerConfig],
        eda_sensitive: bool,
        episodes_from_value: bool = False,
    ) -> SweepResult:
        # Every (value, series, run) leg becomes one spec so the whole
        # sweep fans across the pool at once, not one point at a time.
        base = self.dataset.default_config
        specs: List[RunSpec] = []
        slots: List[Tuple[int, str]] = []
        for vi, value in enumerate(values):
            episodes = int(value) if episodes_from_value else None
            for series, sim in (
                ("avg", SimilarityMode.AVERAGE),
                ("min", SimilarityMode.MINIMUM),
            ):
                cfg = make_config(base, value).replace(similarity=sim)
                for run in range(self.runs):
                    specs.append(
                        self._rl_spec(len(specs), run, cfg, episodes=episodes)
                    )
                    slots.append((vi, series))
            if eda_sensitive:
                cfg = make_config(base, value)
                for run in range(self.runs):
                    specs.append(self._eda_spec(len(specs), run, cfg))
                    slots.append((vi, "eda"))
        results = self._execute(specs)
        buckets: Dict[Tuple[int, str], List[float]] = {}
        for slot, result in zip(slots, results):
            buckets.setdefault(slot, []).append(result.value["score"])
        points = [
            SweepPoint(
                parameter=parameter,
                value=value,
                rl_avg_sim=summarize(buckets[(vi, "avg")]).mean,
                rl_min_sim=summarize(buckets[(vi, "min")]).mean,
                eda=(
                    summarize(buckets[(vi, "eda")]).mean
                    if eda_sensitive
                    else None
                ),
            )
            for vi, value in enumerate(values)
        ]
        return SweepResult(
            dataset=self.dataset.key,
            parameter=parameter,
            points=tuple(points),
        )

    # ------------------------------------------------------------------
    # The paper's sweeps
    # ------------------------------------------------------------------

    def sweep_episodes(
        self, values: Sequence[int] = EPISODE_GRID
    ) -> SweepResult:
        """Vary N (EDA is model-free: not applicable)."""
        return self._sweep(
            "episodes", values, lambda c, v: c, eda_sensitive=False,
            episodes_from_value=True,
        )

    def sweep_learning_rate(
        self, values: Sequence[float] = LEARNING_RATE_GRID
    ) -> SweepResult:
        """Vary alpha."""
        return self._sweep(
            "learning_rate",
            values,
            lambda c, v: c.replace(learning_rate=float(v)),
            eda_sensitive=False,
        )

    def sweep_discount(
        self, values: Sequence[float] = DISCOUNT_GRID
    ) -> SweepResult:
        """Vary gamma."""
        return self._sweep(
            "discount",
            values,
            lambda c, v: c.replace(discount=float(v)),
            eda_sensitive=False,
        )

    def sweep_coverage_threshold(
        self, values: Sequence[float] = COVERAGE_GRID
    ) -> SweepResult:
        """Vary epsilon (EDA shares the reward, so it is swept too)."""
        return self._sweep(
            "coverage_threshold",
            values,
            lambda c, v: c.replace(coverage_threshold=float(v)),
            eda_sensitive=True,
        )

    def sweep_type_weights(
        self, values: Sequence[Tuple[float, float]] = TYPE_WEIGHT_GRID
    ) -> SweepResult:
        """Vary (w1, w2)."""
        def make(config: PlannerConfig, value) -> PlannerConfig:
            w1, w2 = value
            weights = RewardWeights(
                delta=config.weights.delta,
                beta=config.weights.beta,
                w_primary=w1,
                w_secondary=w2,
            )
            return config.replace(weights=weights)

        return self._sweep("w1_w2", values, make, eda_sensitive=True)

    def sweep_delta_beta(
        self, values: Sequence[Tuple[float, float]] = DELTA_BETA_GRID
    ) -> SweepResult:
        """Vary (delta, beta)."""
        def make(config: PlannerConfig, value) -> PlannerConfig:
            delta, beta = value
            weights = RewardWeights(
                delta=delta,
                beta=beta,
                w_primary=config.weights.w_primary,
                w_secondary=config.weights.w_secondary,
                category_weights=config.weights.category_weights,
            )
            return config.replace(weights=weights)

        return self._sweep("delta_beta", values, make, eda_sensitive=True)

    def sweep_starting_points(
        self, values: Sequence[str]
    ) -> SweepResult:
        """Vary s1 (the recommendation starting item)."""
        base = self.dataset.default_config
        specs: List[RunSpec] = []
        slots: List[Tuple[int, str]] = []
        for si, start in enumerate(values):
            for series, sim in (
                ("avg", SimilarityMode.AVERAGE),
                ("min", SimilarityMode.MINIMUM),
            ):
                cfg = base.replace(similarity=sim)
                for run in range(self.runs):
                    specs.append(
                        self._rl_spec(len(specs), run, cfg, start=start)
                    )
                    slots.append((si, series))
        results = self._execute(specs)
        buckets: Dict[Tuple[int, str], List[float]] = {}
        for slot, result in zip(slots, results):
            buckets.setdefault(slot, []).append(result.value["score"])
        points = [
            SweepPoint(
                parameter="start",
                value=start,
                rl_avg_sim=summarize(buckets[(si, "avg")]).mean,
                rl_min_sim=summarize(buckets[(si, "min")]).mean,
                eda=None,
            )
            for si, start in enumerate(values)
        ]
        return SweepResult(
            dataset=self.dataset.key, parameter="start", points=tuple(points)
        )

    # Trip-only sweeps -------------------------------------------------

    def sweep_trip_distance(
        self, values: Sequence[float] = TRIP_DISTANCE_GRID
    ) -> SweepResult:
        """Vary the distance threshold d (trips only)."""
        return self._sweep_trip_task(
            "distance_threshold",
            values,
            lambda spec, catalog, v: build_trip_task(
                spec, catalog, distance_threshold=float(v)
            ),
        )

    def sweep_trip_time(
        self, values: Sequence[float] = TRIP_TIME_GRID
    ) -> SweepResult:
        """Vary the time threshold t (trips only)."""
        return self._sweep_trip_task(
            "time_threshold",
            values,
            lambda spec, catalog, v: build_trip_task(
                spec, catalog, time_budget=float(v)
            ),
        )

    def _sweep_trip_task(
        self, parameter: str, values: Sequence[float], make_task
    ) -> SweepResult:
        from ..domains.trips import CITIES

        spec = CITIES[self.dataset.key]
        base = self.dataset.default_config
        points: List[SweepPoint] = []
        for value in values:
            task = make_task(spec, self.dataset.catalog, value)
            avg = self.score_config(
                base.replace(similarity=SimilarityMode.AVERAGE), task=task
            )
            mn = self.score_config(
                base.replace(similarity=SimilarityMode.MINIMUM), task=task
            )
            eda = self.score_eda(base, task=task)
            points.append(
                SweepPoint(
                    parameter=parameter,
                    value=value,
                    rl_avg_sim=avg,
                    rl_min_sim=mn,
                    eda=eda,
                )
            )
        return SweepResult(
            dataset=self.dataset.key,
            parameter=parameter,
            points=tuple(points),
        )
