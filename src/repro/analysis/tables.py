"""ASCII table rendering for the benchmark harness.

Benches print the same rows/series the paper's tables report; this
module keeps the formatting in one place so every bench output looks
uniform (and diff-able across runs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Render one table cell (floats rounded, None as em-dash)."""
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Monospace table with a header rule, like the paper's tables."""
    rendered_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def render_sweep(result, precision: int = 2) -> str:
    """Render a :class:`~repro.analysis.robustness.SweepResult` block."""
    headers = [result.parameter, "RL (AvgSim)", "RL (MinSim)", "EDA"]
    rows = [
        [
            # %g keeps small sweep values (epsilon = 0.0025) readable
            # without padding the score columns to 4 decimals.
            f"{point.value:g}" if isinstance(point.value, float)
            else point.value,
            point.rl_avg_sim,
            point.rl_min_sim,
            point.eda,
        ]
        for point in result.points
    ]
    return render_table(
        headers,
        rows,
        title=f"{result.dataset}: sweep over {result.parameter}",
        precision=precision,
    )
