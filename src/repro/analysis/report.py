"""One-shot reproduction report.

``build_report`` runs a compact version of the paper's headline
experiments (Figure 1 comparison, a user-study round, the two transfer
case studies, and a scalability probe) and renders everything as one
text document — the artifact behind ``rl-planner report``.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

from ..datasets import load
from ..userstudy import Question
from .experiments import compare_planners, run_transfer, run_user_study
from .scalability import measure_scalability
from .tables import render_table


def build_report(
    dataset_keys: Sequence[str] = ("njit_dsct", "nyc"),
    runs: int = 3,
    episodes: Optional[int] = 300,
    include_transfer: bool = True,
    include_user_study: bool = True,
    include_scalability: bool = True,
) -> str:
    """Run the headline experiments and render a text report."""
    out = io.StringIO()
    out.write("RL-Planner reproduction report\n")
    out.write("=" * 31 + "\n")

    # ------------------------------------------------------------------
    # Figure 1: planner comparison
    # ------------------------------------------------------------------
    rows: List[List[object]] = []
    for key in dataset_keys:
        dataset = load(key, seed=0)
        result = compare_planners(dataset, runs=runs, episodes=episodes)
        rows.append(
            [
                key,
                result.rl_planner.mean,
                result.eda.mean,
                result.omega.mean,
                result.gold,
                f"{result.rl_validity:.0%}",
            ]
        )
    out.write("\n")
    out.write(
        render_table(
            ["dataset", "RL-Planner", "EDA", "OMEGA", "Gold",
             "validity"],
            rows,
            title=f"Planner comparison (Figure 1, {runs} runs)",
        )
    )
    out.write("\n")

    # ------------------------------------------------------------------
    # Table IV: user study
    # ------------------------------------------------------------------
    if include_user_study:
        study = run_user_study(
            load(dataset_keys[0], seed=0), num_raters=25, seed=0,
            episodes=episodes,
        )
        study_rows = [
            [q.value, study.rl_mean(q.value), study.gold_mean(q.value)]
            for q in Question
        ]
        out.write("\n")
        out.write(
            render_table(
                ["question", "RL-Planner", "Gold"],
                study_rows,
                title=f"Simulated user study (Table IV protocol, "
                      f"{dataset_keys[0]})",
            )
        )
        out.write("\n")

    # ------------------------------------------------------------------
    # Section IV-D: transfer
    # ------------------------------------------------------------------
    if include_transfer:
        transfer_rows = []
        for source_key, target_key, strategy in (
            ("njit_dsct", "njit_cs", "id"),
            ("nyc", "paris", "theme"),
        ):
            outcome = run_transfer(
                load(source_key, seed=0, with_gold=False),
                load(target_key, seed=0, with_gold=False),
                strategy=strategy,
                seed=0,
                episodes=episodes,
            )
            transfer_rows.append(
                [
                    f"{source_key} -> {target_key}",
                    strategy,
                    outcome.score.value,
                    "good" if outcome.is_good else "bad",
                    f"{outcome.entry_coverage:.0%}",
                ]
            )
        out.write("\n")
        out.write(
            render_table(
                ["direction", "mapping", "score", "outcome",
                 "Q coverage"],
                transfer_rows,
                title="Transfer learning (Tables V / VII protocol)",
            )
        )
        out.write("\n")

    # ------------------------------------------------------------------
    # Figure 2: scalability probe
    # ------------------------------------------------------------------
    if include_scalability:
        result = measure_scalability(
            load(dataset_keys[0], seed=0, with_gold=False),
            episode_grid=(100, 300, 500),
        )
        timing_rows = [
            [p.episodes, p.learn_seconds, p.recommend_seconds * 1000]
            for p in result.points
        ]
        out.write("\n")
        out.write(
            render_table(
                ["episodes", "learn (s)", "recommend (ms)"],
                timing_rows,
                title=f"Scalability probe (Figure 2, "
                      f"{dataset_keys[0]}); learning linearity r = "
                      f"{result.learning_linearity():.3f}",
                precision=3,
            )
        )
        out.write("\n")

    return out.getvalue()
