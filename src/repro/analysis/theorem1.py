"""Empirical verification of Theorem 1.

Theorem 1 claims the designed reward (plus the "valid action" semantics
this reproduction implements as masking) satisfies every hard
constraint of TPP.  The proof in the paper is a sketch; this module
turns the claim into a measurement: plan over a battery of randomized
TPP instances and report the hard-constraint satisfaction rate, broken
down by violation code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.config import PlannerConfig
from ..core.planner import RLPlanner
from ..datasets.synthetic import SyntheticSpec, generate_instance


@dataclass(frozen=True)
class Theorem1Result:
    """Outcome of the empirical Theorem-1 battery."""

    instances: int
    valid: int
    violation_counts: Tuple[Tuple[str, int], ...]

    @property
    def satisfaction_rate(self) -> float:
        """Fraction of instances whose plan met every hard constraint."""
        if self.instances == 0:
            return 0.0
        return self.valid / self.instances

    def describe(self) -> str:
        """One-paragraph summary."""
        rate = f"{self.satisfaction_rate:.0%}"
        if self.valid == self.instances:
            return (
                f"Theorem 1 held empirically on all {self.instances} "
                f"instances ({rate})."
            )
        detail = ", ".join(
            f"{code}: {count}" for code, count in self.violation_counts
        )
        return (
            f"Theorem 1 held on {self.valid}/{self.instances} "
            f"instances ({rate}); violations seen: {detail}."
        )


def verify_theorem1(
    instances: int = 10,
    episodes: int = 120,
    base_spec: Optional[SyntheticSpec] = None,
    seed0: int = 0,
    mask_invalid_actions: bool = True,
) -> Theorem1Result:
    """Plan over ``instances`` random TPP instances; count violations.

    ``mask_invalid_actions=False`` measures the naive reading of the
    paper (reward-only constraint handling) — the ablation that shows
    why the masking interpretation is load-bearing.
    """
    spec = base_spec if base_spec is not None else SyntheticSpec(
        num_items=25,
        num_topics=18,
        num_primary_items=8,
        plan_primary=3,
        plan_secondary=4,
    )
    valid = 0
    violations: Counter = Counter()
    for i in range(instances):
        catalog, task = generate_instance(spec, seed=seed0 + i)
        config = PlannerConfig(
            episodes=episodes,
            coverage_threshold=1.0,
            seed=seed0 + i,
            mask_invalid_actions=mask_invalid_actions,
        )
        planner = RLPlanner(catalog, task, config)
        start = catalog.primaries()[0].item_id
        planner.fit(start_item_ids=[start])
        _, score = planner.recommend_scored(start)
        if score.is_valid:
            valid += 1
        else:
            for code in score.report.codes():
                violations[code] += 1
    return Theorem1Result(
        instances=instances,
        valid=valid,
        violation_counts=tuple(sorted(violations.items())),
    )
