"""Small statistics helpers shared by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Mean / spread of a sample of scores."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample std, min, max of a non-empty sample."""
    n = len(values)
    if n == 0:
        return Summary(0.0, 0.0, 0.0, 0.0, 0)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
        n=n,
    )


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation CI of the mean (z=1.96 ~ 95%)."""
    summary = summarize(values)
    if summary.n <= 1:
        return summary.mean, summary.mean
    half = z * summary.std / math.sqrt(summary.n)
    return summary.mean - half, summary.mean + half


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept (for the Fig. 2 linearity check)."""
    n = len(xs)
    if n != len(ys) or n < 2:
        raise ValueError("need >= 2 paired points")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, my - slope * mx


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation (linearity strength for Fig. 2)."""
    n = len(xs)
    if n != len(ys) or n < 2:
        raise ValueError("need >= 2 paired points")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)
