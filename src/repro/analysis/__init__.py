"""Experiment harness: comparison, user study, transfer, sweeps, timing."""

from .convergence import (
    ConvergenceSummary,
    detect_convergence,
    moving_average,
    render_learning_curve,
    summarize_learning,
)
from .diagnostics import Diagnosis, Finding, diagnose, suggest_relaxations
from .explain import PlanExplanation, StepExplanation, explain_plan
from .experiments import (
    ComparisonResult,
    TransferOutcome,
    UserStudyResult,
    compare_planners,
    run_transfer,
    run_user_study,
)
from .report import build_report
from .robustness import (
    COVERAGE_GRID,
    DELTA_BETA_GRID,
    DISCOUNT_GRID,
    EPISODE_GRID,
    LEARNING_RATE_GRID,
    SweepPoint,
    SweepResult,
    SweepRunner,
    TRIP_DISTANCE_GRID,
    TRIP_TIME_GRID,
    TYPE_WEIGHT_GRID,
)
from .scalability import (
    ScalabilityResult,
    TimingPoint,
    measure_scalability,
)
from .stats import (
    Summary,
    linear_fit,
    mean_confidence_interval,
    pearson_r,
    summarize,
)
from .tables import format_value, render_sweep, render_table
from .theorem1 import Theorem1Result, verify_theorem1

__all__ = [
    "COVERAGE_GRID",
    "ComparisonResult",
    "ConvergenceSummary",
    "Diagnosis",
    "Finding",
    "PlanExplanation",
    "StepExplanation",
    "DELTA_BETA_GRID",
    "DISCOUNT_GRID",
    "EPISODE_GRID",
    "LEARNING_RATE_GRID",
    "ScalabilityResult",
    "Summary",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "TRIP_DISTANCE_GRID",
    "TRIP_TIME_GRID",
    "TYPE_WEIGHT_GRID",
    "Theorem1Result",
    "TimingPoint",
    "TransferOutcome",
    "build_report",
    "UserStudyResult",
    "compare_planners",
    "detect_convergence",
    "diagnose",
    "explain_plan",
    "format_value",
    "linear_fit",
    "mean_confidence_interval",
    "measure_scalability",
    "moving_average",
    "pearson_r",
    "render_learning_curve",
    "render_sweep",
    "render_table",
    "run_transfer",
    "run_user_study",
    "summarize",
    "suggest_relaxations",
    "summarize_learning",
    "verify_theorem1",
]
