"""Group planning on top of RL-Planner.

:class:`GroupPlanner` evaluates the aggregation strategies side by
side: for each strategy it builds the aggregated task, trains
RL-Planner, and reports the plan together with its per-member
satisfaction profile — the data a group would use to pick its
compromise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.plan import Plan
from ..core.planner import RLPlanner
from ..core.scoring import PlanScore
from .aggregation import (
    AggregationStrategy,
    GroupMember,
    group_task,
)
from .satisfaction import GroupSatisfaction, group_satisfaction


@dataclass(frozen=True)
class GroupPlanOutcome:
    """One strategy's plan, score, and satisfaction profile."""

    strategy: AggregationStrategy
    plan: Plan
    score: PlanScore
    satisfaction: GroupSatisfaction


class GroupPlanner:
    """Plan for a group of members over one catalog/base task.

    Parameters
    ----------
    catalog / base_task / config / mode:
        As for :class:`~repro.core.planner.RLPlanner`; ``base_task``
        supplies the hard constraints and template, while each
        strategy swaps in an aggregated ``T_ideal``.
    members:
        The group.
    """

    def __init__(
        self,
        catalog: Catalog,
        base_task: TaskSpec,
        members: Sequence[GroupMember],
        config: Optional[PlannerConfig] = None,
        mode: DomainMode = DomainMode.COURSE,
    ) -> None:
        self.catalog = catalog
        self.base_task = base_task
        self.members = tuple(members)
        self.config = config if config is not None else PlannerConfig()
        self.mode = mode

    def plan_with(
        self,
        strategy: AggregationStrategy,
        start_item_id: str,
        episodes: Optional[int] = None,
    ) -> GroupPlanOutcome:
        """Train and plan under one aggregation strategy."""
        task = group_task(self.base_task, self.members, strategy=strategy)
        planner = RLPlanner(
            self.catalog, task, self.config, mode=self.mode
        )
        planner.fit(start_item_ids=[start_item_id], episodes=episodes)
        plan, score = planner.recommend_scored(start_item_id)
        return GroupPlanOutcome(
            strategy=strategy,
            plan=plan,
            score=score,
            satisfaction=group_satisfaction(plan, self.members),
        )

    def compare_strategies(
        self,
        start_item_id: str,
        strategies: Sequence[AggregationStrategy] = tuple(
            AggregationStrategy
        ),
        episodes: Optional[int] = None,
    ) -> Dict[AggregationStrategy, GroupPlanOutcome]:
        """Run every strategy; returns outcomes keyed by strategy."""
        return {
            strategy: self.plan_with(
                strategy, start_item_id, episodes=episodes
            )
            for strategy in strategies
        }

    def best_for_fairness(
        self,
        outcomes: Dict[AggregationStrategy, GroupPlanOutcome],
    ) -> GroupPlanOutcome:
        """The outcome maximizing the worst-off member (ties: mean)."""
        return max(
            outcomes.values(),
            key=lambda o: (o.satisfaction.minimum, o.satisfaction.mean),
        )
