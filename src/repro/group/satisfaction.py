"""Per-member satisfaction and group fairness of a shared plan.

Mirrors the satisfaction/disagreement framing of sequential group
recommendation ([27] in the paper's related work): each member's
satisfaction is the coverage of *their* ideal topics by the group plan,
and the group is judged by the mean (efficiency) and the minimum /
spread (fairness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core.plan import Plan
from .aggregation import GroupMember


@dataclass(frozen=True)
class GroupSatisfaction:
    """Satisfaction profile of one plan for one group."""

    per_member: Tuple[Tuple[str, float], ...]

    @property
    def scores(self) -> Tuple[float, ...]:
        """Member satisfactions in member order."""
        return tuple(score for _, score in self.per_member)

    @property
    def mean(self) -> float:
        """Average member satisfaction (group efficiency)."""
        scores = self.scores
        return sum(scores) / len(scores)

    @property
    def minimum(self) -> float:
        """Worst-off member's satisfaction (egalitarian welfare)."""
        return min(self.scores)

    @property
    def disagreement(self) -> float:
        """Max - min satisfaction (the disagreement score of [27])."""
        scores = self.scores
        return max(scores) - min(scores)

    def of(self, member_name: str) -> float:
        """Satisfaction of a specific member."""
        for name, score in self.per_member:
            if name == member_name:
                return score
        raise KeyError(member_name)

    def as_dict(self) -> Dict[str, float]:
        """Member name -> satisfaction."""
        return dict(self.per_member)


def member_satisfaction(plan: Plan, member: GroupMember) -> float:
    """Coverage of the member's ideal topics by the plan, in [0, 1]."""
    return plan.topic_coverage_of(member.ideal_topics)


def group_satisfaction(
    plan: Plan, members: Sequence[GroupMember]
) -> GroupSatisfaction:
    """Satisfaction profile of ``plan`` across all members."""
    return GroupSatisfaction(
        per_member=tuple(
            (member.name, member_satisfaction(plan, member))
            for member in members
        )
    )
