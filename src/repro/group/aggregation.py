"""Group preference aggregation.

The paper's related work covers group variants of both domains
(GroupTravel [4], sequential group recommendations [27] with
satisfaction/disagreement scores).  This package extends RL-Planner to
*groups*: several members, each with their own ideal topics, get one
shared plan.

Aggregation strategies (each produces the group's ``T_ideal``):

* UNION — cover anybody's interest (generous plans),
* INTERSECTION — only topics everyone wants (strict; falls back to
  union when the intersection is empty),
* MAJORITY — topics at least half the members want,
* WEIGHTED — a minimum total member-weight per topic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from ..core.constraints import SoftConstraints, TaskSpec
from ..core.exceptions import ConstraintError


@dataclass(frozen=True)
class GroupMember:
    """One member: a name, their ideal topics, optional weight."""

    name: str
    ideal_topics: FrozenSet[str]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConstraintError("member needs a name")
        object.__setattr__(
            self, "ideal_topics", frozenset(self.ideal_topics)
        )
        if not self.ideal_topics:
            raise ConstraintError(
                f"member {self.name!r} needs >= 1 ideal topic"
            )
        if self.weight <= 0:
            raise ConstraintError("member weight must be positive")


class AggregationStrategy(enum.Enum):
    """How member interests merge into the group ``T_ideal``."""

    UNION = "union"
    INTERSECTION = "intersection"
    MAJORITY = "majority"
    WEIGHTED = "weighted"


def aggregate_ideal_topics(
    members: Sequence[GroupMember],
    strategy: AggregationStrategy = AggregationStrategy.UNION,
    weight_threshold: Optional[float] = None,
) -> FrozenSet[str]:
    """The group's ideal-topic set under a strategy.

    ``weight_threshold`` applies to WEIGHTED: a topic qualifies when the
    total weight of members wanting it reaches the threshold (default:
    half the group's total weight).
    """
    if not members:
        raise ConstraintError("a group needs at least one member")

    if strategy is AggregationStrategy.UNION:
        out: set = set()
        for member in members:
            out |= member.ideal_topics
        return frozenset(out)

    if strategy is AggregationStrategy.INTERSECTION:
        out = set(members[0].ideal_topics)
        for member in members[1:]:
            out &= member.ideal_topics
        if out:
            return frozenset(out)
        # Empty intersection: fall back to union so the task stays
        # well-formed (SoftConstraints refuses an empty T_ideal).
        return aggregate_ideal_topics(members, AggregationStrategy.UNION)

    weights: Dict[str, float] = {}
    for member in members:
        for topic in member.ideal_topics:
            weights[topic] = weights.get(topic, 0.0) + member.weight
    total = sum(member.weight for member in members)

    if strategy is AggregationStrategy.MAJORITY:
        threshold = total / 2.0
    elif strategy is AggregationStrategy.WEIGHTED:
        threshold = (
            weight_threshold if weight_threshold is not None
            else total / 2.0
        )
    else:  # pragma: no cover - exhaustive enum
        raise ConstraintError(f"unknown strategy {strategy!r}")

    selected = frozenset(
        topic for topic, w in weights.items() if w >= threshold
    )
    if selected:
        return selected
    return aggregate_ideal_topics(members, AggregationStrategy.UNION)


def group_task(
    base_task: TaskSpec,
    members: Sequence[GroupMember],
    strategy: AggregationStrategy = AggregationStrategy.UNION,
    weight_threshold: Optional[float] = None,
    name: Optional[str] = None,
) -> TaskSpec:
    """A TaskSpec whose T_ideal is the aggregated group interest.

    Hard constraints and the interleaving template carry over from
    ``base_task`` unchanged — the group negotiates *what* to cover, not
    the program requirements.
    """
    ideal = aggregate_ideal_topics(
        members, strategy=strategy, weight_threshold=weight_threshold
    )
    return TaskSpec(
        hard=base_task.hard,
        soft=SoftConstraints(
            ideal_topics=ideal,
            template=base_task.soft.template,
        ),
        name=name or f"{base_task.name} (group/{strategy.value})",
    )
