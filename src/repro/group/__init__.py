"""Group task planning: one plan for several users.

Extends RL-Planner to the group setting discussed in the paper's
related work (GroupTravel, sequential group recommendation): member
interests are aggregated into a group ``T_ideal``, and candidate plans
are judged by per-member satisfaction, egalitarian welfare, and
disagreement.
"""

from .aggregation import (
    AggregationStrategy,
    GroupMember,
    aggregate_ideal_topics,
    group_task,
)
from .planner import GroupPlanOutcome, GroupPlanner
from .satisfaction import (
    GroupSatisfaction,
    group_satisfaction,
    member_satisfaction,
)

__all__ = [
    "AggregationStrategy",
    "GroupMember",
    "GroupPlanOutcome",
    "GroupPlanner",
    "GroupSatisfaction",
    "aggregate_ideal_topics",
    "group_satisfaction",
    "group_task",
    "member_satisfaction",
]
