"""Deterministic seed trees for fanned-out experiments.

Every parallel batch derives its per-task seeds *before* dispatch from a
single :class:`numpy.random.SeedSequence` root.  Because the derivation
depends only on the root seed and the task index — never on worker
count, scheduling order, or wall clock — a batch is bitwise reproducible
whether it runs on one worker or sixteen.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def child_seeds(root_seed: Optional[int], count: int) -> List[int]:
    """``count`` statistically independent child seeds of ``root_seed``.

    Child ``i`` is the first 63 bits of state spawned for the ``i``-th
    child of ``SeedSequence(root_seed)``; the prefix is stable, so
    ``child_seeds(r, 4)[:2] == child_seeds(r, 2)``.  Seeds are clamped
    to the non-negative ``int64`` range so they survive JSON manifests
    and ``PlannerConfig.seed`` round trips unchanged.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    root = np.random.SeedSequence(root_seed)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in root.spawn(count)
    ]
