"""Mid-training checkpoints for the SARSA learner.

A checkpoint is a format-v2 policy file whose ``training_state`` block
captures everything the learner needs to continue *bit-identically*:

* the Q-table (touched cells included, so zero-valued learned entries
  survive — the format-v1 bug this subsystem exists to avoid),
* the behaviour policy's NumPy bit-generator state,
* the global episode counter,
* a config fingerprint that refuses resumption under a different
  configuration.

Checkpoints are written atomically (tmp + fsync + rename) and carry a
payload checksum; a run killed mid-write leaves the previous checkpoint
intact.  Writes also rotate: the outgoing ``checkpoint.json`` becomes
``checkpoint.prev.json``, so even if the *latest* checkpoint is later
corrupted on disk (bit rot, a torn copy, an overzealous editor),
:func:`load_checkpoint` falls back one generation with a warning
instead of refusing to resume — losing at most ``checkpoint_every``
episodes of progress, never the run.
"""

from __future__ import annotations

import logging
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.exceptions import PlanningError
from ..core.qtable import QTableBase
from ..core.serialization import (
    policy_from_dict,
    read_policy_file,
    save_policy,
    training_state_from_dict,
)

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

CHECKPOINT_NAME = "checkpoint.json"
CHECKPOINT_PREV_NAME = "checkpoint.prev.json"


def rotated_path(path: PathLike) -> pathlib.Path:
    """Where a checkpoint's previous generation lives (``*.prev.json``)."""
    path = pathlib.Path(path)
    return path.with_name(path.stem + ".prev" + path.suffix)


def config_fingerprint(config: PlannerConfig) -> str:
    """Stable identity of a training configuration.

    ``PlannerConfig`` is a frozen dataclass of scalars/enums/tuples, so
    its repr is canonical and survives process boundaries.
    """
    return repr(config)


@dataclass
class TrainingCheckpoint:
    """A resumable snapshot of an in-progress training run."""

    qtable: QTableBase
    episode: int
    rng_state: Dict[str, object]
    config_fingerprint: str
    target_episodes: int
    start_item: str

    def save(self, path: PathLike) -> None:
        """Write the checkpoint, rotating the previous one to ``.prev``.

        Rotation happens before the (atomic, fsynced) write of the new
        file, so the worst crash window leaves only ``.prev`` on disk —
        a state :func:`load_checkpoint` recovers from.
        """
        target = pathlib.Path(path)
        if target.exists():
            os.replace(target, rotated_path(target))
        save_policy(
            self.qtable,
            path,
            training_state={
                "episode": self.episode,
                "rng_state": self.rng_state,
                "config_fingerprint": self.config_fingerprint,
                "target_episodes": self.target_episodes,
                "start_item": self.start_item,
            },
        )

    @classmethod
    def load(cls, path: PathLike, catalog: Catalog) -> "TrainingCheckpoint":
        data = read_policy_file(path)
        state = training_state_from_dict(data)
        if state is None:
            raise PlanningError(
                f"{path} is a plain policy file, not a checkpoint "
                "(no training_state block)"
            )
        qtable = policy_from_dict(data, catalog, strict=True)
        try:
            return cls(
                qtable=qtable,
                episode=int(state["episode"]),
                rng_state=dict(state["rng_state"]),
                config_fingerprint=str(state["config_fingerprint"]),
                target_episodes=int(state["target_episodes"]),
                start_item=str(state["start_item"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanningError(
                f"malformed checkpoint training_state in {path}"
            ) from exc

    def verify_config(self, config: PlannerConfig) -> None:
        """Refuse to resume under a configuration that drifted."""
        fingerprint = config_fingerprint(config)
        if fingerprint != self.config_fingerprint:
            raise PlanningError(
                "checkpoint was trained under a different configuration;\n"
                f"  checkpoint: {self.config_fingerprint}\n"
                f"  requested:  {fingerprint}"
            )


def load_checkpoint(
    run_dir: PathLike, catalog: Catalog
) -> Optional[TrainingCheckpoint]:
    """The run directory's checkpoint, or None if none was written yet.

    Tries ``checkpoint.json`` first; if it is missing (crash between
    rotation and write), unparseable, or fails its checksum, falls back
    to ``checkpoint.prev.json`` with a warning.  Only when every
    generation on disk is unusable does the latest one's error
    propagate.
    """
    run_dir = pathlib.Path(run_dir)
    latest = run_dir / CHECKPOINT_NAME
    prev = run_dir / CHECKPOINT_PREV_NAME
    candidates = [p for p in (latest, prev) if p.exists()]
    if not candidates:
        return None
    first_error: Optional[PlanningError] = None
    for path in candidates:
        try:
            checkpoint = TrainingCheckpoint.load(path, catalog)
        except PlanningError as exc:  # includes ArtifactError
            logger.warning("checkpoint %s is unusable: %s", path, exc)
            if first_error is None:
                first_error = exc
            continue
        if path != latest:
            logger.warning(
                "falling back to rotated checkpoint %s (episode %d); "
                "at most one checkpoint interval of progress is lost",
                path, checkpoint.episode,
            )
        return checkpoint
    assert first_error is not None
    raise first_error
