"""Process-pool execution with timeout, retry, and worker-death recovery.

:class:`ExperimentRunner` is the fan-out engine behind the parallel
experiment protocols.  Its contract:

* **Deterministic results.**  ``map`` returns results ordered by task
  index, never by completion order, and all task seeds are fixed by the
  caller before dispatch — so a batch's outcome is identical for any
  worker count, and identical whether or not faults forced retries,
  pool rebuilds, or serial degradation along the way.
* **Failure capture.**  A task that raises is retried (with jittered
  exponential backoff) up to ``max_retries`` extra times; the final
  failure is captured as a :class:`TaskResult` with the traceback
  string instead of poisoning the whole batch.
* **Worker-death recovery.**  A worker killed outright (OOM killer,
  SIGKILL, ``os._exit``) surfaces as ``BrokenProcessPool`` and renders
  the executor unusable.  The runner rebuilds the pool and re-submits
  only the tasks that had no result yet — with their retry budgets
  intact, because a pool death is not attributable to any one task.
  After ``pool_death_limit`` consecutive deaths without progress it
  degrades to serial in-process execution with a logged warning rather
  than failing the batch.
* **Per-task timeout.**  When ``task_timeout`` is set and the pool is
  parallel, each worker arms ``signal.alarm`` around the task so a
  runaway task dies inside its worker (keeping the pool healthy) and is
  reported as ``"timeout"``.  Serial execution ignores the timeout —
  interrupting the caller's own process would be rude — and says so
  once via ``warnings.warn``.
* **Fault injection.**  An optional :class:`~repro.runner.faults.
  FaultInjector` wraps every task (parallel, serial, and degraded-
  serial alike), which is how the chaos suite exercises each recovery
  path above deterministically.

``workers <= 1`` executes in-process with the same retry/capture
semantics, which is both the fast path for tests and the fallback for
environments where ``multiprocessing`` is unavailable.
"""

from __future__ import annotations

import logging
import random
import signal
import time
import traceback
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import MeteredCall, MetricsEnvelope, get_registry, labelled
from .faults import FaultInjector

logger = logging.getLogger(__name__)

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: Seed for backoff jitter — fixed so wall-clock behaviour is
#: reproducible; jitter never influences results, only sleep lengths.
_JITTER_SEED = 0x5EED

# One warning per process for the serial-mode timeout no-op; module
# state so repeated maps on one-worker boxes do not nag.
_SERIAL_TIMEOUT_WARNED = False


class TaskTimeoutError(Exception):
    """Raised inside a worker when a task exceeds its time budget."""


@dataclass
class TaskResult:
    """Outcome of one fanned-out task."""

    index: int
    key: str
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    #: Worker-side metrics snapshot (populated when observability is on
    #: and the task ran in a pool worker; merged into the parent
    #: registry by ``ExperimentRunner.map``).
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.status == STATUS_OK


def _alarm_handler(signum, frame):  # pragma: no cover - fires in workers
    raise TaskTimeoutError("task exceeded its time budget")


def _call_with_alarm(fn: Callable[[Any], Any], payload: Any, timeout: int):
    """Run ``fn(payload)`` under a SIGALRM deadline (worker-side)."""
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.alarm(timeout)
    try:
        return fn(payload)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class ExperimentRunner:
    """Fan tasks across a process pool (or run them serially in-process).

    Parameters
    ----------
    workers:
        Pool size; ``<= 1`` runs serially in the calling process.  The
        requested size is honored even beyond ``os.cpu_count()`` —
        results are worker-count-independent, so oversubscription only
        costs wall-clock, and capping silently (e.g. to serial on a
        1-CPU box) would also silently disable the per-task timeout.
    task_timeout:
        Per-task wall-clock budget in seconds (parallel mode only;
        rounded up to a whole second for ``signal.alarm``).
    max_retries:
        Extra attempts granted to a task that raised or timed out.
        Pool deaths do not consume this budget.
    retry_backoff:
        Base sleep before retry *k* — ``retry_backoff * 2**(k-1)``
        seconds, jittered to 50–150% and capped at ``backoff_cap``.
        Zero disables backoff.
    pool_death_limit:
        Consecutive no-progress pool deaths tolerated before the
        remaining tasks run serially in-process.
    fault_injector:
        Optional deterministic fault source wrapped around every task
        (see :mod:`repro.runner.faults`).
    collect_worker_metrics:
        Whether pool tasks ship their worker-side metrics snapshots
        back for merging (see :class:`repro.obs.MeteredCall`).  ``None``
        (the default) follows the active registry: metrics are
        collected exactly when observability is enabled.
    """

    workers: int = 1
    task_timeout: Optional[float] = None
    max_retries: int = 1
    retry_backoff: float = 0.05
    backoff_cap: float = 2.0
    pool_death_limit: int = 3
    fault_injector: Optional[FaultInjector] = None
    collect_worker_metrics: Optional[bool] = None

    @property
    def effective_workers(self) -> int:
        """The pool size actually used."""
        return max(1, self.workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
    ) -> List[TaskResult]:
        """Run ``fn`` over ``payloads``; results ordered by task index.

        ``fn`` and each payload must be picklable when the pool is
        parallel (``fn`` must be an importable top-level function).
        """
        if keys is None:
            keys = [f"task-{i}" for i in range(len(payloads))]
        if len(keys) != len(payloads):
            raise ValueError("keys and payloads must have equal length")
        if not payloads:
            return []
        obs = get_registry()
        with obs.span("runner.map"):
            if self.effective_workers <= 1:
                self._warn_serial_timeout()
                results = [
                    self._run_serial(fn, payload, i, keys[i])
                    for i, payload in enumerate(payloads)
                ]
            else:
                results = self._run_parallel(fn, payloads, keys)
        self._record_batch(obs, results)
        return results

    def _record_batch(self, obs, results: List[TaskResult]) -> None:
        """Fold a finished batch into the parent registry.

        Worker snapshots are unwrapped and merged in task-index order —
        never completion order — so the aggregate (including gauge
        ``last`` values) is identical across reruns and worker counts.
        Per-task dispatch counters come from the ``TaskResult`` channel;
        fault firings are reconciled from the injector's marker files,
        which survive even the worker deaths that destroy the worker's
        own snapshot.
        """
        obs.inc("runner_batches_total")
        for result in results:
            if isinstance(result.value, MetricsEnvelope):
                envelope = result.value
                result.value = envelope.value
                result.metrics = envelope.metrics
                obs.merge(envelope.metrics)
            obs.inc("runner_tasks_total")
            obs.inc(
                labelled("runner_tasks_total", status=result.status)
            )
            obs.inc("runner_attempts_total", result.attempts)
            obs.inc("runner_retries_total", result.attempts - 1)
            obs.observe("runner_task_seconds", result.seconds)
        if self.fault_injector is not None and obs.enabled:
            for kind, fired in self.fault_injector.fired_counts().items():
                counter = obs.counter(
                    labelled("faults_fired_total", kind=kind)
                )
                # Marker files are cumulative across retries, pool
                # rebuilds, and previous batches with the same injector;
                # take the running total rather than re-adding it.
                counter.value = max(counter.value, float(fired))

    def _warn_serial_timeout(self) -> None:
        global _SERIAL_TIMEOUT_WARNED
        if self.task_timeout is None or _SERIAL_TIMEOUT_WARNED:
            return
        _SERIAL_TIMEOUT_WARNED = True
        warnings.warn(
            "task_timeout is ignored in serial mode (workers<=1): a "
            "runaway task will not be bounded; use workers>=2 to arm "
            "per-task timeouts",
            RuntimeWarning,
            stacklevel=3,
        )

    def _wrap(self, fn: Callable[[Any], Any], index: int):
        if self.fault_injector is None:
            return fn
        return self.fault_injector.wrap(fn, index)

    def _backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential sleep before attempt number ``attempt``."""
        if self.retry_backoff <= 0:
            return 0.0
        base = min(
            self.backoff_cap,
            self.retry_backoff * (2 ** max(0, attempt - 2)),
        )
        return base * (0.5 + rng.random())

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[Any], Any],
        payload: Any,
        index: int,
        key: str,
        first_attempt: int = 1,
    ) -> TaskResult:
        task = self._wrap(fn, index)
        rng = random.Random(_JITTER_SEED + index)
        t0 = time.perf_counter()
        error = None
        attempt = first_attempt
        for attempt in range(first_attempt, self.max_retries + 2):
            try:
                value = task(payload)
            except (KeyboardInterrupt, SystemExit):
                # Ctrl-C / interpreter shutdown must stop the batch, not
                # be recorded as a task failure and retried.
                raise
            except Exception:
                get_registry().inc("runner_failed_attempts_total")
                error = traceback.format_exc()
                if attempt <= self.max_retries:
                    time.sleep(self._backoff_seconds(attempt + 1, rng))
                continue
            return TaskResult(
                index=index,
                key=key,
                status=STATUS_OK,
                value=value,
                attempts=attempt,
                seconds=time.perf_counter() - t0,
            )
        return TaskResult(
            index=index,
            key=key,
            status=STATUS_ERROR,
            error=error,
            attempts=attempt,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------

    def _metered(self) -> bool:
        """Whether pool tasks should ship worker metrics snapshots back.

        Serial tasks run in-process under the parent's own registry, so
        only the parallel path needs the envelope protocol.
        """
        if self.collect_worker_metrics is not None:
            return self.collect_worker_metrics
        return get_registry().enabled

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        payload: Any,
        index: int,
    ) -> Future:
        task = self._wrap(fn, index)
        if self._metered():
            task = MeteredCall(task)
        if self.task_timeout is not None:
            budget = max(1, int(self.task_timeout + 0.999))
            return pool.submit(_call_with_alarm, task, payload, budget)
        return pool.submit(task, payload)

    def _run_parallel(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Sequence[str],
    ) -> List[TaskResult]:
        results: Dict[int, TaskResult] = {}
        attempts = {i: 1 for i in range(len(payloads))}
        started = {i: time.perf_counter() for i in range(len(payloads))}
        todo = list(range(len(payloads)))
        deaths = 0
        rng = random.Random(_JITTER_SEED)
        while todo:
            prior = len(results)
            try:
                self._pool_round(
                    fn, payloads, keys, todo, results, attempts, started,
                    rng,
                )
                todo = []
            except BrokenExecutor:
                # A worker died without raising (SIGKILL, OOM, os._exit);
                # every in-flight future is void.  Completed tasks keep
                # their results; unfinished ones are re-submitted to a
                # fresh pool with retry budgets intact — the death is
                # not attributable to any single task.
                deaths = 1 if len(results) > prior else deaths + 1
                todo = [i for i in range(len(payloads)) if i not in results]
                obs = get_registry()
                obs.inc("runner_pool_deaths_total")
                logger.warning(
                    "process pool died (%d consecutive, limit %d); "
                    "%d/%d tasks already have results, re-submitting %d",
                    deaths, self.pool_death_limit,
                    len(results), len(payloads), len(todo),
                )
                if deaths >= self.pool_death_limit:
                    logger.warning(
                        "pool died %d times consecutively; degrading "
                        "to serial in-process execution for the "
                        "remaining %d task(s)", deaths, len(todo),
                    )
                    obs.inc("runner_serial_degradations_total")
                    for i in todo:
                        results[i] = self._run_serial(
                            fn, payloads[i], i, keys[i],
                            first_attempt=attempts[i],
                        )
                    todo = []
                else:
                    obs.inc("runner_pool_rebuilds_total")
        return [results[i] for i in range(len(payloads))]

    def _pool_round(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Sequence[str],
        todo: Sequence[int],
        results: Dict[int, TaskResult],
        attempts: Dict[int, int],
        started: Dict[int, float],
        rng: random.Random,
    ) -> None:
        """Drive one executor until ``todo`` drains or the pool breaks."""
        with ProcessPoolExecutor(max_workers=self.effective_workers) as pool:
            pending: Dict[Future, int] = {
                self._submit(pool, fn, payloads[i], i): i for i in todo
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    result = self._collect(
                        future, index, keys[index],
                        attempts[index], started[index],
                    )
                    if (
                        not result.ok
                        and attempts[index] <= self.max_retries
                    ):
                        attempts[index] += 1
                        time.sleep(
                            self._backoff_seconds(attempts[index], rng)
                        )
                        retry = self._submit(
                            pool, fn, payloads[index], index
                        )
                        pending[retry] = index
                    else:
                        results[index] = result

    def _collect(
        self,
        future: Future,
        index: int,
        key: str,
        attempt: int,
        started_at: float,
    ) -> TaskResult:
        elapsed = time.perf_counter() - started_at
        try:
            value = future.result()
        except TaskTimeoutError:
            get_registry().inc("runner_timeouts_total")
            return TaskResult(
                index=index, key=key, status=STATUS_TIMEOUT,
                error=f"timed out after {self.task_timeout}s",
                attempts=attempt, seconds=elapsed,
            )
        except BrokenExecutor:
            # Not a task failure — the pool itself is gone.  Propagate
            # to the recovery logic in _run_parallel.
            raise
        except (KeyboardInterrupt, SystemExit):
            # The *parent* was interrupted while waiting on the future
            # (workers re-raise their own exceptions through result(),
            # but an interrupt here belongs to the operator): propagate.
            raise
        except Exception as exc:
            get_registry().inc("runner_failed_attempts_total")
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            return TaskResult(
                index=index, key=key, status=STATUS_ERROR,
                error=detail, attempts=attempt, seconds=elapsed,
            )
        return TaskResult(
            index=index, key=key, status=STATUS_OK,
            value=value, attempts=attempt, seconds=elapsed,
        )
