"""Process-pool execution with timeout, bounded retry, and failure capture.

:class:`ExperimentRunner` is the fan-out engine behind the parallel
experiment protocols.  Its contract:

* **Deterministic results.**  ``map`` returns results ordered by task
  index, never by completion order, and all task seeds are fixed by the
  caller before dispatch — so a batch's outcome is identical for any
  worker count.
* **Failure capture.**  A task that raises is retried up to
  ``max_retries`` extra times; the final failure is captured as a
  :class:`TaskResult` with the traceback string instead of poisoning the
  whole batch.
* **Per-task timeout.**  When ``task_timeout`` is set and the pool is
  parallel, each worker arms ``signal.alarm`` around the task so a
  runaway task dies inside its worker (keeping the pool healthy) and is
  reported as ``"timeout"``.  Serial execution ignores the timeout —
  interrupting the caller's own process would be rude.

``workers <= 1`` executes in-process with the same retry/capture
semantics, which is both the fast path for tests and the fallback for
environments where ``multiprocessing`` is unavailable.
"""

from __future__ import annotations

import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


class TaskTimeoutError(Exception):
    """Raised inside a worker when a task exceeds its time budget."""


@dataclass
class TaskResult:
    """Outcome of one fanned-out task."""

    index: int
    key: str
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.status == STATUS_OK


def _alarm_handler(signum, frame):  # pragma: no cover - fires in workers
    raise TaskTimeoutError("task exceeded its time budget")


def _call_with_alarm(fn: Callable[[Any], Any], payload: Any, timeout: int):
    """Run ``fn(payload)`` under a SIGALRM deadline (worker-side)."""
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.alarm(timeout)
    try:
        return fn(payload)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class ExperimentRunner:
    """Fan tasks across a process pool (or run them serially in-process).

    Parameters
    ----------
    workers:
        Pool size; ``<= 1`` runs serially in the calling process.  The
        requested size is honored even beyond ``os.cpu_count()`` —
        results are worker-count-independent, so oversubscription only
        costs wall-clock, and capping silently (e.g. to serial on a
        1-CPU box) would also silently disable the per-task timeout.
    task_timeout:
        Per-task wall-clock budget in seconds (parallel mode only;
        rounded up to a whole second for ``signal.alarm``).
    max_retries:
        Extra attempts granted to a task that raised or timed out.
    """

    workers: int = 1
    task_timeout: Optional[float] = None
    max_retries: int = 1

    @property
    def effective_workers(self) -> int:
        """The pool size actually used."""
        return max(1, self.workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
    ) -> List[TaskResult]:
        """Run ``fn`` over ``payloads``; results ordered by task index.

        ``fn`` and each payload must be picklable when the pool is
        parallel (``fn`` must be an importable top-level function).
        """
        if keys is None:
            keys = [f"task-{i}" for i in range(len(payloads))]
        if len(keys) != len(payloads):
            raise ValueError("keys and payloads must have equal length")
        if not payloads:
            return []
        if self.effective_workers <= 1:
            return [
                self._run_serial(fn, payload, i, keys[i])
                for i, payload in enumerate(payloads)
            ]
        return self._run_parallel(fn, payloads, keys)

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------

    def _run_serial(
        self, fn: Callable[[Any], Any], payload: Any, index: int, key: str
    ) -> TaskResult:
        t0 = time.perf_counter()
        error = None
        for attempt in range(1, self.max_retries + 2):
            try:
                value = fn(payload)
            except Exception:
                error = traceback.format_exc()
                continue
            return TaskResult(
                index=index,
                key=key,
                status=STATUS_OK,
                value=value,
                attempts=attempt,
                seconds=time.perf_counter() - t0,
            )
        return TaskResult(
            index=index,
            key=key,
            status=STATUS_ERROR,
            error=error,
            attempts=self.max_retries + 1,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        payload: Any,
    ) -> Future:
        if self.task_timeout is not None:
            budget = max(1, int(self.task_timeout + 0.999))
            return pool.submit(_call_with_alarm, fn, payload, budget)
        return pool.submit(fn, payload)

    def _run_parallel(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Sequence[str],
    ) -> List[TaskResult]:
        results: Dict[int, TaskResult] = {}
        attempts = {i: 1 for i in range(len(payloads))}
        started = {i: time.perf_counter() for i in range(len(payloads))}
        with ProcessPoolExecutor(max_workers=self.effective_workers) as pool:
            pending: Dict[Future, int] = {
                self._submit(pool, fn, payload): i
                for i, payload in enumerate(payloads)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    result = self._collect(
                        future, index, keys[index],
                        attempts[index], started[index],
                    )
                    if (
                        not result.ok
                        and attempts[index] <= self.max_retries
                    ):
                        attempts[index] += 1
                        retry = self._submit(pool, fn, payloads[index])
                        pending[retry] = index
                    else:
                        results[index] = result
        return [results[i] for i in range(len(payloads))]

    def _collect(
        self,
        future: Future,
        index: int,
        key: str,
        attempt: int,
        started_at: float,
    ) -> TaskResult:
        elapsed = time.perf_counter() - started_at
        try:
            value = future.result()
        except TaskTimeoutError:
            return TaskResult(
                index=index, key=key, status=STATUS_TIMEOUT,
                error=f"timed out after {self.task_timeout}s",
                attempts=attempt, seconds=elapsed,
            )
        except Exception as exc:
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            return TaskResult(
                index=index, key=key, status=STATUS_ERROR,
                error=detail, attempts=attempt, seconds=elapsed,
            )
        return TaskResult(
            index=index, key=key, status=STATUS_OK,
            value=value, attempts=attempt, seconds=elapsed,
        )
