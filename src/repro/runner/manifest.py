"""Run manifests and JSONL episode-metrics streams.

Every runner invocation that is given an output directory leaves two
artifacts behind:

* ``manifest.json`` — what ran (protocol, dataset, seeds, git SHA,
  per-task status/timings, outcome).  The deterministic subset of the
  manifest — everything except wall-clock — is hashed into a
  ``fingerprint`` so "same batch, different worker count" is checkable
  with a string comparison.
* ``episodes.jsonl`` — one line per training episode across all tasks,
  the observability stream for convergence tooling.

Manifests double as resume tokens: ``rl-planner resume <dir>`` reads the
manifest back to find the dataset, config fingerprint, and progress.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.exceptions import ArtifactError
from ..obs import get_registry, write_metrics

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

MANIFEST_NAME = "manifest.json"
EPISODES_NAME = "episodes.jsonl"
MANIFEST_SCHEMA = 1

#: Keys excluded from the fingerprint: wall-clock measurements plus
#: fields that legitimately differ between runs that should compare
#: equal (worker count, checkout SHA, retry counts, bulky stats).
_NONDETERMINISTIC_KEYS = frozenset(
    {
        "seconds",
        "learn_seconds",
        "recommend_seconds",
        "elapsed_seconds",
        "wall_seconds",
        "created_at",
        "updated_at",
        "git_sha",
        "workers",
        "episode_stats",
        "attempts",
    }
)


def git_sha() -> Optional[str]:
    """The current repo HEAD, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def atomic_write_text(path: PathLike, text: str) -> pathlib.Path:
    """Write ``text`` durably: tmp file + flush + fsync + atomic rename.

    The rename guarantees readers never see a half-written file; the
    fsync guarantees a crash immediately *after* the rename cannot lose
    the buffered bytes either.
    """
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(target)
    return target


def _strip_timing(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            k: _strip_timing(v)
            for k, v in value.items()
            if k not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


def fingerprint_payload(payload: Dict[str, Any]) -> str:
    """SHA-256 over the deterministic subset of a manifest payload."""
    canonical = json.dumps(
        _strip_timing(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Everything needed to audit — or resume — one runner invocation."""

    protocol: str
    dataset: str
    dataset_seed: int
    root_seed: Optional[int] = None
    workers: int = 1
    status: str = "running"
    git_sha: Optional[str] = field(default_factory=git_sha)
    config_fingerprint: Optional[str] = None
    target_episodes: Optional[int] = None
    completed_episodes: int = 0
    checkpoint_every: Optional[int] = None
    start_item: Optional[str] = None
    tasks: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    wall_seconds: float = 0.0
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["fingerprint"] = fingerprint_payload(payload)
        return payload

    def save(self, run_dir: PathLike) -> pathlib.Path:
        """Write ``manifest.json`` atomically (and fsynced) into ``run_dir``."""
        self.updated_at = time.time()
        run_dir = pathlib.Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(
            run_dir / MANIFEST_NAME,
            json.dumps(self.to_dict(), indent=2, sort_keys=True),
        )

    @classmethod
    def load(cls, run_dir: PathLike) -> "RunManifest":
        """Read a run directory's manifest back.

        A missing or corrupt ``manifest.json`` raises
        :class:`~repro.core.exceptions.ArtifactError` — the typed,
        catchable signal that the *artifact* is bad, consistent with
        ``read_policy_file`` — never a raw ``JSONDecodeError``.
        """
        path = pathlib.Path(run_dir) / MANIFEST_NAME
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError bit-rotted bytes produce.
            raise ArtifactError(
                f"cannot read run manifest {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ArtifactError(
                f"malformed run manifest {path}: not a JSON object"
            )
        data.pop("fingerprint", None)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def fingerprint(self) -> str:
        """Deterministic identity of this run (timing-independent)."""
        return fingerprint_payload(asdict(self))


class EpisodeMetricsWriter:
    """Append-only JSONL stream of per-episode training metrics.

    Each line is flushed immediately, so a crash loses at most the
    episode in flight — the stream stays a valid prefix.
    """

    def __init__(self, path: PathLike, append: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a" if append else "w")

    def write(self, row: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush *and* fsync before closing.

        Flushing alone hands the rows to the OS; a machine crash right
        after a run could still lose them from the page cache.  The
        fsync pins every episode row written so far to disk.
        """
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "EpisodeMetricsWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tolerant_stream_rows(path: PathLike) -> List[Dict[str, Any]]:
    """Parse an ``episodes.jsonl`` stream, tolerating a crash-torn tail.

    The writer appends one line per episode; a kill mid-append leaves a
    final line that is truncated JSON.  Parsing stops (with a logged
    warning) at the first undecodable line — everything before it is a
    valid prefix, everything at/after it is the torn tail a crash left
    behind.  A missing file is an empty stream.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    rows: List[Dict[str, Any]] = []
    lines = path.read_text().splitlines()
    for lineno, line in enumerate(lines):
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            logger.warning(
                "%s: torn/corrupt line %d; truncating %d trailing "
                "line(s) (valid prefix of %d row(s) kept)",
                path, lineno + 1, len(lines) - lineno, len(rows),
            )
            break
    return rows


def write_batch_artifacts(
    run_dir: PathLike,
    manifest: RunManifest,
    task_results,
) -> None:
    """Persist a batch's manifest plus the episode-metrics stream.

    ``task_results`` are :class:`repro.runner.pool.TaskResult` objects;
    any ``episode_stats`` collected by workers are folded into one
    ``episodes.jsonl`` keyed by task, then dropped from the manifest
    copy (the manifest stays small and timing-free values stay in the
    JSONL stream).  When observability is enabled the active registry
    is additionally exported as ``metrics.json`` next to the manifest.
    """
    run_dir = pathlib.Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    with EpisodeMetricsWriter(run_dir / EPISODES_NAME) as stream:
        for result in task_results:
            stats = (
                (result.value or {}).get("episode_stats")
                if isinstance(result.value, dict)
                else None
            )
            for row in stats or ():
                stream.write({"task": result.key, **row})
    manifest.tasks = [
        {
            "key": r.key,
            "index": r.index,
            "status": r.status,
            "attempts": r.attempts,
            "seconds": r.seconds,
            "error": r.error,
            "value": _strip_stats(r.value),
        }
        for r in task_results
    ]
    manifest.save(run_dir)
    write_metrics(run_dir, get_registry())


def _strip_stats(value: Any) -> Any:
    if isinstance(value, dict) and "episode_stats" in value:
        return {k: v for k, v in value.items() if k != "episode_stats"}
    return value
