"""Picklable experiment task specs and their worker-side handlers.

A :class:`RunSpec` names one unit of fan-out work — one seeded
``compare_planners`` run, one sweep-point scoring run, one scalability
timing point — in a form that crosses process boundaries.  Workers
resolve datasets by ``(key, seed)`` through a per-process cache, so the
(deterministic, seeded) dataset generators run at most once per worker
instead of once per task.

Each handler replicates its serial protocol *exactly* — same planner
construction, same seeds, same scoring — which is what lets the
parallel paths promise score equality with the serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..baselines import EDAPlanner, OmegaPlanner
from ..obs import get_registry, labelled
from ..core.planner import RLPlanner
from ..core.scoring import PlanScorer

# ----------------------------------------------------------------------
# Dataset resolution (per-process cache)
# ----------------------------------------------------------------------

_DATASET_CACHE: Dict[Tuple[str, int], Any] = {}


def get_dataset(key: str, seed: int):
    """Load dataset ``key`` at ``seed``, memoized per process.

    Workers forked from a parent that called :func:`prime_dataset_cache`
    inherit the primed entry and skip the load entirely.
    """
    cache_key = (key, seed)
    if cache_key not in _DATASET_CACHE:
        from ..datasets import load

        _DATASET_CACHE[cache_key] = load(key, seed=seed, with_gold=False)
    return _DATASET_CACHE[cache_key]


def prime_dataset_cache(dataset, seed: int) -> None:
    """Insert an already-loaded dataset into the resolution cache.

    This keeps serial execution reload-free and lets datasets that are
    not in :data:`repro.datasets.LOADERS` (hand-built instances) flow
    through the runner unchanged.
    """
    _DATASET_CACHE[(dataset.key, seed)] = dataset


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One schedulable experiment task.

    Attributes
    ----------
    kind:
        Handler name (see :data:`HANDLERS`).
    dataset_key / dataset_seed:
        How a worker re-resolves the dataset.
    seed:
        The task's RNG seed, fixed before dispatch (this is what makes
        batches reproducible regardless of worker count).
    index:
        Position in the batch; results are returned in this order.
    params:
        Handler-specific extras (picklable; configs and tasks ride here
        as live objects).
    """

    kind: str
    dataset_key: str
    dataset_seed: int = 0
    seed: int = 0
    index: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Stable identifier used in manifests and metrics streams."""
        return (
            f"{self.kind}:{self.dataset_key}:{self.index}:seed{self.seed}"
        )


def _episode_stats_rows(result) -> list:
    """JSONL-ready rows for a LearningResult's per-episode stats."""
    return [
        {
            "episode": s.episode,
            "start": s.start_item_id,
            "length": s.length,
            "total_reward": s.total_reward,
            "zero_reward_steps": s.zero_reward_steps,
        }
        for s in result.stats
    ]


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


def run_compare_task(spec: RunSpec) -> Dict[str, Any]:
    """One seeded run of the Figure-1 comparison protocol.

    Mirrors one iteration of the ``compare_planners`` run loop: the RL
    planner, EDA, and OMEGA all share the run's seed, and the baselines
    are scored by the run's own scorer.
    """
    dataset = get_dataset(spec.dataset_key, spec.dataset_seed)
    episodes = spec.params.get("episodes")
    config = dataset.default_config.replace(seed=spec.seed)

    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    result = planner.fit(
        start_item_ids=[dataset.default_start], episodes=episodes
    )
    _, score = planner.recommend_scored(dataset.default_start)

    eda = EDAPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode,
        seed=spec.seed,
    )
    eda_score = planner.score(eda.recommend(dataset.default_start)).value

    omega = OmegaPlanner(
        dataset.catalog,
        dataset.task,
        mode=dataset.mode,
        histories=dataset.itineraries or None,
        seed=spec.seed,
    )
    omega_score = planner.score(
        omega.recommend(dataset.default_start)
    ).value

    payload: Dict[str, Any] = {
        "rl": score.value,
        "rl_valid": bool(score.is_valid),
        "eda": eda_score,
        "omega": omega_score,
    }
    if spec.params.get("collect_stats"):
        payload["episode_stats"] = _episode_stats_rows(result)
    return payload


def run_rl_score_task(spec: RunSpec) -> Dict[str, Any]:
    """Train + score one RL-Planner configuration (sweep protocol leg)."""
    dataset = get_dataset(spec.dataset_key, spec.dataset_seed)
    config = spec.params["config"]
    task = spec.params.get("task") or dataset.task
    start = spec.params.get("start") or dataset.default_start
    planner = RLPlanner(
        dataset.catalog, task, config, mode=dataset.mode
    )
    planner.fit(
        start_item_ids=[start], episodes=spec.params.get("episodes")
    )
    _, score = planner.recommend_scored(start)
    return {"score": score.value}


def run_eda_score_task(spec: RunSpec) -> Dict[str, Any]:
    """Score one EDA configuration (sweep protocol leg)."""
    dataset = get_dataset(spec.dataset_key, spec.dataset_seed)
    config = spec.params["config"]
    task = spec.params.get("task") or dataset.task
    scorer = PlanScorer(task, mode=dataset.mode)
    eda = EDAPlanner(
        dataset.catalog, task, config, mode=dataset.mode, seed=spec.seed
    )
    plan = eda.recommend(dataset.default_start)
    return {"score": scorer.score(plan).value}


def run_probe_task(spec: RunSpec) -> Dict[str, Any]:
    """No-op diagnostic task: echo identity, optionally stall.

    Costs nothing to run, so chaos drills and pool benchmarks can
    exercise dispatch, retry, worker-death, and timeout machinery
    without paying for training.  ``params["sleep"]`` (seconds) makes
    it a controllable slow task.
    """
    seconds = float(spec.params.get("sleep", 0.0))
    if seconds > 0:
        time.sleep(seconds)
    return {"probe": spec.index, "seed": spec.seed}


def run_timing_task(spec: RunSpec) -> Dict[str, Any]:
    """One Figure-2 grid point: time learning and recommendation."""
    dataset = get_dataset(spec.dataset_key, spec.dataset_seed)
    episodes = int(spec.params["episodes"])
    repeats = int(spec.params.get("recommend_repeats", 5))
    config = dataset.default_config.replace(seed=spec.seed)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    t0 = time.perf_counter()
    planner.fit(
        start_item_ids=[dataset.default_start], episodes=episodes
    )
    learn_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(repeats):
        planner.recommend(dataset.default_start)
    recommend_seconds = (time.perf_counter() - t0) / repeats
    return {
        "episodes": episodes,
        "learn_seconds": learn_seconds,
        "recommend_seconds": recommend_seconds,
    }


HANDLERS: Dict[str, Callable[[RunSpec], Dict[str, Any]]] = {
    "compare_run": run_compare_task,
    "rl_score": run_rl_score_task,
    "eda_score": run_eda_score_task,
    "probe": run_probe_task,
    "timing": run_timing_task,
}


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Dispatch a spec to its handler (the pool's worker entry point).

    Each execution is timed under a per-kind ``task.<kind>`` span and
    counted, so a batch's metrics show where its time went by task
    kind.  (In serial mode the span nests under the parent's
    ``runner.map``; worker snapshots merge at the root.)
    """
    try:
        handler = HANDLERS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown spec kind: {spec.kind!r}") from None
    obs = get_registry()
    obs.inc(labelled("runner_specs_total", kind=spec.kind))
    with obs.span(f"task.{spec.kind}"):
        return handler(spec)
