"""Deterministic fault injection for the experiment runner.

Chaos engineering needs faults that are *repeatable*: a CI job that
kills a worker on task 3 must kill it on task 3 every run, and must
stop killing it once the recovery path has been exercised — otherwise
"the batch recovered" is luck, not a property.  :class:`FaultInjector`
provides that:

* **Seeded selection.**  Whether a rule fires on task *i* is decided by
  hashing ``(rule seed, rule index, task index)`` — no RNG state, so
  the decision is identical in every worker process and on every rerun.
* **Bounded firing.**  Each rule fires at most ``times`` times per
  task, tracked through marker files in a shared ``state_dir`` — worker
  processes see each other's markers, so "kill the first attempt, let
  the retry through" holds across pool rebuilds and even across the
  pool's degradation to serial execution.
* **Picklable wrapping.**  :meth:`FaultInjector.wrap` returns a
  top-level callable that crosses process boundaries, which is how
  :class:`repro.runner.pool.ExperimentRunner` arms faults inside its
  workers.

Fault kinds
-----------
``kill``
    ``os._exit`` inside the worker — the un-catchable death (OOM
    killer, SIGKILL) that surfaces to the pool as ``BrokenProcessPool``.
    In serial mode this kills the calling process, exactly like a real
    fatal fault would; keep ``times`` bounded.
``error``
    Raises :class:`InjectedFault`, a transient Python exception — the
    retry-with-backoff path.
``io``
    Raises :class:`OSError` ("torn artifact write") — the failure mode
    of a disk-full or interrupted write surfacing as an exception.
``slow``
    Sleeps ``seconds`` then lets the task proceed — the timeout path.

Spec strings (CLI ``--inject-faults``)
--------------------------------------
Rules are ``;``-separated: ``kind[@task,task...][:key=value,...]``.

* ``kill@1,3`` — kill the worker running task 1 and task 3, once each.
* ``error:p=0.3,seed=7`` — transient failure on a seeded 30% of tasks.
* ``slow@2:seconds=1.5`` — task 2 stalls for 1.5 s (once).
* ``io@0:times=2`` — task 0's first two attempts fail with an IOError.

The module also ships :func:`tear_file` and :func:`corrupt_file`, the
artifact-level faults (truncation mid-payload, byte rot) used by the
checkpoint-integrity drills in ``tests/test_chaos.py`` and the
EXPERIMENTS.md "kill -9 drill".
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

#: Exit status used by ``kill`` faults — distinctive in post-mortems.
KILL_EXIT_CODE = 87

FAULT_KINDS = ("kill", "error", "io", "slow")


class InjectedFault(RuntimeError):
    """The transient exception raised by ``error`` fault rules."""


class FaultSpecError(ValueError):
    """A ``--inject-faults`` spec string could not be parsed."""


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject: what, on which tasks, how often.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    tasks:
        Task indices the rule applies to; ``None`` means every task.
    p:
        Probability a matching task is actually faulted, decided
        deterministically per task from ``seed`` (1.0 = always).
    seed:
        Seed for the per-task firing decision.
    seconds:
        Stall duration for ``slow`` rules.
    times:
        Maximum firings per task (spent firings persist in the
        injector's ``state_dir``, surviving process boundaries).
    """

    kind: str
    tasks: Optional[frozenset] = None
    p: float = 1.0
    seed: int = 0
    seconds: float = 0.05
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise FaultSpecError(f"fault probability out of range: {self.p}")
        if self.times < 1:
            raise FaultSpecError(f"fault times must be >= 1: {self.times}")

    def matches(self, task_index: int) -> bool:
        """Whether this rule applies to the task at ``task_index``."""
        return self.tasks is None or task_index in self.tasks


_RULE_FLOATS = {"p", "seconds"}
_RULE_INTS = {"seed", "times"}


def parse_fault_spec(spec: str) -> List[FaultRule]:
    """Parse a ``--inject-faults`` spec string into rules.

    See the module docstring for the grammar; raises
    :class:`FaultSpecError` on anything malformed so CLI typos fail
    loudly instead of silently injecting nothing.
    """
    rules: List[FaultRule] = []
    for chunk in (c.strip() for c in spec.split(";")):
        if not chunk:
            continue
        head, _, params = chunk.partition(":")
        kind, _, tasks = head.partition("@")
        kwargs: dict = {}
        if tasks:
            try:
                kwargs["tasks"] = frozenset(
                    int(t) for t in tasks.split(",") if t.strip()
                )
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad task list in fault rule {chunk!r}"
                ) from exc
        if params:
            for pair in params.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or (
                    key not in _RULE_FLOATS and key not in _RULE_INTS
                ):
                    raise FaultSpecError(
                        f"bad parameter {pair!r} in fault rule {chunk!r}"
                    )
                try:
                    kwargs[key] = (
                        float(value) if key in _RULE_FLOATS else int(value)
                    )
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad value {value!r} for {key} in {chunk!r}"
                    ) from exc
        rules.append(FaultRule(kind=kind.strip(), **kwargs))
    if not rules:
        raise FaultSpecError(f"empty fault spec: {spec!r}")
    return rules


class FaultInjector:
    """Injects seeded, bounded faults into runner tasks.

    Instances are picklable (rules + a state-directory path), so the
    same injector object works in the parent, in pool workers, and in
    the pool's serial-degradation fallback, all sharing one fire count
    per ``(rule, task)`` through marker files in ``state_dir``.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        state_dir: Optional[PathLike] = None,
    ) -> None:
        self.rules = list(rules)
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        self.state_dir = str(state_dir)
        pathlib.Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_spec(
        cls, spec: str, state_dir: Optional[PathLike] = None
    ) -> "FaultInjector":
        """Build an injector from a ``--inject-faults`` spec string."""
        return cls(parse_fault_spec(spec), state_dir=state_dir)

    # -- decision machinery -------------------------------------------

    @staticmethod
    def _decides(rule_index: int, rule: FaultRule, task_index: int) -> bool:
        """Deterministic per-task coin flip (identical in any process)."""
        if rule.p >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{rule.seed}:{rule_index}:{task_index}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < rule.p

    def _claim(self, rule_index: int, task_index: int, times: int) -> bool:
        """Consume one firing of a rule for a task, False when spent.

        Fire counts live as marker-file sizes in ``state_dir`` so they
        are visible across the processes a task may visit (original
        worker, rebuilt pool, serial fallback).  No locking: a task runs
        in exactly one process at a time.
        """
        marker = (
            pathlib.Path(self.state_dir)
            / f"rule{rule_index}-task{task_index}"
        )
        fired = marker.stat().st_size if marker.exists() else 0
        if fired >= times:
            return False
        with marker.open("a") as handle:
            handle.write("x")
            handle.flush()
            os.fsync(handle.fileno())
        return True

    def fired_counts(self) -> dict:
        """Total firings so far, keyed by fault kind.

        Read from the marker files in ``state_dir``, so the counts are
        exact even for faults whose firing destroyed the process that
        fired them (``kill``) or unwound it with an exception
        (``error``/``io``) — the claim is fsynced *before* the fault
        fires.  This is what the runner exports as the
        ``faults_fired_total{kind=...}`` counters.
        """
        totals: dict = {}
        state = pathlib.Path(self.state_dir)
        for rule_index, rule in enumerate(self.rules):
            fired = 0
            for marker in state.glob(f"rule{rule_index}-task*"):
                fired += marker.stat().st_size
            if fired:
                totals[rule.kind] = totals.get(rule.kind, 0) + fired
        return totals

    def perturb(self, task_index: int) -> None:
        """Fire every armed rule matching ``task_index`` (worker-side)."""
        for rule_index, rule in enumerate(self.rules):
            if not rule.matches(task_index):
                continue
            if not self._decides(rule_index, rule, task_index):
                continue
            if not self._claim(rule_index, task_index, rule.times):
                continue
            self._fire(rule)

    @staticmethod
    def _fire(rule: FaultRule) -> None:
        if rule.kind == "slow":
            time.sleep(rule.seconds)
            return
        if rule.kind == "error":
            raise InjectedFault("injected transient failure")
        if rule.kind == "io":
            raise OSError("injected torn artifact write")
        # kill: die the way the OOM killer kills — no exception, no
        # cleanup, the pool just loses a process.
        os._exit(KILL_EXIT_CODE)

    def wrap(self, fn: Callable, task_index: int) -> "FaultingCall":
        """A picklable callable running ``fn`` behind this injector."""
        return FaultingCall(self, fn, task_index)


class FaultingCall:
    """Picklable ``fn`` wrapper that perturbs before each invocation."""

    def __init__(
        self, injector: FaultInjector, fn: Callable, task_index: int
    ) -> None:
        self.injector = injector
        self.fn = fn
        self.task_index = task_index

    def __call__(self, payload):
        self.injector.perturb(self.task_index)
        return self.fn(payload)


# ----------------------------------------------------------------------
# Artifact-level faults (for checkpoint-integrity drills)
# ----------------------------------------------------------------------


def tear_file(path: PathLike, keep_fraction: float = 0.5) -> pathlib.Path:
    """Truncate a file mid-payload, simulating a torn (non-atomic) write.

    This is the on-disk state a crash leaves behind when a writer skips
    the tmp-file + rename protocol — the checkpoint loader must detect
    it (JSON parse failure or checksum mismatch) and fall back.
    """
    target = pathlib.Path(path)
    data = target.read_bytes()
    keep = max(1, int(len(data) * keep_fraction))
    target.write_bytes(data[:keep])
    return target


def corrupt_file(path: PathLike, offset_fraction: float = 0.5) -> pathlib.Path:
    """Flip bytes mid-file (keeping length), simulating silent bit rot.

    Unlike :func:`tear_file` the result may still parse as JSON, which
    is exactly what the payload checksum exists to catch.
    """
    target = pathlib.Path(path)
    data = bytearray(target.read_bytes())
    if data:
        start = min(len(data) - 1, int(len(data) * offset_fraction))
        for i in range(start, min(len(data), start + 8)):
            data[i] ^= 0xFF
    target.write_bytes(bytes(data))
    return target
