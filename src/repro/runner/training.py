"""Checkpointed (resumable) training runs.

:func:`run_training` drives a :class:`SarsaLearner` in chunks of
``checkpoint_every`` episodes, snapshotting the Q-table + RNG state +
episode counter after every chunk and streaming per-episode metrics to
``episodes.jsonl``.  Because all randomness flows through the learner's
single generator and the snapshot captures its exact bit-generator
state, a run killed at any checkpoint boundary and finished by
:func:`resume_training` produces a final Q-table — and recommendation —
bit-identical to an uninterrupted run.

Artifacts in the run directory:

* ``manifest.json``   — progress, config fingerprint, outcome
* ``checkpoint.json`` — latest resumable snapshot (format v2)
* ``episodes.jsonl``  — per-episode metrics stream
* ``policy.json``     — final policy (written on completion)
* ``recommendation.json`` — final plan + score (written on completion)
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Union

from ..core.config import PlannerConfig
from ..core.exceptions import PlanningError
from ..obs import get_registry, write_metrics
from ..core.planner import RLPlanner
from ..core.qtable import QTableBase, make_qtable
from ..core.sarsa import SarsaLearner
from ..core.serialization import save_policy
from .checkpoint import (
    CHECKPOINT_NAME,
    TrainingCheckpoint,
    config_fingerprint,
    load_checkpoint,
)
from .manifest import (
    EPISODES_NAME,
    EpisodeMetricsWriter,
    RunManifest,
    atomic_write_text,
    tolerant_stream_rows,
)

PathLike = Union[str, pathlib.Path]

POLICY_NAME = "policy.json"
RECOMMENDATION_NAME = "recommendation.json"


@dataclass
class TrainingOutcome:
    """What a (possibly partial) training session produced."""

    run_dir: pathlib.Path
    manifest: RunManifest
    qtable: QTableBase
    completed_episodes: int
    plan_item_ids: Optional[tuple] = None
    score: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.manifest.status == "complete"


def run_training(
    dataset,
    run_dir: PathLike,
    episodes: Optional[int] = None,
    checkpoint_every: int = 50,
    limit_episodes: Optional[int] = None,
    config: Optional[PlannerConfig] = None,
    start_item: Optional[str] = None,
) -> TrainingOutcome:
    """Start a fresh checkpointed training run in ``run_dir``.

    ``limit_episodes`` caps this *session* (not the target): a run with
    ``episodes=500, limit_episodes=200`` trains 200 episodes, writes a
    checkpoint, and exits with status ``"interrupted"`` for a later
    :func:`resume_training` to finish — the session-budget analogue of
    being killed mid-run.
    """
    run_dir = pathlib.Path(run_dir)
    if (run_dir / CHECKPOINT_NAME).exists():
        raise PlanningError(
            f"{run_dir} already holds a training run; use resume_training"
        )
    config = config if config is not None else dataset.default_config
    target = episodes if episodes is not None else config.episodes
    start = start_item if start_item is not None else dataset.default_start
    if checkpoint_every <= 0:
        raise PlanningError("checkpoint_every must be positive")

    manifest = RunManifest(
        protocol="train",
        dataset=dataset.key,
        dataset_seed=int(config.seed or 0),
        root_seed=config.seed,
        config_fingerprint=config_fingerprint(config),
        target_episodes=target,
        checkpoint_every=checkpoint_every,
        start_item=start,
    )
    manifest.save(run_dir)

    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    learner = SarsaLearner(planner.env, config)
    table = make_qtable(dataset.catalog, backend=config.qtable_backend)
    return _train_loop(
        dataset, config, manifest, run_dir, learner, table,
        completed=0, session_budget=limit_episodes, append_stream=False,
    )


def resume_training(
    run_dir: PathLike,
    dataset=None,
    config: Optional[PlannerConfig] = None,
    limit_episodes: Optional[int] = None,
) -> TrainingOutcome:
    """Continue an interrupted training run from its latest checkpoint.

    The dataset is re-resolved from the manifest (or passed explicitly
    for hand-built datasets); the checkpoint's config fingerprint must
    match, which catches both config drift and dataset drift.
    """
    run_dir = pathlib.Path(run_dir)
    manifest = RunManifest.load(run_dir)
    if manifest.protocol != "train":
        raise PlanningError(
            f"cannot resume protocol {manifest.protocol!r}; only "
            "checkpointed training runs are resumable"
        )
    if dataset is None:
        from ..datasets import load

        dataset = load(
            manifest.dataset, seed=manifest.dataset_seed, with_gold=False
        )
    config = config if config is not None else dataset.default_config
    checkpoint = load_checkpoint(run_dir, dataset.catalog)
    if checkpoint is None:
        raise PlanningError(
            f"no checkpoint found in {run_dir}; nothing to resume"
        )
    checkpoint.verify_config(config)
    if manifest.status == "complete":
        # Idempotent: the run already finished.
        return _completed_outcome(run_dir, manifest, checkpoint.qtable)

    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    learner = SarsaLearner(planner.env, config)
    learner.rng_state = checkpoint.rng_state
    _truncate_stream(run_dir / EPISODES_NAME, checkpoint.episode)
    return _train_loop(
        dataset, config, manifest, run_dir, learner, checkpoint.qtable,
        completed=checkpoint.episode, session_budget=limit_episodes,
        append_stream=True,
    )


def _train_loop(
    dataset,
    config: PlannerConfig,
    manifest: RunManifest,
    run_dir: pathlib.Path,
    learner: SarsaLearner,
    table: QTableBase,
    completed: int,
    session_budget: Optional[int],
    append_stream: bool,
) -> TrainingOutcome:
    target = manifest.target_episodes or config.episodes
    every = manifest.checkpoint_every or 50
    start = manifest.start_item or dataset.default_start
    t0 = time.perf_counter()
    session_done = 0

    with EpisodeMetricsWriter(
        run_dir / EPISODES_NAME, append=append_stream
    ) as stream:
        while completed < target:
            if session_budget is not None and session_done >= session_budget:
                break
            chunk = min(every, target - completed)
            if session_budget is not None:
                chunk = min(chunk, session_budget - session_done)
            result = learner.learn(
                start_item_ids=[start],
                episodes=chunk,
                qtable=table,
                start_episode=completed,
                on_episode=lambda s: stream.write(
                    {
                        "episode": s.episode,
                        "start": s.start_item_id,
                        "length": s.length,
                        "total_reward": s.total_reward,
                        "zero_reward_steps": s.zero_reward_steps,
                    }
                ),
            )
            table = result.qtable
            completed += chunk
            session_done += chunk
            TrainingCheckpoint(
                qtable=table,
                episode=completed,
                rng_state=learner.rng_state,
                config_fingerprint=config_fingerprint(config),
                target_episodes=target,
                start_item=start,
            ).save(run_dir / CHECKPOINT_NAME)
            manifest.completed_episodes = completed
            manifest.wall_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            manifest.save(run_dir)

    # Session-end metrics export (no-op when observability is off).
    # Interrupted sessions export too: a resumed run's registry picks up
    # where its own session started, not where the run did.
    write_metrics(run_dir, get_registry())
    if completed < target:
        manifest.status = "interrupted"
        manifest.save(run_dir)
        return TrainingOutcome(
            run_dir=run_dir,
            manifest=manifest,
            qtable=table,
            completed_episodes=completed,
        )
    return _finalize(dataset, config, manifest, run_dir, table, start)


def _finalize(
    dataset,
    config: PlannerConfig,
    manifest: RunManifest,
    run_dir: pathlib.Path,
    table: QTableBase,
    start: str,
) -> TrainingOutcome:
    save_policy(table, run_dir / POLICY_NAME)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    planner.adopt_policy(table)
    plan, score = planner.recommend_scored(start)
    payload = {
        "start": start,
        "plan": list(plan.item_ids),
        "score": score.value,
        "is_valid": bool(score.is_valid),
    }
    atomic_write_text(
        run_dir / RECOMMENDATION_NAME,
        json.dumps(payload, indent=2, sort_keys=True),
    )
    manifest.status = "complete"
    manifest.result = payload
    manifest.save(run_dir)
    return TrainingOutcome(
        run_dir=run_dir,
        manifest=manifest,
        qtable=table,
        completed_episodes=manifest.completed_episodes,
        plan_item_ids=tuple(plan.item_ids),
        score=score.value,
    )


def _completed_outcome(
    run_dir: pathlib.Path, manifest: RunManifest, table: QTableBase
) -> TrainingOutcome:
    result = manifest.result or {}
    return TrainingOutcome(
        run_dir=run_dir,
        manifest=manifest,
        qtable=table,
        completed_episodes=manifest.completed_episodes,
        plan_item_ids=tuple(result.get("plan", ())) or None,
        score=result.get("score"),
    )


def _truncate_stream(path: pathlib.Path, upto_episode: int) -> None:
    """Drop stream rows at/after ``upto_episode`` (crash-torn tail).

    A crash can land between "episodes written to the stream" and "the
    checkpoint that covers them", leaving rows the resumed run will
    re-emit — and possibly a half-written final line.  The tolerant
    reader truncates the torn tail; trimming past-checkpoint rows keeps
    the stream an exact, duplicate-free record.  Re-serialization uses
    the writer's own format (sorted keys), so surviving rows stay
    byte-identical.
    """
    if not path.exists():
        return
    kept = [
        json.dumps(row, sort_keys=True)
        for row in tolerant_stream_rows(path)
        if int(row.get("episode", -1)) < upto_episode
    ]
    atomic_write_text(path, "".join(k + "\n" for k in kept))
