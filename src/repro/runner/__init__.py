"""Checkpointable parallel experiment runner.

The fault-tolerant fan-out layer under every experiment protocol:

* :class:`ExperimentRunner` — process-pool execution with per-task
  timeout, bounded retry, failure capture, and deterministic (worker-
  count-independent) results.
* :class:`RunSpec` / :func:`execute_spec` — picklable task descriptions
  for the paper's protocols (comparison runs, sweep points, timing
  measurements).
* :func:`child_seeds` — ``np.random.SeedSequence``-derived seed trees.
* :class:`RunManifest` / :class:`EpisodeMetricsWriter` — observability
  artifacts (manifest.json + episodes.jsonl) for every run.
* :func:`run_training` / :func:`resume_training` — mid-training
  checkpoint/resume for the SARSA learner (bit-identical continuation).
"""

from .checkpoint import (
    CHECKPOINT_NAME,
    TrainingCheckpoint,
    config_fingerprint,
    load_checkpoint,
)
from .manifest import (
    EPISODES_NAME,
    MANIFEST_NAME,
    EpisodeMetricsWriter,
    RunManifest,
    fingerprint_payload,
    git_sha,
    write_batch_artifacts,
)
from .pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExperimentRunner,
    TaskResult,
    TaskTimeoutError,
)
from .seeds import child_seeds
from .specs import (
    HANDLERS,
    RunSpec,
    execute_spec,
    get_dataset,
    prime_dataset_cache,
)
from .training import (
    POLICY_NAME,
    RECOMMENDATION_NAME,
    TrainingOutcome,
    resume_training,
    run_training,
)

__all__ = [
    "CHECKPOINT_NAME",
    "EPISODES_NAME",
    "ExperimentRunner",
    "EpisodeMetricsWriter",
    "HANDLERS",
    "MANIFEST_NAME",
    "POLICY_NAME",
    "RECOMMENDATION_NAME",
    "RunManifest",
    "RunSpec",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "TaskResult",
    "TaskTimeoutError",
    "TrainingCheckpoint",
    "TrainingOutcome",
    "child_seeds",
    "config_fingerprint",
    "execute_spec",
    "fingerprint_payload",
    "get_dataset",
    "git_sha",
    "load_checkpoint",
    "prime_dataset_cache",
    "resume_training",
    "run_training",
    "write_batch_artifacts",
]
