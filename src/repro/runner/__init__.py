"""Checkpointable parallel experiment runner.

The fault-tolerant fan-out layer under every experiment protocol:

* :class:`ExperimentRunner` — process-pool execution with per-task
  timeout, bounded retry, failure capture, and deterministic (worker-
  count-independent) results.
* :class:`RunSpec` / :func:`execute_spec` — picklable task descriptions
  for the paper's protocols (comparison runs, sweep points, timing
  measurements).
* :func:`child_seeds` — ``np.random.SeedSequence``-derived seed trees.
* :class:`RunManifest` / :class:`EpisodeMetricsWriter` — observability
  artifacts (manifest.json + episodes.jsonl) for every run.
* :func:`run_training` / :func:`resume_training` — mid-training
  checkpoint/resume for the SARSA learner (bit-identical continuation).
* :class:`FaultInjector` — seeded, deterministic chaos (worker kills,
  transient errors, stalls, torn writes) wrapped around any task, so
  every recovery path above is testable and stays tested.
"""

from .checkpoint import (
    CHECKPOINT_NAME,
    CHECKPOINT_PREV_NAME,
    TrainingCheckpoint,
    config_fingerprint,
    load_checkpoint,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    corrupt_file,
    parse_fault_spec,
    tear_file,
)
from .manifest import (
    EPISODES_NAME,
    MANIFEST_NAME,
    EpisodeMetricsWriter,
    RunManifest,
    atomic_write_text,
    fingerprint_payload,
    git_sha,
    tolerant_stream_rows,
    write_batch_artifacts,
)
from .pool import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExperimentRunner,
    TaskResult,
    TaskTimeoutError,
)
from .seeds import child_seeds
from .specs import (
    HANDLERS,
    RunSpec,
    execute_spec,
    get_dataset,
    prime_dataset_cache,
)
from .training import (
    POLICY_NAME,
    RECOMMENDATION_NAME,
    TrainingOutcome,
    resume_training,
    run_training,
)

__all__ = [
    "CHECKPOINT_NAME",
    "CHECKPOINT_PREV_NAME",
    "EPISODES_NAME",
    "ExperimentRunner",
    "EpisodeMetricsWriter",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "FaultSpecError",
    "HANDLERS",
    "InjectedFault",
    "MANIFEST_NAME",
    "POLICY_NAME",
    "RECOMMENDATION_NAME",
    "RunManifest",
    "RunSpec",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "TaskResult",
    "TaskTimeoutError",
    "TrainingCheckpoint",
    "TrainingOutcome",
    "atomic_write_text",
    "child_seeds",
    "config_fingerprint",
    "corrupt_file",
    "execute_spec",
    "fingerprint_payload",
    "get_dataset",
    "git_sha",
    "load_checkpoint",
    "parse_fault_spec",
    "prime_dataset_cache",
    "resume_training",
    "run_training",
    "tear_file",
    "tolerant_stream_rows",
    "write_batch_artifacts",
]
