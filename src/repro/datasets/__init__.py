"""Dataset loaders: the paper's six datasets plus the Table II toy."""

from .loaders import (
    Dataset,
    LOADERS,
    load,
    load_nyc,
    load_paris,
    load_synthetic,
    load_toy,
    load_univ1_cs,
    load_univ1_cyber,
    load_univ1_dsct,
    load_univ2_ds,
)
from .synthetic import SyntheticSpec, generate_instance
from .toy import (
    TOY_TOPICS,
    toy_course_catalog,
    toy_course_task,
    toy_template,
)

__all__ = [
    "Dataset",
    "SyntheticSpec",
    "generate_instance",
    "LOADERS",
    "TOY_TOPICS",
    "load",
    "load_nyc",
    "load_paris",
    "load_synthetic",
    "load_toy",
    "load_univ1_cs",
    "load_univ1_cyber",
    "load_univ1_dsct",
    "load_univ2_ds",
    "toy_course_catalog",
    "toy_course_task",
    "toy_template",
]
