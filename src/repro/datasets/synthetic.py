"""Parametric random TPP instances.

Beyond the six paper datasets, experiments (stress tests, property
tests, scalability studies) need TPP instances of arbitrary size whose
feasibility is guaranteed by construction.  :func:`generate_instance`
produces a catalog + task pair with tunable item counts, topic-vector
sparsity, prerequisite density, and plan shape.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.catalog import Catalog
from ..core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from ..core.exceptions import DatasetError
from ..core.items import Item, ItemType, Prerequisites
from ..domains.courses.programs import default_template_labels


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs of a random TPP instance.

    Defaults produce a mid-sized course-like instance; every count is
    validated for mutual consistency at generation time.
    """

    num_items: int = 40
    num_topics: int = 30
    num_primary_items: int = 12
    plan_primary: int = 4
    plan_secondary: int = 5
    credits_per_item: float = 3.0
    gap: int = 2
    topics_per_item: Tuple[int, int] = (2, 4)
    prerequisite_fraction: float = 0.3
    seed: int = 0

    @property
    def plan_length(self) -> int:
        """Items per plan."""
        return self.plan_primary + self.plan_secondary


def generate_instance(
    spec: Optional[SyntheticSpec] = None, **overrides
) -> Tuple[Catalog, TaskSpec]:
    """Generate a random but guaranteed-feasible TPP instance.

    Keyword overrides are applied on top of ``spec`` (or the default
    spec), e.g. ``generate_instance(num_items=100, seed=3)``.
    """
    if spec is None:
        spec = SyntheticSpec()
    if overrides:
        spec = SyntheticSpec(
            **{**spec.__dict__, **overrides}  # type: ignore[arg-type]
        )
    _validate(spec)
    rng = np.random.default_rng(spec.seed)

    vocabulary = tuple(f"topic{i:03d}" for i in range(spec.num_topics))
    lo, hi = spec.topics_per_item

    items = []
    for index in range(spec.num_items):
        want = int(rng.integers(lo, hi + 1))
        picks = rng.choice(spec.num_topics, size=want, replace=False)
        # Guarantee full vocabulary coverage by dealing topic `index`
        # (mod vocabulary) into item `index`.
        topics = {vocabulary[int(p)] for p in picks}
        topics.add(vocabulary[index % spec.num_topics])
        items.append(
            Item(
                item_id=f"item{index:03d}",
                name=f"Synthetic Item {index:03d}",
                item_type=(
                    ItemType.PRIMARY
                    if index < spec.num_primary_items
                    else ItemType.SECONDARY
                ),
                credits=spec.credits_per_item,
                topics=frozenset(topics),
            )
        )

    # Shallow prerequisites over the later two thirds of the catalog;
    # early items (including every plan-eligible starting primary) stay
    # prerequisite-free so instances remain trivially feasible.
    n_with_prereqs = int(spec.prerequisite_fraction * spec.num_items)
    eligible = list(range(spec.num_items // 3, spec.num_items))
    chosen = rng.choice(
        len(eligible),
        size=min(n_with_prereqs, len(eligible)),
        replace=False,
    )
    rebuilt = list(items)
    receivers = {eligible[int(row)] for row in chosen}
    # Antecedents come from earlier items that neither have nor will
    # receive prerequisites, keeping every chain depth <= 2.  All
    # original items are prerequisite-free, so each receiver's pool is
    # exactly the non-receiver indices below it — a prefix of the sorted
    # `free` list, found by bisection instead of an O(n) rescan per
    # receiver (the old quadratic loop dominated 50k-item generation).
    free = sorted(set(range(spec.num_items)) - receivers)
    for index in sorted(receivers):
        cut = bisect.bisect_left(free, index)
        if cut == 0:
            continue
        n_ante = int(rng.integers(1, min(2, cut) + 1))
        ante_rows = rng.choice(cut, size=n_ante, replace=False)
        ante = [rebuilt[free[int(r)]].item_id for r in ante_rows]
        prereq = (
            Prerequisites.any_of(ante)
            if len(ante) > 1 and rng.random() < 0.5
            else Prerequisites.all_of(ante)
        )
        old = rebuilt[index]
        rebuilt[index] = Item(
            item_id=old.item_id,
            name=old.name,
            item_type=old.item_type,
            credits=old.credits,
            prerequisites=prereq,
            topics=old.topics,
        )

    catalog = Catalog(
        rebuilt,
        name=f"synthetic-{spec.num_items}x{spec.num_topics}"
             f"-seed{spec.seed}",
        topic_vocabulary=vocabulary,
    )
    task = TaskSpec(
        hard=HardConstraints.for_courses(
            min_credits=spec.plan_length * spec.credits_per_item,
            num_primary=spec.plan_primary,
            num_secondary=spec.plan_secondary,
            gap=spec.gap,
        ),
        soft=SoftConstraints(
            ideal_topics=frozenset(vocabulary),
            template=InterleavingTemplate.from_labels(
                default_template_labels(
                    spec.plan_primary, spec.plan_secondary
                )
            ),
        ),
        name=catalog.name,
    )
    return catalog, task


def _validate(spec: SyntheticSpec) -> None:
    if spec.num_items < spec.plan_length:
        raise DatasetError(
            "catalog smaller than the requested plan length"
        )
    if spec.num_primary_items < spec.plan_primary:
        raise DatasetError(
            "not enough primary items for the requested split"
        )
    if spec.num_primary_items >= spec.num_items:
        raise DatasetError("catalog needs secondary items too")
    if spec.num_topics < 1 or spec.num_items < 1:
        raise DatasetError("counts must be positive")
    lo, hi = spec.topics_per_item
    if not 1 <= lo <= hi <= spec.num_topics:
        raise DatasetError("bad topics_per_item range")
    if not 0.0 <= spec.prerequisite_fraction <= 1.0:
        raise DatasetError("prerequisite_fraction must be in [0, 1]")
