"""The paper's running toy example (Table II, Examples 1 and 2).

Table II's six-course mini catalog with its 13-topic vocabulary, the
Example-1 ideal topics (Classification, Clustering, Neural Network,
Linear System) and the Section II-B-1 interleaving template.  Used by
the quickstart example, documentation snippets, and tests that pin the
paper's worked numbers.
"""

from __future__ import annotations

from typing import Tuple

from ..core.catalog import Catalog
from ..core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from ..core.items import Item, ItemType, Prerequisites

# Table II's 13 topics, in column order.
TOY_TOPICS: Tuple[str, ...] = (
    "algorithms",
    "classification",
    "clustering",
    "statistics",
    "regression",
    "data structure",
    "neural network",
    "probability",
    "data visualization",
    "linear system",
    "matrix decomposition",
    "data management",
    "data transfer",
)


def toy_course_catalog() -> Catalog:
    """The six-course catalog of Table II (m1..m6)."""
    items = (
        Item(
            item_id="m1",
            name="Data Structures and Algorithms",
            item_type=ItemType.PRIMARY,
            credits=3,
            topics=frozenset({"algorithms", "data structure"}),
        ),
        Item(
            item_id="m2",
            name="Data Mining",
            item_type=ItemType.SECONDARY,
            credits=3,
            topics=frozenset({"classification", "clustering"}),
        ),
        Item(
            item_id="m3",
            name="Data Analytics",
            item_type=ItemType.PRIMARY,
            credits=3,
            topics=frozenset({"statistics", "probability"}),
        ),
        Item(
            item_id="m4",
            name="Linear Algebra",
            item_type=ItemType.SECONDARY,
            credits=3,
            topics=frozenset({"data visualization", "linear system"}),
        ),
        Item(
            item_id="m5",
            name="Big Data",
            item_type=ItemType.SECONDARY,
            credits=3,
            prerequisites=Prerequisites.any_of(["m2", "m3"]),
            topics=frozenset(
                {"algorithms", "matrix decomposition", "data management"}
            ),
        ),
        Item(
            item_id="m6",
            name="Machine Learning",
            item_type=ItemType.PRIMARY,
            credits=3,
            prerequisites=Prerequisites.all_of(["m4", "m2"]),
            topics=frozenset(
                {"classification", "clustering", "regression",
                 "neural network"}
            ),
        ),
    )
    return Catalog(items, name="Table II toy", topic_vocabulary=TOY_TOPICS)


def toy_template() -> InterleavingTemplate:
    """The Section II-B-1 template (3 permutations of 3 P + 3 S)."""
    return InterleavingTemplate.from_labels(
        (
            ("P", "P", "S", "P", "S", "S"),
            ("P", "S", "S", "S", "P", "P"),
            ("P", "S", "S", "P", "P", "S"),
        )
    )


def toy_course_task(gap: int = 1) -> TaskSpec:
    """Example 1's TPP instance over the toy catalog.

    The paper's running gap for the full datasets is 3 (one semester);
    the toy catalog only has 6 courses so examples default to ``gap=1``
    (m6 requires m4 AND m2 somewhere earlier), which is the setting
    under which the paper's illustrative sequence
    m1 -> m2 -> m4 -> m5 -> m6 -> m3 is feasible.
    """
    hard = HardConstraints.for_courses(
        min_credits=18, num_primary=3, num_secondary=3, gap=gap
    )
    soft = SoftConstraints(
        ideal_topics=frozenset(
            {"classification", "clustering", "neural network",
             "linear system"}
        ),
        template=toy_template(),
    )
    return TaskSpec(hard=hard, soft=soft, name="toy M.S. DS-CT")
