"""Unified dataset loaders for every experiment in the paper.

Each loader returns a :class:`Dataset` bundling the catalog, the TPP
task, the domain mode, the matching default planner configuration
(Table III), the default starting item, and a gold-standard plan —
everything a bench or example needs in one object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from ..core.catalog import Catalog
from ..core.config import PlannerConfig, UNIV2_CATEGORY_WEIGHTS
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import DatasetError
from ..core.plan import Plan
from ..serving.admission import AdmissionReport, audit_catalog
from ..domains.courses import (
    GeneratedProgram,
    generate_njit_university,
    generate_univ2_program,
    gold_course_plan,
)
from ..domains.trips import TripDataset, gold_trip_plan, load_city
from .synthetic import SyntheticSpec, generate_instance
from .toy import toy_course_catalog, toy_course_task


@dataclass(frozen=True)
class Dataset:
    """One ready-to-run TPP dataset.

    Attributes
    ----------
    key:
        Stable identifier, e.g. ``"njit_dsct"`` or ``"nyc"``.
    catalog / task / mode:
        The TPP instance.
    default_config:
        Table III defaults for this dataset.
    default_start:
        The Table III starting item ``s_1``.
    gold_plan:
        A gold-standard plan (None when the oracle is skipped).
    itineraries:
        Historical itineraries (trip datasets only) for OMEGA.
    admission:
        The load-time admission audit (None when loading bypassed it).
    """

    key: str
    catalog: Catalog
    task: TaskSpec
    mode: DomainMode
    default_config: PlannerConfig
    default_start: str
    gold_plan: Optional[Plan] = None
    itineraries: Tuple[Tuple[str, ...], ...] = ()
    admission: Optional[AdmissionReport] = None

    @property
    def name(self) -> str:
        """Human-readable dataset name."""
        return self.catalog.name

    def policy_key(self, config: Optional[PlannerConfig] = None) -> str:
        """Registry key for this dataset's default planning universe.

        The key a :class:`~repro.serving.PolicyRegistry` derives for
        ``(catalog, task, default_config, mode)`` — useful for prewarm
        scripts and for asserting that two loads share an artifact.
        ``config`` overrides the default configuration.
        """
        from ..serving.fingerprint import policy_key

        return policy_key(
            self.catalog,
            self.task,
            config if config is not None else self.default_config,
            self.mode,
        )


def _course_dataset(
    key: str,
    program: GeneratedProgram,
    config: PlannerConfig,
    with_gold: bool,
) -> Dataset:
    task = program.spec.task(program.catalog.topic_vocabulary)
    gold = None
    if with_gold:
        gold = gold_course_plan(
            program.catalog, task, start_item_id=program.default_start
        )
    return Dataset(
        key=key,
        catalog=program.catalog,
        task=task,
        mode=DomainMode.COURSE,
        default_config=config,
        default_start=program.default_start,
        gold_plan=gold,
    )


def load_univ1_dsct(seed: int = 0, with_gold: bool = True) -> Dataset:
    """Univ-1 M.S. Data Science — Computational Track (31 courses)."""
    program = generate_njit_university(seed=seed)["njit_dsct"]
    return _course_dataset(
        "njit_dsct", program, PlannerConfig.univ1_default(seed=seed), with_gold
    )


def load_univ1_cyber(seed: int = 0, with_gold: bool = True) -> Dataset:
    """Univ-1 M.S. Cybersecurity (30 courses)."""
    program = generate_njit_university(seed=seed)["njit_cyber"]
    return _course_dataset(
        "njit_cyber", program, PlannerConfig.univ1_default(seed=seed), with_gold
    )


def load_univ1_cs(seed: int = 0, with_gold: bool = True) -> Dataset:
    """Univ-1 M.S. Computer Science (32 courses)."""
    program = generate_njit_university(seed=seed)["njit_cs"]
    return _course_dataset(
        "njit_cs", program, PlannerConfig.univ1_default(seed=seed), with_gold
    )


def load_univ2_ds(seed: int = 0, with_gold: bool = True) -> Dataset:
    """Univ-2 M.S. Data Science (36 courses, six sub-disciplines)."""
    program = generate_univ2_program(seed=seed)
    config = PlannerConfig.univ2_default(
        category_weights=UNIV2_CATEGORY_WEIGHTS, seed=seed
    )
    return _course_dataset("univ2_ds", program, config, with_gold)


def _trip_dataset(trip: TripDataset, seed: int, with_gold: bool) -> Dataset:
    gold = None
    if with_gold:
        gold = gold_trip_plan(
            trip.catalog, trip.task, start_item_id=trip.default_start
        )
    return Dataset(
        key=trip.name,
        catalog=trip.catalog,
        task=trip.task,
        mode=DomainMode.TRIP,
        default_config=PlannerConfig.trip_default(seed=seed),
        default_start=trip.default_start,
        gold_plan=gold,
        itineraries=trip.itineraries,
    )


def load_nyc(seed: int = 0, with_gold: bool = True) -> Dataset:
    """NYC trip dataset (90 POIs, 21 themes, 2908 itineraries)."""
    return _trip_dataset(load_city("nyc", seed=seed), seed, with_gold)


def load_paris(seed: int = 0, with_gold: bool = True) -> Dataset:
    """Paris trip dataset (114 POIs, 16 themes, 5494 itineraries)."""
    return _trip_dataset(load_city("paris", seed=seed), seed, with_gold)


def load_toy(seed: int = 0, with_gold: bool = False) -> Dataset:
    """The paper's Table II six-course toy example."""
    catalog = toy_course_catalog()
    task = toy_course_task()
    gold = None
    if with_gold:
        gold = gold_course_plan(catalog, task, start_item_id="m1")
    return Dataset(
        key="toy",
        catalog=catalog,
        task=task,
        mode=DomainMode.COURSE,
        default_config=PlannerConfig(
            episodes=200, coverage_threshold=1.0, seed=seed
        ),
        default_start="m1",
        gold_plan=gold,
    )


def load_synthetic(
    seed: int = 0, with_gold: bool = False, **spec_overrides
) -> Dataset:
    """A guaranteed-feasible random instance (stress/scale experiments).

    Registered under the ``"synthetic"`` key so parallel workers — and
    the CLI — can resolve it by name like the paper datasets; the
    default :class:`SyntheticSpec` shape is used unless overridden.
    """
    catalog, task = generate_instance(
        SyntheticSpec(seed=seed), **spec_overrides
    )
    gold = None
    if with_gold:
        gold = gold_course_plan(
            catalog, task, start_item_id=catalog.items[0].item_id
        )
    return Dataset(
        key="synthetic",
        catalog=catalog,
        task=task,
        mode=DomainMode.COURSE,
        default_config=PlannerConfig(seed=seed),
        default_start=catalog.items[0].item_id,
        gold_plan=gold,
    )


LOADERS: Dict[str, Callable[..., Dataset]] = {
    "njit_dsct": load_univ1_dsct,
    "njit_cyber": load_univ1_cyber,
    "njit_cs": load_univ1_cs,
    "univ2_ds": load_univ2_ds,
    "nyc": load_nyc,
    "paris": load_paris,
    "toy": load_toy,
    "synthetic": load_synthetic,
}


#: Dataset keys audited in quarantine mode (generated content may carry
#: defects worth dropping); the built-in paper datasets are strict — a
#: defect there is a bug, not noise.
QUARANTINE_KEYS = frozenset({"synthetic"})


def load(
    key: str, seed: int = 0, with_gold: bool = True, audit: bool = True
) -> Dataset:
    """Load any dataset by key (see :data:`LOADERS`).

    Every load runs the serving layer's admission audit: built-in
    datasets are audited strictly (any structural defect — duplicate
    ids, dangling or cyclic prerequisites, NaN credits, an infeasible
    task — raises), while keys in :data:`QUARANTINE_KEYS` drop
    defective items and continue on the clean subset.  The report is
    attached as ``dataset.admission``; pass ``audit=False`` to skip
    (e.g. when deliberately loading a corrupted catalog in a test).
    """
    try:
        loader = LOADERS[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; available: {sorted(LOADERS)}"
        ) from None
    dataset = loader(seed=seed, with_gold=with_gold)
    if not audit:
        return dataset
    report, admitted = audit_catalog(
        dataset.catalog,
        task=dataset.task,
        mode=dataset.mode,
        quarantine=key in QUARANTINE_KEYS,
    )
    report.raise_if_rejected()
    return replace(dataset, catalog=admitted, admission=report)
