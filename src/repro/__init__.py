"""repro — reproduction of "Guided Task Planning Under Complex Constraints"
(Nikookar et al., ICDE 2022).

The package implements the Task Planning Problem (TPP) as a Constrained
MDP and solves it with the weighted-SARSA **RL-Planner**, along with the
paper's baselines (OMEGA, EDA), its two application domains (course
planning and trip planning) backed by synthetic dataset generators, a
simulated user study, and the full experiment harness that regenerates
every table and figure of the evaluation section.

Quickstart::

    from repro import RLPlanner, PlannerConfig
    from repro.datasets import load_univ1_dsct

    ds = load_univ1_dsct(seed=7)
    planner = RLPlanner(ds.catalog, ds.task, PlannerConfig.univ1_default())
    planner.fit()
    plan, score = planner.recommend_scored(ds.default_start)
"""

from .core import (
    ActionSelection,
    Catalog,
    DomainMode,
    GreedyPolicy,
    HardConstraints,
    InterleavingTemplate,
    Item,
    ItemType,
    Plan,
    PlanBuilder,
    PlanScore,
    PlanScorer,
    PlanValidator,
    PlannerConfig,
    Prerequisites,
    QTable,
    ReproError,
    RewardFunction,
    RewardWeights,
    RLPlanner,
    SarsaLearner,
    SimilarityMode,
    SoftConstraints,
    TaskSpec,
    TPPEnvironment,
    transfer_policy,
)

__version__ = "1.0.0"

__all__ = [
    "ActionSelection",
    "Catalog",
    "DomainMode",
    "GreedyPolicy",
    "HardConstraints",
    "InterleavingTemplate",
    "Item",
    "ItemType",
    "Plan",
    "PlanBuilder",
    "PlanScore",
    "PlanScorer",
    "PlanValidator",
    "PlannerConfig",
    "Prerequisites",
    "QTable",
    "ReproError",
    "RewardFunction",
    "RewardWeights",
    "RLPlanner",
    "SarsaLearner",
    "SimilarityMode",
    "SoftConstraints",
    "TPPEnvironment",
    "TaskSpec",
    "transfer_policy",
    "__version__",
]
