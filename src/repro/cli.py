"""Command-line interface: ``rl-planner <command> [options]``.

Commands
--------
plan        Train RL-Planner on a dataset and print a recommended plan.
compare     Figure-1 style comparison (RL-Planner / EDA / OMEGA / gold).
transfer    Learn on one dataset, apply the policy to another.
datasets    List available datasets with their statistics.
run         Drive an experiment protocol through the checkpointable
            parallel runner (``--workers N``; training runs checkpoint
            to ``--out`` and are resumable; ``--metrics`` records the
            observability registry to ``metrics.json``).
resume      Continue an interrupted ``run --protocol train`` run.
metrics     Render a run directory's ``metrics.json`` as
            Prometheus-style text (or raw JSON).
serve       Answer one request through the resilient serving facade
            (admission → deadline-bounded ladder → envelope); can serve
            from a saved artifact (``--policy``) or a train-once/
            serve-many registry (``--registry``), and with ``--listen
            HOST:PORT`` becomes a concurrent JSON-lines TCP server.
loadtest    Drive the concurrent server with a closed-loop concurrency
            sweep or an open-loop (Poisson, bursty) arrival process and
            report p50/p95/p99 latency, shed rate and SLO attainment;
            ``--inject-faults`` arms chaos mid-load and ``--churn``
            arms a seeded availability-churn schedule (closures,
            reopenings) against the live catalog.
registry    Inspect and manage a policy artifact registry
            (list / evict / prewarm).
audit       Run the admission auditor over a dataset and print the
            findings (exit 1 when the catalog/task is rejected).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import build_report, compare_planners, render_table, run_transfer
from .core.planner import RLPlanner
from .datasets import LOADERS, load


def _add_dataset_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dataset",
        choices=sorted(LOADERS),
        help="dataset key (see `rl-planner datasets`)",
    )


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for key in sorted(LOADERS):
        dataset = load(key, with_gold=False)
        stats = dataset.catalog.stats()
        rows.append(
            [
                key,
                stats["num_items"],
                stats["num_primary"],
                stats["num_topics"],
                dataset.mode.value,
                dataset.default_start,
            ]
        )
    print(
        render_table(
            ["key", "items", "primary", "topics", "mode", "start"],
            rows,
            title="Available datasets",
        )
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    config = dataset.default_config.replace(seed=args.seed)
    if args.episodes:
        config = config.replace(episodes=args.episodes)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    planner.fit(start_item_ids=[dataset.default_start])
    start = args.start or dataset.default_start
    plan, score = planner.recommend_scored(start)
    print(f"dataset : {dataset.name}")
    print(f"start   : {start}")
    print(f"plan    : {plan.describe()}")
    print(f"score   : {score.value:.2f} / {planner.scorer.gold_reference_score():.0f}")
    print(f"valid   : {score.report.describe()}")
    if args.explain:
        from .analysis import explain_plan

        print()
        print(explain_plan(planner, start, plan=plan).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = load(args.dataset, seed=args.seed)
    result = compare_planners(
        dataset, runs=args.runs, workers=args.workers
    )
    print(
        render_table(
            ["system", "mean score"],
            result.as_rows(),
            title=f"Figure-1 comparison on {dataset.name} "
            f"({args.runs} runs)",
        )
    )
    print(f"RL-Planner hard-constraint validity: {result.rl_validity:.0%}")
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    source = load(args.dataset, seed=args.seed, with_gold=False)
    target = load(args.target, seed=args.seed, with_gold=False)
    outcome = run_transfer(source, target, seed=args.seed)
    quality = "good" if outcome.is_good else "bad"
    print(f"learned on : {source.name}")
    print(f"applied to : {target.name}")
    print(f"plan ({quality}) : {outcome.plan.describe()}")
    print(f"score      : {outcome.score.value:.2f}")
    print(f"Q coverage : {outcome.entry_coverage:.0%}")
    return 0


def _print_training(outcome) -> int:
    print(f"run dir  : {outcome.run_dir}")
    print(f"episodes : {outcome.completed_episodes}")
    print(f"status   : {outcome.manifest.status}")
    if outcome.complete and outcome.plan_item_ids:
        print(f"plan     : {' -> '.join(outcome.plan_item_ids)}")
        print(f"score    : {outcome.score:.2f}")
    elif not outcome.complete:
        print("resume with: rl-planner resume " + str(outcome.run_dir))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .runner import run_training

    if getattr(args, "metrics", False):
        from . import obs

        obs.enable()
    dataset = load(
        args.dataset, seed=args.seed, with_gold=args.protocol == "compare"
    )
    fault_injector = None
    if getattr(args, "inject_faults", None):
        if args.protocol == "train":
            print(
                "--inject-faults applies to pooled protocols "
                "(compare, scalability), not train; ignoring",
                file=sys.stderr,
            )
        else:
            from .runner import FaultInjector

            fault_injector = FaultInjector.from_spec(args.inject_faults)
    if args.protocol == "train":
        if not args.out:
            print("run --protocol train requires --out RUN_DIR",
                  file=sys.stderr)
            return 2
        # Target episodes flow through the manifest, NOT the config:
        # resume reconstructs the config from dataset defaults + seed,
        # and the checkpoint fingerprint must match it exactly.
        config = dataset.default_config.replace(seed=args.seed)
        outcome = run_training(
            dataset,
            args.out,
            episodes=args.episodes,
            checkpoint_every=args.checkpoint_every,
            limit_episodes=args.limit_episodes,
            config=config,
        )
        code = _print_training(outcome)
        _report_metrics(args)
        return code

    if args.protocol == "compare":
        result = compare_planners(
            dataset,
            runs=args.runs,
            episodes=args.episodes,
            workers=args.workers,
            root_seed=args.root_seed,
            out_dir=args.out,
            fault_injector=fault_injector,
        )
        print(
            render_table(
                ["system", "mean score"],
                result.as_rows(),
                title=f"Figure-1 comparison on {dataset.name} "
                f"({args.runs} runs, {args.workers} workers)",
            )
        )
        print(
            "RL-Planner hard-constraint validity: "
            f"{result.rl_validity:.0%}"
        )
        if args.out:
            print(f"artifacts: {args.out}")
        _report_metrics(args)
        return 0

    # scalability
    from .analysis import measure_scalability

    result = measure_scalability(
        dataset,
        seed=args.seed,
        workers=args.workers,
        fault_injector=fault_injector,
    )
    rows = [
        [p.episodes, f"{p.learn_seconds:.3f}", f"{p.recommend_seconds:.4f}"]
        for p in result.points
    ]
    print(
        render_table(
            ["episodes", "learn s", "recommend s"],
            rows,
            title=f"Figure-2 timings on {dataset.name}",
        )
    )
    _report_metrics(args)
    return 0


def _report_metrics(args: argparse.Namespace) -> None:
    """Close out a ``--metrics`` run: point at (or print) the metrics.

    With ``--out`` the protocol already exported ``metrics.json`` next
    to the manifest; without one there is nowhere durable, so the
    Prometheus rendering goes to stdout instead.
    """
    if not getattr(args, "metrics", False):
        return
    from .obs import METRICS_NAME, get_registry, metrics_payload, to_prometheus

    if getattr(args, "out", None):
        print(f"metrics  : {args.out}/{METRICS_NAME}")
        return
    payload = metrics_payload(get_registry())
    print()
    print(to_prometheus(payload), end="")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import load_metrics, snapshot_fingerprint, to_prometheus

    snapshot = load_metrics(args.run_dir)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    fingerprint = snapshot.get("fingerprint") or snapshot_fingerprint(
        snapshot
    )
    print(f"# metrics fingerprint {fingerprint}")
    print(to_prometheus(snapshot), end="")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .runner import resume_training

    outcome = resume_training(
        args.run_dir, limit_episodes=args.limit_episodes
    )
    return _print_training(outcome)


def _build_service(args: argparse.Namespace, dataset):
    """Build + prime a PlanningService per the shared serve/loadtest flags."""
    from .serving import PlanningService, PolicyRegistry

    fault_injector = None
    # loadtest arms faults mid-run (it has --inject-at); serve arms at
    # construction so the single request sees them.
    if getattr(args, "inject_faults", None) and not hasattr(
        args, "inject_at"
    ):
        from .runner import FaultInjector

        fault_injector = FaultInjector.from_spec(args.inject_faults)
    service = PlanningService.from_dataset(
        dataset, fault_injector=fault_injector
    )
    if getattr(args, "registry", None):
        # Train-once/serve-many: the registry trains on the first miss
        # and answers every later request from the warm cache.
        service.attach_registry(
            PolicyRegistry(args.registry),
            episodes=args.episodes,
            label=args.dataset,
        )
    elif getattr(args, "policy", None):
        # Pre-trained artifact; checksum-verified on read.
        service.load_policy(args.policy)
    elif not getattr(args, "no_fit", False):
        episodes = args.episodes or dataset.default_config.episodes
        service.fit(
            start_item_ids=[dataset.default_start], episodes=episodes
        )
    else:
        print(
            "warning: --no-fit without --policy/--registry leaves the "
            "policy rung untrained; requests will degrade to EDA",
            file=sys.stderr,
        )
    return service


def _parse_listen(value: str):
    host, _, port = value.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.metrics:
        from . import obs

        obs.enable()
    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    service = _build_service(args, dataset)
    recovery = None
    if getattr(args, "journal", None):
        # Durability: replay the write-ahead journal *before* the
        # listener opens, so the first request already sees the
        # post-crash world (ready-gated below for --listen).
        from .serving import DeltaJournal

        journal = DeltaJournal(args.journal)
        recovery = service.attach_journal(journal)
        print(f"journal  : {args.journal} — {recovery.describe()}")
    if args.listen:
        import signal
        import threading

        from .serving import PlanningServer

        host, port = args.listen
        server = PlanningServer(
            service,
            workers=args.workers,
            max_queue=args.queue,
            default_deadline_s=args.deadline,
            ready=False,
        )
        bound_host, bound_port = server.listen(host, port)
        # Probes can connect now, but plan requests shed (not_ready)
        # until the recovered state is the one being served.
        server.mark_ready()
        print(f"dataset  : {dataset.name}")
        print(f"listening: {bound_host}:{bound_port} "
              f"({args.workers} workers, queue {args.queue})")
        print("protocol : one JSON request per line, e.g. "
              '{"start": null, "deadline_s": 1.0}; probes: '
              '{"op": "health"}, {"op": "ready"}')
        stop = threading.Event()

        def _on_sigterm(signum, frame):  # noqa: ARG001 - signal API
            stop.set()

        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            stop.wait()
            print("SIGTERM: draining...", file=sys.stderr)
        except KeyboardInterrupt:
            print("draining...", file=sys.stderr)
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.close()
            if service.journal is not None:
                service.journal.close()
        return 0
    result = service.serve(
        start_item_id=args.start or dataset.default_start,
        deadline_s=args.deadline,
    )
    if service.journal is not None:
        service.journal.close()
    print(f"dataset  : {dataset.name}")
    print(result.describe())
    if args.metrics:
        from .obs import get_registry, metrics_payload, to_prometheus

        print()
        print(to_prometheus(metrics_payload(get_registry())), end="")
    return 0 if result.ok else 1


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .serving import PlanningServer, closed_loop, open_loop

    if args.metrics:
        from . import obs

        obs.enable()
    if getattr(args, "connect", None):
        # Remote mode: drive an already-running `serve --listen` server
        # over TCP with restart-resilient clients — no local service,
        # dataset, or training at all.
        from .serving import RetryPolicy, tcp_closed_loop

        host, port = args.connect
        report = tcp_closed_loop(
            host,
            port,
            concurrency=int(args.levels.split(",")[0]),
            requests=args.requests,
            deadline_s=args.deadline,
            slo_s=args.slo,
            retry=RetryPolicy(seed=args.seed),
        )
        text = json.dumps(report, indent=2, sort_keys=True)
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"report  : {args.output}", file=sys.stderr)
        return 0
    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    service = _build_service(args, dataset)

    def make_server():
        return PlanningServer(
            service,
            workers=args.workers,
            max_queue=args.queue,
            default_deadline_s=args.deadline,
        )

    report: dict
    if args.mode == "closed":
        levels = [int(x) for x in args.levels.split(",") if x.strip()]
        runs = {}
        for level in levels:
            server = make_server()
            try:
                runs[str(level)] = closed_loop(
                    server,
                    concurrency=level,
                    requests=args.requests,
                    deadline_s=args.deadline,
                    slo_s=args.slo,
                    fault_spec=args.inject_faults,
                    fault_at=args.inject_at,
                    churn_spec=args.churn,
                )
            finally:
                server.close()
        report = {"mode": "closed", "levels": runs}
    else:
        server = make_server()
        try:
            report = open_loop(
                server,
                rate=args.rate,
                duration_s=args.duration,
                deadline_s=args.deadline,
                slo_s=args.slo,
                seed=args.seed,
                burst_every_s=args.burst_every,
                burst_len_s=args.burst_len,
                burst_factor=args.burst_factor,
                fault_spec=args.inject_faults,
                fault_at=args.inject_at,
                churn_spec=args.churn,
            )
        finally:
            server.close()
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report  : {args.output}", file=sys.stderr)
    if args.metrics:
        from .obs import get_registry, metrics_payload, to_prometheus

        print(file=sys.stderr)
        print(
            to_prometheus(metrics_payload(get_registry())),
            end="",
            file=sys.stderr,
        )
    return 0


def _resolve_registry_key(registry, prefix: str) -> Optional[str]:
    """Expand a (possibly short) key prefix to a unique stored key."""
    matches = [
        str(row["key"])
        for row in registry.entries()
        if str(row["key"]).startswith(prefix)
    ]
    if len(matches) == 1:
        return matches[0]
    if len(matches) > 1:
        print(f"key prefix {prefix!r} is ambiguous", file=sys.stderr)
        return None
    # Warm-cache-only keys have no meta row yet; accept exact matches.
    return prefix if prefix in registry.cached_keys else None


def _cmd_registry_list(args: argparse.Namespace) -> int:
    from .serving import PolicyRegistry

    registry = PolicyRegistry(args.root)
    rows = [
        [
            row["short_key"],
            row["version"],
            row["label"] or "-",
            row["mode"],
            row["episodes"] if row["episodes"] is not None else "-",
            row["update_count"],
            f"{row['age_s']:.0f}s",
            row["bytes"],
        ]
        for row in registry.entries()
    ]
    print(
        render_table(
            ["key", "ver", "label", "mode", "episodes", "updates",
             "age", "bytes"],
            rows,
            title=f"Policy registry at {args.root}",
        )
    )
    return 0


def _cmd_registry_evict(args: argparse.Namespace) -> int:
    from .serving import PolicyRegistry, short_key

    registry = PolicyRegistry(args.root)
    key = _resolve_registry_key(registry, args.key)
    if key is None:
        print(f"no registry entry matches {args.key!r}", file=sys.stderr)
        return 1
    removed = registry.evict(key, delete=args.delete)
    verb = "deleted" if args.delete else "evicted"
    print(f"{verb} {short_key(key)}" if removed else "nothing to do")
    return 0


def _cmd_registry_prewarm(args: argparse.Namespace) -> int:
    from .serving import PolicyRegistry, short_key

    registry = PolicyRegistry(args.root)
    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    meta, source = registry.prewarm(
        dataset.catalog,
        dataset.task,
        dataset.default_config,
        mode=dataset.mode,
        episodes=args.episodes,
        label=args.dataset,
    )
    print(f"key     : {short_key(meta.key)} (v{meta.version})")
    print(f"source  : {source}")
    print(f"updates : {meta.update_count}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .serving import audit_catalog

    dataset = load(
        args.dataset, seed=args.seed, with_gold=False, audit=False
    )
    report, admitted = audit_catalog(
        dataset.catalog,
        task=dataset.task,
        mode=dataset.mode,
        quarantine=args.quarantine,
    )
    print(f"dataset  : {dataset.name}")
    print(report.describe())
    if report.quarantined:
        dropped = len(dataset.catalog) - len(admitted)
        print(f"quarantined items: {dropped}")
    return 1 if report.rejected else 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .analysis import diagnose

    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    diagnosis = diagnose(dataset.catalog, dataset.task, dataset.mode)
    print(f"dataset : {dataset.name}")
    print(diagnosis.describe())
    return 0 if diagnosis.is_feasible else 1


def _cmd_report(args: argparse.Namespace) -> int:
    text = build_report(runs=args.runs, episodes=args.episodes)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The rl-planner argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rl-planner",
        description="Guided task planning under complex constraints "
        "(ICDE 2022 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets").set_defaults(
        func=_cmd_datasets
    )

    plan = sub.add_parser("plan", help="train and recommend one plan")
    _add_dataset_arg(plan)
    plan.add_argument("--start", help="starting item id")
    plan.add_argument("--episodes", type=int, help="override N")
    plan.add_argument(
        "--explain", action="store_true",
        help="print the per-step Eq. 2 breakdown",
    )
    plan.set_defaults(func=_cmd_plan)

    compare = sub.add_parser("compare", help="Figure-1 comparison")
    _add_dataset_arg(compare)
    compare.add_argument("--runs", type=int, default=5)
    compare.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (scores identical to serial)",
    )
    compare.set_defaults(func=_cmd_compare)

    run = sub.add_parser(
        "run", help="run a protocol through the parallel runner"
    )
    _add_dataset_arg(run)
    run.add_argument(
        "--protocol",
        choices=("train", "compare", "scalability"),
        default="compare",
    )
    run.add_argument(
        "--workers", type=int, default=1, help="process-pool size"
    )
    run.add_argument("--runs", type=int, default=5)
    run.add_argument("--episodes", type=int, help="override N")
    run.add_argument(
        "--checkpoint-every", type=int, default=50,
        help="training checkpoint interval (episodes)",
    )
    run.add_argument(
        "--limit-episodes", type=int,
        help="stop this training session early (resume later)",
    )
    run.add_argument(
        "--root-seed", type=int,
        help="derive run seeds from a SeedSequence instead of run indices",
    )
    run.add_argument(
        "--out",
        help="run directory (manifest + episode metrics; required for "
        "--protocol train)",
    )
    run.add_argument(
        "--inject-faults", metavar="SPEC",
        help="chaos-test the pool with deterministic faults, e.g. "
        "'kill@1;error:p=0.3,seed=7;slow@2:seconds=1' "
        "(kinds: kill, error, io, slow; scores must not change)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="record counters/gauges/spans; written to metrics.json "
        "next to the manifest when --out is set, else printed as "
        "Prometheus text",
    )
    run.set_defaults(func=_cmd_run)

    metrics = sub.add_parser(
        "metrics",
        help="render a run directory's metrics.json (Prometheus text)",
    )
    metrics.add_argument(
        "run_dir", help="run directory (or metrics.json path)"
    )
    metrics.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="output format (default: Prometheus text exposition)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    resume = sub.add_parser(
        "resume", help="continue an interrupted training run"
    )
    resume.add_argument("run_dir", help="directory of the interrupted run")
    resume.add_argument(
        "--limit-episodes", type=int,
        help="cap this session too (checkpoint again and exit)",
    )
    resume.set_defaults(func=_cmd_resume)

    transfer = sub.add_parser("transfer", help="transfer-learning case")
    _add_dataset_arg(transfer)
    transfer.add_argument(
        "target", choices=sorted(LOADERS), help="target dataset key"
    )
    transfer.set_defaults(func=_cmd_transfer)

    serve = sub.add_parser(
        "serve",
        help="answer one request through the resilient serving facade",
    )
    _add_dataset_arg(serve)
    serve.add_argument("--start", help="starting item id")
    serve.add_argument(
        "--deadline", type=float,
        help="request deadline in seconds (default: unbounded)",
    )
    serve.add_argument("--episodes", type=int, help="training episodes")
    serve.add_argument(
        "--no-fit", action="store_true",
        help="skip training (exercises the degradation ladder)",
    )
    serve.add_argument(
        "--policy", metavar="PATH",
        help="serve a saved policy artifact (checksum-verified) "
        "instead of fitting",
    )
    serve.add_argument(
        "--registry", metavar="DIR",
        help="serve through a policy registry at DIR (train-once/"
        "serve-many: first request trains, later ones hit the cache)",
    )
    serve.add_argument(
        "--inject-faults", metavar="SPEC",
        help="arm the ladder with deterministic faults; rung indices "
        "are sarsa=0, eda=1, repair=2 (e.g. 'slow@0:seconds=1')",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="print serving counters as Prometheus text",
    )
    serve.add_argument(
        "--listen", type=_parse_listen, metavar="HOST:PORT",
        help="serve the JSON-lines protocol on a TCP socket instead of "
        "answering one request (port 0 picks a free port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for --listen (default 4)",
    )
    serve.add_argument(
        "--queue", type=int, default=32,
        help="admission queue bound for --listen (default 32)",
    )
    serve.add_argument(
        "--journal", metavar="DIR",
        help="write-ahead delta journal directory: deltas are fsync'd "
        "before they apply, and startup replays snapshot+tail back "
        "into the live catalog (corrupt journals are quarantined, "
        "never crash-looped)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive the concurrent server with a closed- or open-loop "
        "load and report latency percentiles + SLO attainment",
    )
    _add_dataset_arg(loadtest)
    loadtest.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: N clients in lockstep; open: Poisson arrivals "
        "that never back off (exercises shedding)",
    )
    loadtest.add_argument(
        "--levels", default="1,4,16",
        help="closed-loop concurrency levels, comma-separated",
    )
    loadtest.add_argument(
        "--requests", type=int, default=64,
        help="closed-loop requests per level",
    )
    loadtest.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop arrival rate (req/s)",
    )
    loadtest.add_argument(
        "--duration", type=float, default=5.0,
        help="open-loop run length (seconds)",
    )
    loadtest.add_argument(
        "--burst-every", type=float, metavar="S",
        help="open-loop burst period (seconds; off by default)",
    )
    loadtest.add_argument(
        "--burst-len", type=float, default=0.5, metavar="S",
        help="burst window length (default 0.5s)",
    )
    loadtest.add_argument(
        "--burst-factor", type=float, default=4.0,
        help="rate multiplier inside a burst (default 4x)",
    )
    loadtest.add_argument(
        "--deadline", type=float,
        help="per-request deadline in seconds (default: unbounded)",
    )
    loadtest.add_argument(
        "--slo", type=float,
        help="latency SLO in seconds for the attainment figure",
    )
    loadtest.add_argument(
        "--workers", type=int, default=4, help="server thread-pool size"
    )
    loadtest.add_argument(
        "--queue", type=int, default=32, help="admission queue bound"
    )
    loadtest.add_argument("--episodes", type=int, help="training episodes")
    loadtest.add_argument(
        "--no-fit", action="store_true",
        help="skip training (requests degrade to EDA)",
    )
    loadtest.add_argument(
        "--policy", metavar="PATH", help="serve a saved policy artifact"
    )
    loadtest.add_argument(
        "--registry", metavar="DIR", help="serve through a policy registry"
    )
    loadtest.add_argument(
        "--inject-faults", metavar="SPEC",
        help="arm deterministic faults mid-load (rungs: sarsa=0, eda=1, "
        "repair=2; e.g. 'error@0:times=10'); see --inject-at",
    )
    loadtest.add_argument(
        "--inject-at", type=float, default=0.5, metavar="FRAC",
        help="run fraction at which the faults arm (default 0.5)",
    )
    loadtest.add_argument(
        "--churn", metavar="SPEC",
        help="arm a seeded availability-churn schedule mid-load, e.g. "
        "'poisson:rate=6,seed=3', 'cut:cuts=2', or "
        "'burst:every=0.25,len=0.1,per=2' (see repro.scenarios)",
    )
    loadtest.add_argument(
        "--output", metavar="PATH", help="also write the JSON report here"
    )
    loadtest.add_argument(
        "--metrics", action="store_true",
        help="print serving counters as Prometheus text on stderr",
    )
    loadtest.add_argument(
        "--connect", type=_parse_listen, metavar="HOST:PORT",
        help="drive a running `serve --listen` server over TCP instead "
        "of building one in-process; clients ride out server restarts "
        "with capped-backoff reconnects (first --levels entry is the "
        "concurrency)",
    )
    loadtest.set_defaults(func=_cmd_loadtest)

    registry = sub.add_parser(
        "registry",
        help="inspect and manage a policy artifact registry",
    )
    reg_sub = registry.add_subparsers(dest="registry_command", required=True)
    reg_list = reg_sub.add_parser("list", help="list stored policies")
    reg_list.add_argument("root", help="registry directory")
    reg_list.set_defaults(func=_cmd_registry_list)
    reg_evict = reg_sub.add_parser(
        "evict", help="drop a policy from the cache (and optionally disk)"
    )
    reg_evict.add_argument("root", help="registry directory")
    reg_evict.add_argument("key", help="policy key (prefix accepted)")
    reg_evict.add_argument(
        "--delete", action="store_true",
        help="also remove the on-disk artifact",
    )
    reg_evict.set_defaults(func=_cmd_registry_evict)
    reg_prewarm = reg_sub.add_parser(
        "prewarm", help="train (or load) a dataset's policy ahead of traffic"
    )
    reg_prewarm.add_argument("root", help="registry directory")
    reg_prewarm.add_argument(
        "dataset", choices=sorted(LOADERS), help="dataset key"
    )
    reg_prewarm.add_argument(
        "--episodes", type=int, help="training episodes on a miss"
    )
    reg_prewarm.set_defaults(func=_cmd_registry_prewarm)

    audit = sub.add_parser(
        "audit", help="run the admission auditor over a dataset"
    )
    _add_dataset_arg(audit)
    audit.add_argument(
        "--quarantine", action="store_true",
        help="drop defective items and report survivors instead of "
        "rejecting the whole catalog",
    )
    audit.set_defaults(func=_cmd_audit)

    diagnose_cmd = sub.add_parser(
        "diagnose", help="check a dataset's task for structural blockers"
    )
    _add_dataset_arg(diagnose_cmd)
    diagnose_cmd.set_defaults(func=_cmd_diagnose)

    report = sub.add_parser(
        "report", help="run the headline experiments, print a report"
    )
    report.add_argument("--runs", type=int, default=3)
    report.add_argument("--episodes", type=int, default=300)
    report.add_argument(
        "--out", help="also write the report to this file"
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``rl-planner`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
