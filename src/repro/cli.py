"""Command-line interface: ``rl-planner <command> [options]``.

Commands
--------
plan        Train RL-Planner on a dataset and print a recommended plan.
compare     Figure-1 style comparison (RL-Planner / EDA / OMEGA / gold).
transfer    Learn on one dataset, apply the policy to another.
datasets    List available datasets with their statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import build_report, compare_planners, render_table, run_transfer
from .core.planner import RLPlanner
from .datasets import LOADERS, load


def _add_dataset_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dataset",
        choices=sorted(LOADERS),
        help="dataset key (see `rl-planner datasets`)",
    )


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for key in sorted(LOADERS):
        dataset = load(key, with_gold=False)
        stats = dataset.catalog.stats()
        rows.append(
            [
                key,
                stats["num_items"],
                stats["num_primary"],
                stats["num_topics"],
                dataset.mode.value,
                dataset.default_start,
            ]
        )
    print(
        render_table(
            ["key", "items", "primary", "topics", "mode", "start"],
            rows,
            title="Available datasets",
        )
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    config = dataset.default_config.replace(seed=args.seed)
    if args.episodes:
        config = config.replace(episodes=args.episodes)
    planner = RLPlanner(
        dataset.catalog, dataset.task, config, mode=dataset.mode
    )
    planner.fit(start_item_ids=[dataset.default_start])
    start = args.start or dataset.default_start
    plan, score = planner.recommend_scored(start)
    print(f"dataset : {dataset.name}")
    print(f"start   : {start}")
    print(f"plan    : {plan.describe()}")
    print(f"score   : {score.value:.2f} / {planner.scorer.gold_reference_score():.0f}")
    print(f"valid   : {score.report.describe()}")
    if args.explain:
        from .analysis import explain_plan

        print()
        print(explain_plan(planner, start, plan=plan).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = load(args.dataset, seed=args.seed)
    result = compare_planners(dataset, runs=args.runs)
    print(
        render_table(
            ["system", "mean score"],
            result.as_rows(),
            title=f"Figure-1 comparison on {dataset.name} "
            f"({args.runs} runs)",
        )
    )
    print(f"RL-Planner hard-constraint validity: {result.rl_validity:.0%}")
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    source = load(args.dataset, seed=args.seed, with_gold=False)
    target = load(args.target, seed=args.seed, with_gold=False)
    outcome = run_transfer(source, target, seed=args.seed)
    quality = "good" if outcome.is_good else "bad"
    print(f"learned on : {source.name}")
    print(f"applied to : {target.name}")
    print(f"plan ({quality}) : {outcome.plan.describe()}")
    print(f"score      : {outcome.score.value:.2f}")
    print(f"Q coverage : {outcome.entry_coverage:.0%}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .analysis import diagnose

    dataset = load(args.dataset, seed=args.seed, with_gold=False)
    diagnosis = diagnose(dataset.catalog, dataset.task, dataset.mode)
    print(f"dataset : {dataset.name}")
    print(diagnosis.describe())
    return 0 if diagnosis.is_feasible else 1


def _cmd_report(args: argparse.Namespace) -> int:
    text = build_report(runs=args.runs, episodes=args.episodes)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The rl-planner argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rl-planner",
        description="Guided task planning under complex constraints "
        "(ICDE 2022 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets").set_defaults(
        func=_cmd_datasets
    )

    plan = sub.add_parser("plan", help="train and recommend one plan")
    _add_dataset_arg(plan)
    plan.add_argument("--start", help="starting item id")
    plan.add_argument("--episodes", type=int, help="override N")
    plan.add_argument(
        "--explain", action="store_true",
        help="print the per-step Eq. 2 breakdown",
    )
    plan.set_defaults(func=_cmd_plan)

    compare = sub.add_parser("compare", help="Figure-1 comparison")
    _add_dataset_arg(compare)
    compare.add_argument("--runs", type=int, default=5)
    compare.set_defaults(func=_cmd_compare)

    transfer = sub.add_parser("transfer", help="transfer-learning case")
    _add_dataset_arg(transfer)
    transfer.add_argument(
        "target", choices=sorted(LOADERS), help="target dataset key"
    )
    transfer.set_defaults(func=_cmd_transfer)

    diagnose_cmd = sub.add_parser(
        "diagnose", help="check a dataset's task for structural blockers"
    )
    _add_dataset_arg(diagnose_cmd)
    diagnose_cmd.set_defaults(func=_cmd_diagnose)

    report = sub.add_parser(
        "report", help="run the headline experiments, print a report"
    )
    report.add_argument("--runs", type=int, default=3)
    report.add_argument("--episodes", type=int, default=300)
    report.add_argument(
        "--out", help="also write the report to this file"
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``rl-planner`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
