"""Observability layer: metrics registry, timing spans, exporters.

The structured view of where time and reward go.  Hot layers (the SARSA
learn loop, :meth:`TPPEnvironment.step`, the experiment runner, the
fault injector) write counters, gauges, histograms, and timing spans
into the process-active :class:`MetricsRegistry`; a :class:`NullRegistry`
is active by default so instrumentation costs nothing until
:func:`enable` (or the CLI's ``--metrics`` flag) switches recording on.

Worker processes record into their own registries and ship snapshots
back over the runner's ``TaskResult`` channel (see
:class:`MeteredCall`); the parent merges them in task-index order, so
the aggregate is deterministic for any worker count.  Runs export the
merged registry as ``metrics.json`` (with a timing-independent
fingerprint, like the manifest's) and as Prometheus text via
``rl-planner metrics``.
"""

from .export import (
    METRICS_NAME,
    is_timing_metric,
    load_metrics,
    metrics_payload,
    snapshot_fingerprint,
    to_prometheus,
    write_metrics,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpanNode,
    disable,
    enable,
    get_registry,
    iter_span_nodes,
    labelled,
    set_registry,
    use_registry,
)


class MetricsEnvelope:
    """A task's return value bundled with its worker-side metrics."""

    __slots__ = ("value", "metrics")

    def __init__(self, value, metrics) -> None:
        self.value = value
        self.metrics = metrics


class MeteredCall:
    """Picklable wrapper recording a task's metrics in its own registry.

    The runner arms this around pool tasks when observability is on:
    inside the worker it activates a fresh registry, runs the task, and
    returns a :class:`MetricsEnvelope` so the snapshot rides the normal
    result channel back to the parent.  A task that raises loses its
    partial metrics with the attempt — retries start clean, and the
    parent's per-task counters (attempts, retries, timeouts) come from
    the ``TaskResult`` itself.
    """

    __slots__ = ("fn",)

    def __init__(self, fn) -> None:
        self.fn = fn

    def __call__(self, payload):
        registry = MetricsRegistry()
        with use_registry(registry):
            value = self.fn(payload)
        return MetricsEnvelope(value, registry.snapshot())


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_NAME",
    "MeteredCall",
    "MetricsEnvelope",
    "MetricsRegistry",
    "NullRegistry",
    "SpanNode",
    "disable",
    "enable",
    "get_registry",
    "is_timing_metric",
    "iter_span_nodes",
    "labelled",
    "load_metrics",
    "metrics_payload",
    "set_registry",
    "snapshot_fingerprint",
    "to_prometheus",
    "use_registry",
    "write_metrics",
]
