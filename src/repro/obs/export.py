"""Snapshot export: ``metrics.json`` payloads and Prometheus text.

Both exporters work from plain :meth:`MetricsRegistry.snapshot` dicts,
so the CLI can re-render a ``metrics.json`` written by a finished run
without reconstructing any live registry state.

The fingerprint mirrors the run manifest's: a SHA-256 over the
*deterministic* subset of the snapshot.  Wall-clock leaks into metrics
in exactly two places — span ``seconds`` fields and any metric whose
name marks it as a duration (``_seconds`` suffix or infix) — and both
are stripped before hashing, so two identical seeded runs produce equal
fingerprints even though their timings differ.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
from typing import Any, Dict, Union

from .registry import MetricsRegistry, iter_span_nodes

PathLike = Union[str, pathlib.Path]

METRICS_NAME = "metrics.json"

_SECONDS_NAME = re.compile(r"_seconds(_|$|\{)")


def is_timing_metric(name: str) -> bool:
    """Whether a metric name denotes wall-clock (excluded from hashing)."""
    return bool(_SECONDS_NAME.search(name))


def _deterministic_subset(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    spans: Dict[str, Any] = {}
    for path, node in iter_span_nodes(snapshot.get("spans", {})):
        # Span call counts are reproducible; their durations are not.
        spans[path] = node.get("count", 0)
    return {
        "schema": snapshot.get("schema"),
        "counters": {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if not is_timing_metric(name)
        },
        "gauges": {
            name: value
            for name, value in snapshot.get("gauges", {}).items()
            if not is_timing_metric(name)
        },
        "histograms": {
            name: value
            for name, value in snapshot.get("histograms", {}).items()
            if not is_timing_metric(name)
        },
        "span_counts": spans,
    }


def snapshot_fingerprint(snapshot: Dict[str, Any]) -> str:
    """SHA-256 over the timing-independent subset of a snapshot."""
    canonical = json.dumps(
        _deterministic_subset(snapshot),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def metrics_payload(registry: MetricsRegistry) -> Dict[str, Any]:
    """The ``metrics.json`` payload: snapshot + its fingerprint."""
    snapshot = registry.snapshot()
    snapshot["fingerprint"] = snapshot_fingerprint(snapshot)
    return snapshot


def write_metrics(run_dir: PathLike, registry: MetricsRegistry):
    """Write ``metrics.json`` next to the run's ``manifest.json``.

    No-ops (returning ``None``) for a disabled registry so callers can
    pass the active registry through unconditionally.
    """
    if not registry.enabled:
        return None
    from ..runner.manifest import atomic_write_text

    run_dir = pathlib.Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(
        run_dir / METRICS_NAME,
        json.dumps(metrics_payload(registry), indent=2, sort_keys=True)
        + "\n",
    )


def load_metrics(run_dir: PathLike) -> Dict[str, Any]:
    """Read a run directory's ``metrics.json`` back.

    Raises :class:`~repro.core.exceptions.ArtifactError` on a missing or
    unreadable file, consistent with :meth:`RunManifest.load`.
    """
    from ..core.exceptions import ArtifactError

    path = pathlib.Path(run_dir)
    if path.is_dir():
        path = path / METRICS_NAME
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactError(
            f"cannot read metrics file {path}: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ArtifactError(
            f"malformed metrics file {path}: not a JSON object"
        )
    return data


def _base_name(name: str) -> str:
    return name.partition("{")[0]


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot as Prometheus text-format exposition.

    Counters and histograms map directly; gauges expose their ``last``
    value plus ``_count``/``_sum`` companions (their running statistics
    live in the JSON snapshot); the span tree flattens to
    ``repro_span_seconds_total`` / ``repro_span_calls_total`` series
    labelled by the ``/``-joined span path.
    """
    lines = []
    typed = set()

    def emit_type(name: str, kind: str) -> None:
        base = _base_name(name)
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        emit_type(name, "counter")
        lines.append(f"{name} {value:g}")
    for name, payload in snapshot.get("gauges", {}).items():
        emit_type(name, "gauge")
        lines.append(f"{name} {payload['last']:g}")
        lines.append(f"{_with_suffix(name, '_sum')} {payload['total']:g}")
        lines.append(f"{_with_suffix(name, '_count')} {payload['count']:g}")
    for name, payload in snapshot.get("histograms", {}).items():
        emit_type(name, "histogram")
        # Bucket counts are stored cumulatively, matching Prometheus.
        for bound, count in zip(payload["bounds"], payload["counts"]):
            lines.append(
                f'{_with_labels(name, le=f"{bound:g}")} {count:g}'
            )
        lines.append(
            f'{_with_labels(name, le="+Inf")} {payload["counts"][-1]:g}'
        )
        lines.append(f"{_with_suffix(name, '_sum')} {payload['total']:g}")
        lines.append(f"{_with_suffix(name, '_count')} {payload['count']:g}")

    span_items = list(iter_span_nodes(snapshot.get("spans", {})))
    if span_items:
        lines.append("# TYPE repro_span_seconds_total counter")
        lines.append("# TYPE repro_span_calls_total counter")
        for path, node in span_items:
            label = f'{{span="{path}"}}'
            lines.append(
                f"repro_span_seconds_total{label} "
                f"{node.get('seconds', 0.0):.9g}"
            )
            lines.append(
                f"repro_span_calls_total{label} {node.get('count', 0):g}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _with_suffix(name: str, suffix: str) -> str:
    """Append a series suffix before any label block in ``name``."""
    base, brace, labels = name.partition("{")
    return f"{base}{suffix}{brace}{labels}"


def _with_labels(name: str, **labels: Any) -> str:
    """Add labels to ``name``, merging with any it already carries."""
    base, _, existing = name.partition("{")
    existing = existing.rstrip("}")
    extra = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    inner = f"{existing},{extra}" if existing else extra
    return f"{base}{{{inner}}}"
