"""Dependency-free metrics primitives: counters, gauges, histograms, spans.

The registry is the process-local sink every instrumented layer writes
to.  Three design constraints shape it:

* **Zero cost when off.**  The hot loops (SARSA steps, runner dispatch)
  are instrumented unconditionally; when observability is disabled the
  active registry is a :class:`NullRegistry` whose operations are
  attribute lookups on shared singletons — no allocation, no branching
  in caller code.
* **Mergeable across processes.**  A registry serializes to a plain-dict
  :meth:`~MetricsRegistry.snapshot` and folds another snapshot in with
  :meth:`~MetricsRegistry.merge`, which is how worker-process metrics
  ride the runner's ``TaskResult`` channel back to the parent.
* **Safe under concurrent writers.**  The serving front-end multiplexes
  requests across a thread pool, so every mutation — counter adds,
  gauge sets, histogram observes, span enter/exit — takes the
  instrument's lock (bare ``+=`` on a Python float is load/add/store
  and loses updates under preemption).  Span *nesting* is tracked with
  a per-thread stack over the shared tree, so concurrent ``serve``
  spans nest under their own thread's context instead of corrupting a
  global stack.  The :class:`NullRegistry` path stays allocation-free:
  disabled operations never touch a lock.
* **Deterministic identity.**  Everything a seeded run records — except
  wall-clock — is reproducible, so a snapshot has a timing-independent
  fingerprint (see :mod:`repro.obs.export`) exactly like the run
  manifest's.

Metric naming follows Prometheus conventions: ``_total`` suffix for
counters, ``_seconds`` for wall-clock values (the fingerprint strips
those), and :func:`labelled` for the ``name{key="value"}`` label form.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds.  Fixed (never derived from the
#: data) so histograms from different workers and different runs merge
#: bucket-for-bucket and fingerprint identically.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)


def labelled(name: str, **labels: Any) -> str:
    """Canonical ``name{key="value",...}`` metric id (keys sorted).

    Labels are folded into the metric name rather than kept structured —
    the registry stays a flat dict and the Prometheus renderer emits the
    id verbatim.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value, tracked with running min/max/sum/count.

    The extra statistics make per-episode gauges useful after the fact
    (mean episode reward, max episode length) and make cross-worker
    merges well-defined: min/max/total/count combine exactly; ``last``
    is taken from the most recently merged snapshot, which the runner
    keeps deterministic by merging in task-index order.
    """

    __slots__ = ("name", "last", "min", "max", "total", "count", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last = 0.0
        self.min = 0.0
        self.max = 0.0
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if self.count == 0:
                self.min = value
                self.max = value
            else:
                if value < self.min:
                    self.min = value
                if value > self.max:
                    self.max = value
            self.last = value
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds.

    ``counts[i]`` is the number of observations ``<= bounds[i]``;
    ``counts[-1]`` (the ``+Inf`` bucket) equals ``count``.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(
                f"histogram bounds must be sorted: {self.bounds}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[i] += 1
            self.counts[-1] += 1


class SpanNode:
    """One node of the timing tree: a span name under a parent span."""

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: Dict[str, "SpanNode"] = {}

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "count": self.count,
            "seconds": self.seconds,
        }
        if self.children:
            payload["children"] = {
                name: child.to_dict()
                for name, child in sorted(self.children.items())
            }
        return payload


class _Span:
    """Context manager timing one entry into a span node.

    Nesting is tracked by the registry's span stack: entering finds (or
    creates) the named child of the innermost active span, so repeated
    ``span("a") / span("b")`` pairs build a stable tree rather than a
    trace of individual events.
    """

    __slots__ = ("_registry", "_name", "_node", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._node: Optional[SpanNode] = None
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._registry._thread_span_stack()
        parent = stack[-1]
        node = parent.children.get(self._name)
        if node is None:
            with self._registry._span_lock:
                node = parent.children.get(self._name)
                if node is None:
                    node = SpanNode(self._name)
                    parent.children[self._name] = node
        self._node = node
        stack.append(node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._start
        node = self._node
        with self._registry._span_lock:
            node.count += 1
            node.seconds += elapsed
        self._registry._thread_span_stack().pop()
        return False


class MetricsRegistry:
    """Process-local sink for counters, gauges, histograms, and spans."""

    #: Whether this registry records anything.  Callers with a setup
    #: cost (snapshotting, payload assembly) may branch on this; the
    #: hot-loop operations themselves never need to.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._span_root = SpanNode("")
        self._span_lock = threading.Lock()
        self._span_local = threading.local()
        # Creation lock for the instrument dicts: the fast path is a
        # bare dict probe (atomic under the GIL); only a miss pays for
        # the lock, so two racing first-users cannot each install their
        # own instrument and split the counts between them.
        self._create_lock = threading.Lock()

    def _thread_span_stack(self) -> List[SpanNode]:
        """This thread's span-nesting stack, rooted at the shared tree."""
        stack = getattr(self._span_local, "stack", None)
        if stack is None:
            stack = [self._span_root]
            self._span_local.stack = stack
        return stack

    # -- instrument lookup (created on first use) ----------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = Counter(name)
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = Gauge(name)
                    self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = Histogram(name, bounds)
                    self._histograms[name] = instrument
        return instrument

    # -- hot-loop conveniences -----------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def span(self, name: str) -> _Span:
        """Timing context manager; nests under the active span."""
        return _Span(self, name)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict of everything recorded so far."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                name: c.value
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: self._gauge_payload(g)
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: self._histogram_payload(h)
                for name, h in sorted(self._histograms.items())
            },
            "spans": {
                name: child.to_dict()
                for name, child in sorted(self._span_root.children.items())
            },
        }

    @staticmethod
    def _gauge_payload(gauge: Gauge) -> Dict[str, Any]:
        with gauge._lock:
            return {
                "last": gauge.last,
                "min": gauge.min,
                "max": gauge.max,
                "total": gauge.total,
                "count": gauge.count,
            }

    @staticmethod
    def _histogram_payload(hist: Histogram) -> Dict[str, Any]:
        with hist._lock:
            return {
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "total": hist.total,
                "count": hist.count,
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Counters and histogram buckets add; gauges combine their running
        statistics with ``last`` taken from the incoming snapshot; span
        subtrees add node-wise by name.  Merging is associative, so any
        grouping of workers produces the same totals — only gauge
        ``last`` depends on merge *order*, which the runner fixes by
        merging in task-index order.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, payload in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            count = int(payload.get("count", 0))
            if count <= 0:
                continue
            with gauge._lock:
                if gauge.count == 0:
                    gauge.min = float(payload["min"])
                    gauge.max = float(payload["max"])
                else:
                    gauge.min = min(gauge.min, float(payload["min"]))
                    gauge.max = max(gauge.max, float(payload["max"]))
                gauge.last = float(payload["last"])
                gauge.total += float(payload["total"])
                gauge.count += count
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, payload["bounds"])
            if list(hist.bounds) != [float(b) for b in payload["bounds"]]:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ between "
                    f"registries: {hist.bounds} vs {payload['bounds']}"
                )
            with hist._lock:
                for i, count in enumerate(payload["counts"]):
                    hist.counts[i] += count
                hist.total += float(payload["total"])
                hist.count += int(payload["count"])
        with self._span_lock:
            _merge_span_tree(self._span_root, snapshot.get("spans", {}))


def _merge_span_tree(node: SpanNode, children: Dict[str, Any]) -> None:
    for name, payload in children.items():
        child = node.children.get(name)
        if child is None:
            child = SpanNode(name)
            node.children[name] = child
        child.count += int(payload.get("count", 0))
        child.seconds += float(payload.get("seconds", 0.0))
        _merge_span_tree(child, payload.get("children", {}))


class _NullSpan:
    """Shared no-op span — one instance serves every disabled call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: every operation is an allocation-free no-op.

    Instrumented hot loops call through unconditionally; when this
    registry is active each call touches only pre-built singletons, so
    disabling observability removes essentially all of its cost.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_span = _NullSpan()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return self._null_span

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass


#: The process-wide active registry.  Disabled by default; `enable()` or
#: the CLI's ``--metrics`` flag swaps a recording registry in.
_NULL_REGISTRY = NullRegistry()
_ACTIVE: MetricsRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (a :class:`NullRegistry` when off)."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active sink; returns it."""
    global _ACTIVE
    _ACTIVE = registry
    return registry


def enable() -> MetricsRegistry:
    """Activate a fresh recording registry and return it."""
    return set_registry(MetricsRegistry())


def disable() -> None:
    """Restore the no-op registry."""
    set_registry(_NULL_REGISTRY)


class use_registry:
    """Context manager installing a registry for a scope (tests, workers)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = get_registry()
        set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> bool:
        set_registry(self._previous)
        return False


def iter_span_nodes(
    spans: Dict[str, Any], prefix: str = ""
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Depth-first ``(path, node)`` pairs over a snapshot's span tree.

    Paths join nested span names with ``/`` (``runner.map/task.probe``),
    the form the Prometheus renderer and tests key on.
    """
    for name in sorted(spans):
        node = spans[name]
        path = f"{prefix}/{name}" if prefix else name
        yield path, node
        yield from iter_span_nodes(node.get("children", {}), path)
