"""Persistence for learned policies.

A trained Q-table can be saved to JSON (sparse, id-keyed — independent
of catalog index order) and restored against the same or a different
catalog, enabling the deployment pattern the paper motivates: train
once per program/city, then answer interactive recommendations from the
stored policy.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Tuple, Union

from .catalog import Catalog
from .exceptions import PlanningError
from .qtable import QTable

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def policy_to_dict(qtable: QTable) -> Dict[str, object]:
    """JSON-safe dict of a Q-table (sparse entries, metadata)."""
    entries = qtable.to_entries()
    return {
        "format_version": FORMAT_VERSION,
        "catalog_name": qtable.catalog.name,
        "num_items": len(qtable.catalog),
        "update_count": qtable.update_count,
        "entries": [
            {"state": state, "action": action, "q": value}
            for (state, action), value in sorted(entries.items())
        ],
    }


def policy_from_dict(
    data: Dict[str, object], catalog: Catalog, strict: bool = False
) -> QTable:
    """Rebuild a Q-table from :func:`policy_to_dict` output.

    ``strict=True`` refuses entries referencing items missing from
    ``catalog``; the default skips them (the transfer-friendly
    behaviour).
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanningError(
            f"unsupported policy format version: {version!r}"
        )
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise PlanningError("malformed policy file: no entries list")
    entries: Dict[Tuple[str, str], float] = {}
    for row in raw_entries:
        try:
            entries[(str(row["state"]), str(row["action"]))] = float(
                row["q"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanningError(
                f"malformed policy entry: {row!r}"
            ) from exc
    table = QTable.from_entries(catalog, entries, strict=strict)
    if table.update_count == 0 and entries:
        # Mark as trained so the recommender accepts it even when all
        # surviving entries happened to be zero-valued.
        table._updates = int(data.get("update_count", len(entries)) or 1)  # noqa: SLF001
    return table


def save_policy(qtable: QTable, path: PathLike) -> None:
    """Write a learned policy to a JSON file."""
    payload = policy_to_dict(qtable)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_policy(
    path: PathLike, catalog: Catalog, strict: bool = False
) -> QTable:
    """Read a policy JSON file back into a Q-table over ``catalog``."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PlanningError(f"cannot read policy file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise PlanningError("malformed policy file: not a JSON object")
    return policy_from_dict(data, catalog, strict=strict)
