"""Persistence for learned policies (format v2, v1-compatible reader).

A trained Q-table can be saved to JSON (sparse, id-keyed — independent
of catalog index order) and restored against the same or a different
catalog, enabling the deployment pattern the paper motivates: train
once per program/city, then answer interactive recommendations from the
stored policy.

Format v2 extends v1 in two ways:

* entries are the Q-table's *touched* cells, so a learned value that
  decayed to exactly 0.0 survives the round trip (v1 dropped it);
* an optional ``training_state`` block — episode counter, NumPy
  bit-generator state, config fingerprint — turns a policy file into a
  mid-training checkpoint that :mod:`repro.runner.checkpoint` can
  resume bit-identically.

v1 files remain readable; the writer always emits v2.

Crash safety: the writer embeds a SHA-256 ``checksum`` over the
canonical payload and fsyncs before the atomic rename, so a policy file
that exists is complete, durable, and detectably-uncorrupted.  Files
without a checksum (v1, early v2) load without verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, Tuple, Union

from .catalog import Catalog
from .exceptions import ArtifactError, PlanningError
from .qtable import QTableBase, resolve_backend

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

CHECKSUM_KEY = "checksum"


def payload_checksum(payload: Dict[str, object]) -> str:
    """SHA-256 of a payload's canonical JSON, checksum field excluded.

    Canonical form (sorted keys, compact separators) survives the
    write → parse round trip exactly: JSON ints are unbounded and float
    reprs round-trip, so the checksum computed before writing matches
    the one recomputed from the parsed file iff the bytes are intact.
    """
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def policy_to_dict(
    qtable: QTableBase, training_state: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """JSON-safe dict of a Q-table (sparse entries, metadata).

    ``training_state`` (optional) is stored verbatim under the
    ``"training_state"`` key; it must be JSON-serializable.  It is what
    makes the payload a resumable checkpoint rather than a plain policy.
    """
    entries = qtable.to_entries()
    payload: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "catalog_name": qtable.catalog.name,
        "num_items": len(qtable.catalog),
        "update_count": qtable.update_count,
        "entries": [
            {"state": state, "action": action, "q": value}
            for (state, action), value in sorted(entries.items())
        ],
    }
    if training_state is not None:
        payload["training_state"] = training_state
    return payload


def policy_from_dict(
    data: Dict[str, object],
    catalog: Catalog,
    strict: bool = False,
    backend: str = "auto",
) -> QTableBase:
    """Rebuild a Q-table from :func:`policy_to_dict` output (v1 or v2).

    ``strict=True`` refuses entries referencing items missing from
    ``catalog``; the default skips them (the transfer-friendly
    behaviour).  The stored ``update_count`` is restored through the
    public metadata API so a table whose surviving entries are all
    zero-valued still counts as trained.

    ``backend`` selects the storage backend of the rebuilt table
    (``"auto"``/``"dense"``/``"sparse"``); the on-disk format is
    backend-agnostic — any file loads into any backend with
    bit-identical Q-values.
    """
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise PlanningError(
            f"unsupported policy format version: {version!r}"
        )
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise PlanningError("malformed policy file: no entries list")
    entries: Dict[Tuple[str, str], float] = {}
    for row in raw_entries:
        try:
            entries[(str(row["state"]), str(row["action"]))] = float(
                row["q"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanningError(
                f"malformed policy entry: {row!r}"
            ) from exc
    stored_count = data.get("update_count")
    update_count: Optional[int] = None
    if stored_count is not None:
        try:
            update_count = int(stored_count)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise PlanningError(
                f"malformed update_count: {stored_count!r}"
            ) from exc
    elif entries:
        # v1 files written before the counter existed: any entry means
        # the table was trained.
        update_count = len(entries)
    return resolve_backend(catalog, backend).from_entries(
        catalog, entries, strict=strict, update_count=update_count
    )


def training_state_from_dict(
    data: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """The checkpoint ``training_state`` block, or None for plain policies."""
    state = data.get("training_state")
    if state is None:
        return None
    if not isinstance(state, dict):
        raise PlanningError("malformed policy file: training_state")
    return state


def save_policy(
    qtable: QTableBase,
    path: PathLike,
    training_state: Optional[Dict[str, object]] = None,
) -> None:
    """Write a learned policy (or checkpoint) to a JSON file.

    The payload carries a SHA-256 checksum (verified on read), and the
    file is written atomically (tmp file + flush + fsync + rename) so a
    crash mid-write can never leave a truncated checkpoint behind and a
    crash right after the rename cannot lose the buffered bytes.
    """
    payload = policy_to_dict(qtable, training_state=training_state)
    payload[CHECKSUM_KEY] = payload_checksum(payload)
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w") as handle:
        json.dump(payload, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(target)


def load_policy(
    path: PathLike,
    catalog: Catalog,
    strict: bool = False,
    backend: str = "auto",
) -> QTableBase:
    """Read a policy JSON file back into a Q-table over ``catalog``."""
    return policy_from_dict(
        read_policy_file(path), catalog, strict=strict, backend=backend
    )


def read_policy_file(path: PathLike) -> Dict[str, object]:
    """Parse a policy/checkpoint file into its raw payload dict.

    When the payload embeds a checksum it is verified against the
    parsed content; a mismatch (bit rot, a torn non-atomic copy, a
    hand-edited file) raises :class:`ArtifactError` rather than letting
    silently-corrupt Q-values into a planner.
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        # ValueError covers both JSONDecodeError and the
        # UnicodeDecodeError bit-rotted bytes produce.
        raise ArtifactError(f"cannot read policy file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ArtifactError("malformed policy file: not a JSON object")
    stored = data.get(CHECKSUM_KEY)
    if stored is not None:
        computed = payload_checksum(data)
        if computed != stored:
            raise ArtifactError(
                f"checksum mismatch in {path}: stored {stored!r}, "
                f"computed {computed!r} — the file is corrupt"
            )
    return data
