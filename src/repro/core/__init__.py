"""Core TPP formalization and the RL-Planner solver.

This package implements the paper's primary contribution: the item /
constraint data model (Section II), the CMDP formulation with the
weighted reward of Equation 2 (Section III-A/B), the SARSA learner and
greedy recommender of Algorithm 1 (Section III-C), plan validation and
scoring (Section IV-A), and cross-catalog policy transfer (Section IV-D).
"""

from .builder import TaskBuilder
from .catalog import Catalog
from .config import (
    PlannerConfig,
    RecommendationMode,
    RewardWeights,
    UNIV2_CATEGORY_WEIGHTS,
)
from .constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from .env import DomainMode, TPPEnvironment
from .exceptions import (
    ArtifactError,
    ConstraintError,
    DataModelError,
    DatasetError,
    InfeasibleError,
    NonRetriableError,
    PlanningError,
    ReproError,
    RetriableError,
    TransferError,
    UnknownItemError,
    UntrainedPolicyError,
)
from .items import Item, ItemType, Prerequisites, make_metadata
from .plan import Plan, PlanBuilder, plan_from_ids
from .planner import RLPlanner
from .policy import GreedyPolicy
from .qtable import (
    QTable,
    QTableBackend,
    QTableBase,
    SPARSE_BACKEND_THRESHOLD,
    SparseQTable,
    make_qtable,
    resolve_backend,
)
from .reward import RewardBreakdown, RewardFunction
from .sarsa import ActionSelection, EpisodeStats, LearningResult, SarsaLearner
from .schedule import Period, Schedule, fold_plan, fold_trip_day
from .serialization import load_policy, policy_from_dict, policy_to_dict, save_policy
from .scoring import (
    PlanScore,
    PlanScorer,
    average_score,
    mean_popularity,
    validity_rate,
)
from .similarity import (
    SimilarityMode,
    aggregate_similarity,
    avg_similarity,
    longest_run,
    match_vector,
    max_similarity,
    min_similarity,
    similarity_profile,
    template_similarity,
    type_sequence,
)
from .transfer import (
    TransferReport,
    TransferResult,
    build_theme_mapping,
    transfer_by_id,
    transfer_by_theme,
    transfer_policy,
)
from .validation import (
    PlanValidator,
    ValidationReport,
    Violation,
    haversine_km,
    plan_travel_distance_km,
)

__all__ = [
    "ActionSelection",
    "ArtifactError",
    "Catalog",
    "ConstraintError",
    "DataModelError",
    "DatasetError",
    "DomainMode",
    "EpisodeStats",
    "GreedyPolicy",
    "HardConstraints",
    "InterleavingTemplate",
    "InfeasibleError",
    "Item",
    "ItemType",
    "LearningResult",
    "NonRetriableError",
    "Period",
    "Plan",
    "PlanBuilder",
    "PlanScore",
    "PlanScorer",
    "PlanValidator",
    "PlannerConfig",
    "PlanningError",
    "Prerequisites",
    "QTable",
    "QTableBackend",
    "QTableBase",
    "SPARSE_BACKEND_THRESHOLD",
    "SparseQTable",
    "RecommendationMode",
    "ReproError",
    "RetriableError",
    "RewardBreakdown",
    "RewardFunction",
    "RewardWeights",
    "RLPlanner",
    "SarsaLearner",
    "Schedule",
    "SimilarityMode",
    "SoftConstraints",
    "TaskBuilder",
    "TPPEnvironment",
    "TaskSpec",
    "TransferError",
    "TransferReport",
    "TransferResult",
    "UNIV2_CATEGORY_WEIGHTS",
    "UnknownItemError",
    "UntrainedPolicyError",
    "ValidationReport",
    "Violation",
    "aggregate_similarity",
    "average_score",
    "avg_similarity",
    "fold_plan",
    "fold_trip_day",
    "build_theme_mapping",
    "haversine_km",
    "load_policy",
    "longest_run",
    "make_metadata",
    "make_qtable",
    "match_vector",
    "max_similarity",
    "mean_popularity",
    "min_similarity",
    "plan_from_ids",
    "policy_from_dict",
    "policy_to_dict",
    "plan_travel_distance_km",
    "resolve_backend",
    "save_policy",
    "similarity_profile",
    "template_similarity",
    "transfer_by_id",
    "transfer_by_theme",
    "transfer_policy",
    "type_sequence",
    "validity_rate",
]
