"""Item catalog: the interaction graph ``G = <I, E>`` of Section III-A.

The paper abstracts the item universe as a *complete* graph whose nodes
are items; an RL action is a transition along an edge (adding one more
item).  Because the graph is complete, we do not materialize edges — the
catalog is an indexed collection of items with the derived structures the
planner and validators need:

* a topic vocabulary (the ordered set ``T``),
* primary/secondary partitions,
* the prerequisite relation (with referential-integrity checking),
* stable integer indices for Q-table rows/columns.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .exceptions import (
    DanglingPrerequisiteError,
    DataModelError,
    UnknownItemError,
)
from .items import Item, ItemType, Prerequisites

#: Subset-finding codes (:class:`SubsetFinding.code`).
SUBSET_PRUNED_PREREQ = "pruned_prereq"
SUBSET_ORPHANED_ITEM = "orphaned_item"


@dataclasses.dataclass(frozen=True)
class SubsetFinding:
    """One typed integrity finding from :meth:`Catalog.subset_with_findings`.

    Attributes
    ----------
    code:
        ``"pruned_prereq"`` — a kept item's prerequisite group referenced
        excluded items and the dead references were dropped; or
        ``"orphaned_item"`` — an entire OR-group of a kept item died
        (every alternative excluded), so the item itself was dropped.
    message:
        Human-readable description.
    item_ids:
        The affected item ids (the kept-but-pruned item, or the dropped
        orphan), sorted.
    """

    code: str
    message: str
    item_ids: Tuple[str, ...] = ()


def _prune_excluded_prerequisites(
    items: Sequence[Item],
    known_ids: FrozenSet[str],
) -> Tuple[Tuple[Item, ...], Tuple[SubsetFinding, ...]]:
    """Drop prerequisite references to *known-but-excluded* items.

    References to ids that were never in ``known_ids`` (out-of-program
    prerequisites tolerated by the legacy ``subset`` contract) are kept
    untouched.  If pruning empties an OR-group, that item becomes
    unsatisfiable in the subset and is dropped entirely ("orphaned");
    orphan drops cascade until a fixpoint.
    """
    pool: Dict[str, Item] = {item.item_id: item for item in items}
    findings: List[SubsetFinding] = []
    changed = True
    while changed:
        changed = False
        for item in list(pool.values()):
            groups = item.prerequisites.groups
            if not groups:
                continue
            new_groups: List[FrozenSet[str]] = []
            slimmed = False
            dead = False
            for group in groups:
                kept = frozenset(
                    ref
                    for ref in group
                    if ref in pool or ref not in known_ids
                )
                if kept != group:
                    slimmed = True
                if not kept:
                    dead = True
                    break
                new_groups.append(kept)
            if dead:
                findings.append(
                    SubsetFinding(
                        SUBSET_ORPHANED_ITEM,
                        f"item {item.item_id!r} lost every alternative in a "
                        f"prerequisite group; dropped from the subset",
                        (item.item_id,),
                    )
                )
                del pool[item.item_id]
                changed = True
            elif slimmed:
                findings.append(
                    SubsetFinding(
                        SUBSET_PRUNED_PREREQ,
                        f"item {item.item_id!r}: pruned prerequisite "
                        f"references to excluded items",
                        (item.item_id,),
                    )
                )
                pool[item.item_id] = dataclasses.replace(
                    item, prerequisites=Prerequisites(tuple(new_groups))
                )
    return tuple(pool.values()), tuple(findings)


class CatalogColumns:
    """Precomputed NumPy columns over a catalog (the batch-reward SoA).

    Built once, lazily, on first access of :attr:`Catalog.columns` and
    shared by every consumer of the vectorized reward path.  All arrays
    are indexed by the catalog's stable item index (:meth:`Catalog.index_of`).

    Attributes
    ----------
    primary_mask / type_codes:
        Boolean primary flag and its ``int8`` form (1 primary, 0 secondary).
    credits:
        ``cr_m`` per item (float64).
    category_codes / categories:
        Integer code of each item's category into ``categories`` (the
        catalog's sorted distinct categories); ``-1`` for uncategorized.
    topic_matrix / topic_index:
        ``|I| x |T|`` boolean incidence matrix over the topic vocabulary
        and the topic -> column lookup.
    has_prereqs:
        True where the item has at least one antecedent group.
    lat / lon / has_coords:
        Geo coordinates from item metadata (NaN when absent) and the
        joint availability mask.
    """

    def __init__(self, catalog: "Catalog") -> None:
        items = catalog.items
        n = len(items)
        self.primary_mask = np.fromiter(
            (item.is_primary for item in items), dtype=bool, count=n
        )
        self.type_codes = self.primary_mask.astype(np.int8)
        self.credits = np.fromiter(
            (item.credits for item in items), dtype=np.float64, count=n
        )

        self.categories: Tuple[str, ...] = catalog.categories()
        category_index = {c: i for i, c in enumerate(self.categories)}
        self.category_codes = np.fromiter(
            (
                category_index.get(item.category, -1)
                for item in items
            ),
            dtype=np.int64,
            count=n,
        )

        vocabulary = catalog.topic_vocabulary
        self.topic_index: Dict[str, int] = {
            topic: j for j, topic in enumerate(vocabulary)
        }
        matrix = np.zeros((n, len(vocabulary)), dtype=bool)
        for row, item in enumerate(items):
            for topic in item.topics:
                matrix[row, self.topic_index[topic]] = True
        self.topic_matrix = matrix

        self.has_prereqs = np.fromiter(
            (not item.prerequisites.is_empty for item in items),
            dtype=bool,
            count=n,
        )

        lat = np.full(n, np.nan, dtype=np.float64)
        lon = np.full(n, np.nan, dtype=np.float64)
        for row, item in enumerate(items):
            item_lat, item_lon = item.meta("lat"), item.meta("lon")
            if item_lat is not None and item_lon is not None:
                lat[row] = float(item_lat)  # type: ignore[arg-type]
                lon[row] = float(item_lon)  # type: ignore[arg-type]
        self.lat = lat
        self.lon = lon
        self.has_coords = ~(np.isnan(lat) | np.isnan(lon))


class Catalog:
    """An immutable, indexed collection of :class:`Item` objects.

    Parameters
    ----------
    items:
        The items in the catalog.  Ids must be unique and prerequisite
        references must resolve within the catalog (checked unless
        ``validate_prerequisites=False``).
    name:
        Display name, e.g. ``"Univ-1 M.S. DS-CT"``.
    topic_vocabulary:
        Optional explicit topic ordering.  When omitted the vocabulary is
        the sorted union of item topics.
    """

    def __init__(
        self,
        items: Iterable[Item],
        name: str = "catalog",
        topic_vocabulary: Optional[Sequence[str]] = None,
        validate_prerequisites: bool = True,
    ) -> None:
        self._items: Tuple[Item, ...] = tuple(items)
        self.name = name
        if not self._items:
            raise DataModelError("catalog must contain at least one item")

        self._by_id: Dict[str, Item] = {}
        for item in self._items:
            if item.item_id in self._by_id:
                raise DataModelError(f"duplicate item id: {item.item_id!r}")
            self._by_id[item.item_id] = item

        if validate_prerequisites:
            self._check_prerequisite_integrity()

        if topic_vocabulary is None:
            vocab: set = set()
            for item in self._items:
                vocab |= item.topics
            self._vocabulary: Tuple[str, ...] = tuple(sorted(vocab))
        else:
            self._vocabulary = tuple(topic_vocabulary)
            known = set(self._vocabulary)
            for item in self._items:
                extra = item.topics - known
                if extra:
                    raise DataModelError(
                        f"item {item.item_id!r} has topics outside the "
                        f"vocabulary: {sorted(extra)}"
                    )

        self._index: Dict[str, int] = {
            item.item_id: i for i, item in enumerate(self._items)
        }
        self._columns: Optional[CatalogColumns] = None

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._by_id

    def __getitem__(self, item_id: str) -> Item:
        try:
            return self._by_id[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def get(self, item_id: str, default: Optional[Item] = None) -> Optional[Item]:
        """Item by id, or ``default`` when absent."""
        return self._by_id.get(item_id, default)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def items(self) -> Tuple[Item, ...]:
        """All items in insertion order."""
        return self._items

    @property
    def item_ids(self) -> Tuple[str, ...]:
        """All item ids in insertion order."""
        return tuple(item.item_id for item in self._items)

    @property
    def topic_vocabulary(self) -> Tuple[str, ...]:
        """The ordered topic/theme set ``T``."""
        return self._vocabulary

    @property
    def num_topics(self) -> int:
        """``|T|``."""
        return len(self._vocabulary)

    @property
    def columns(self) -> CatalogColumns:
        """Precomputed NumPy columns (built lazily, then cached)."""
        if self._columns is None:
            self._columns = CatalogColumns(self)
        return self._columns

    @property
    def index_map(self) -> Dict[str, int]:
        """The item id -> index mapping (treat as read-only)."""
        return self._index

    def index_of(self, item_id: str) -> int:
        """Stable integer index of an item (Q-table row/column)."""
        try:
            return self._index[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def item_at(self, index: int) -> Item:
        """Inverse of :meth:`index_of`."""
        return self._items[index]

    def primaries(self) -> Tuple[Item, ...]:
        """All primary (core / must-visit) items."""
        return tuple(i for i in self._items if i.is_primary)

    def secondaries(self) -> Tuple[Item, ...]:
        """All secondary (elective / optional) items."""
        return tuple(i for i in self._items if i.is_secondary)

    def of_type(self, item_type: ItemType) -> Tuple[Item, ...]:
        """Items of the given type."""
        return tuple(i for i in self._items if i.item_type is item_type)

    def categories(self) -> Tuple[str, ...]:
        """Sorted distinct non-None categories present in the catalog."""
        return tuple(
            sorted({i.category for i in self._items if i.category is not None})
        )

    def in_category(self, category: str) -> Tuple[Item, ...]:
        """Items whose :attr:`Item.category` equals ``category``."""
        return tuple(i for i in self._items if i.category == category)

    def with_topic(self, topic: str) -> Tuple[Item, ...]:
        """Items covering a given topic/theme."""
        return tuple(i for i in self._items if topic in i.topics)

    def antecedent_ids(self) -> FrozenSet[str]:
        """Ids of items referenced as a prerequisite by some other item.

        This is the set ``P`` of the paper's notation table.
        """
        out: set = set()
        for item in self._items:
            out |= item.prerequisites.referenced_ids()
        return frozenset(out)

    def dependents_of(self, item_id: str) -> Tuple[Item, ...]:
        """Items that list ``item_id`` among their antecedents."""
        if item_id not in self._by_id:
            raise UnknownItemError(item_id)
        return tuple(
            item
            for item in self._items
            if item_id in item.prerequisites.referenced_ids()
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def subset(
        self,
        item_ids: Iterable[str],
        name: Optional[str] = None,
        on_dangling: str = "keep",
    ) -> "Catalog":
        """Sub-catalog restricted to ``item_ids`` (base-catalog order).

        The subset keeps *this catalog's* item order, regardless of the
        order ``item_ids`` is supplied in: the same id set always yields
        the same catalog, with the same stable item indexing — the
        property shard-and-merge planners (DPPM-style) rely on when they
        key Q-tables by subset indices.

        ``on_dangling`` controls prerequisite edges that point at items
        of *this* catalog excluded from the subset (e.g. removed by an
        availability-churn delta):

        * ``"keep"`` (default, legacy) — leave the edges in place; they
          simply can never be satisfied inside the subset.
        * ``"prune"`` — drop the dead references; items whose OR-group
          loses every alternative are dropped (cascading).
        * ``"reject"`` — raise :class:`DanglingPrerequisiteError`.

        References to ids this catalog never contained (out-of-program
        prerequisites, matching real degree programs) are tolerated under
        every mode.  Use :meth:`subset_with_findings` to also receive the
        typed findings describing what was pruned or orphaned.
        """
        catalog, _ = self.subset_with_findings(
            item_ids, name=name, on_dangling=on_dangling
        )
        return catalog

    def subset_with_findings(
        self,
        item_ids: Iterable[str],
        name: Optional[str] = None,
        on_dangling: str = "keep",
    ) -> Tuple["Catalog", Tuple[SubsetFinding, ...]]:
        """Like :meth:`subset` but also returns the integrity findings.

        Item order follows the base catalog, not ``item_ids`` (see
        :meth:`subset` for why that contract matters).

        With ``on_dangling="keep"`` the findings tuple is always empty;
        with ``"prune"`` it lists every pruned edge / orphaned item; with
        ``"reject"`` a non-empty finding set raises instead.
        """
        if on_dangling not in ("keep", "prune", "reject"):
            raise ValueError(
                f"on_dangling must be 'keep', 'prune', or 'reject', "
                f"got {on_dangling!r}"
            )
        wanted = set(item_ids)
        missing = wanted - set(self._by_id)
        if missing:
            raise UnknownItemError(sorted(missing)[0])
        items: Sequence[Item] = [
            i for i in self._items if i.item_id in wanted
        ]
        findings: Tuple[SubsetFinding, ...] = ()
        if on_dangling != "keep":
            items, findings = _prune_excluded_prerequisites(
                items, frozenset(self._by_id)
            )
            if findings and on_dangling == "reject":
                raise DanglingPrerequisiteError(
                    f"subset of {self.name!r} would leave "
                    f"{len(findings)} dangling-prerequisite finding(s): "
                    + "; ".join(f.message for f in findings),
                    findings,
                )
        catalog = Catalog(
            items,
            name=name or f"{self.name} (subset)",
            validate_prerequisites=False,
        )
        return catalog, findings

    def shared_item_ids(self, other: "Catalog") -> Tuple[str, ...]:
        """Ids present in both catalogs (used by transfer learning)."""
        return tuple(i for i in self.item_ids if i in other)

    def _check_prerequisite_integrity(self) -> None:
        for item in self._items:
            for ref in item.prerequisites.referenced_ids():
                if ref not in self._by_id:
                    raise DataModelError(
                        f"item {item.item_id!r} requires unknown "
                        f"prerequisite {ref!r}"
                    )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Summary statistics used in logs, docs, and tests."""
        return {
            "name": self.name,
            "num_items": len(self),
            "num_primary": len(self.primaries()),
            "num_secondary": len(self.secondaries()),
            "num_topics": self.num_topics,
            "num_with_prerequisites": sum(
                1 for i in self._items if not i.prerequisites.is_empty
            ),
            "total_credits": sum(i.credits for i in self._items),
        }

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Catalog({self.name!r}, items={len(self)}, "
            f"topics={self.num_topics})"
        )
