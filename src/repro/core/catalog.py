"""Item catalog: the interaction graph ``G = <I, E>`` of Section III-A.

The paper abstracts the item universe as a *complete* graph whose nodes
are items; an RL action is a transition along an edge (adding one more
item).  Because the graph is complete, we do not materialize edges — the
catalog is an indexed collection of items with the derived structures the
planner and validators need:

* a topic vocabulary (the ordered set ``T``),
* primary/secondary partitions,
* the prerequisite relation (with referential-integrity checking),
* stable integer indices for Q-table rows/columns.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from .exceptions import DataModelError, UnknownItemError
from .items import Item, ItemType


class Catalog:
    """An immutable, indexed collection of :class:`Item` objects.

    Parameters
    ----------
    items:
        The items in the catalog.  Ids must be unique and prerequisite
        references must resolve within the catalog (checked unless
        ``validate_prerequisites=False``).
    name:
        Display name, e.g. ``"Univ-1 M.S. DS-CT"``.
    topic_vocabulary:
        Optional explicit topic ordering.  When omitted the vocabulary is
        the sorted union of item topics.
    """

    def __init__(
        self,
        items: Iterable[Item],
        name: str = "catalog",
        topic_vocabulary: Optional[Sequence[str]] = None,
        validate_prerequisites: bool = True,
    ) -> None:
        self._items: Tuple[Item, ...] = tuple(items)
        self.name = name
        if not self._items:
            raise DataModelError("catalog must contain at least one item")

        self._by_id: Dict[str, Item] = {}
        for item in self._items:
            if item.item_id in self._by_id:
                raise DataModelError(f"duplicate item id: {item.item_id!r}")
            self._by_id[item.item_id] = item

        if validate_prerequisites:
            self._check_prerequisite_integrity()

        if topic_vocabulary is None:
            vocab: set = set()
            for item in self._items:
                vocab |= item.topics
            self._vocabulary: Tuple[str, ...] = tuple(sorted(vocab))
        else:
            self._vocabulary = tuple(topic_vocabulary)
            known = set(self._vocabulary)
            for item in self._items:
                extra = item.topics - known
                if extra:
                    raise DataModelError(
                        f"item {item.item_id!r} has topics outside the "
                        f"vocabulary: {sorted(extra)}"
                    )

        self._index: Dict[str, int] = {
            item.item_id: i for i, item in enumerate(self._items)
        }

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._by_id

    def __getitem__(self, item_id: str) -> Item:
        try:
            return self._by_id[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def get(self, item_id: str, default: Optional[Item] = None) -> Optional[Item]:
        """Item by id, or ``default`` when absent."""
        return self._by_id.get(item_id, default)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def items(self) -> Tuple[Item, ...]:
        """All items in insertion order."""
        return self._items

    @property
    def item_ids(self) -> Tuple[str, ...]:
        """All item ids in insertion order."""
        return tuple(item.item_id for item in self._items)

    @property
    def topic_vocabulary(self) -> Tuple[str, ...]:
        """The ordered topic/theme set ``T``."""
        return self._vocabulary

    @property
    def num_topics(self) -> int:
        """``|T|``."""
        return len(self._vocabulary)

    def index_of(self, item_id: str) -> int:
        """Stable integer index of an item (Q-table row/column)."""
        try:
            return self._index[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def item_at(self, index: int) -> Item:
        """Inverse of :meth:`index_of`."""
        return self._items[index]

    def primaries(self) -> Tuple[Item, ...]:
        """All primary (core / must-visit) items."""
        return tuple(i for i in self._items if i.is_primary)

    def secondaries(self) -> Tuple[Item, ...]:
        """All secondary (elective / optional) items."""
        return tuple(i for i in self._items if i.is_secondary)

    def of_type(self, item_type: ItemType) -> Tuple[Item, ...]:
        """Items of the given type."""
        return tuple(i for i in self._items if i.item_type is item_type)

    def categories(self) -> Tuple[str, ...]:
        """Sorted distinct non-None categories present in the catalog."""
        return tuple(
            sorted({i.category for i in self._items if i.category is not None})
        )

    def in_category(self, category: str) -> Tuple[Item, ...]:
        """Items whose :attr:`Item.category` equals ``category``."""
        return tuple(i for i in self._items if i.category == category)

    def with_topic(self, topic: str) -> Tuple[Item, ...]:
        """Items covering a given topic/theme."""
        return tuple(i for i in self._items if topic in i.topics)

    def antecedent_ids(self) -> FrozenSet[str]:
        """Ids of items referenced as a prerequisite by some other item.

        This is the set ``P`` of the paper's notation table.
        """
        out: set = set()
        for item in self._items:
            out |= item.prerequisites.referenced_ids()
        return frozenset(out)

    def dependents_of(self, item_id: str) -> Tuple[Item, ...]:
        """Items that list ``item_id`` among their antecedents."""
        if item_id not in self._by_id:
            raise UnknownItemError(item_id)
        return tuple(
            item
            for item in self._items
            if item_id in item.prerequisites.referenced_ids()
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def subset(self, item_ids: Iterable[str], name: Optional[str] = None) -> "Catalog":
        """Sub-catalog restricted to ``item_ids`` (insertion order kept).

        Prerequisite references that point outside the subset are allowed
        (they simply can never be satisfied), matching real degree programs
        whose courses may require out-of-program prerequisites.
        """
        wanted = set(item_ids)
        missing = wanted - set(self._by_id)
        if missing:
            raise UnknownItemError(sorted(missing)[0])
        items = [i for i in self._items if i.item_id in wanted]
        return Catalog(
            items,
            name=name or f"{self.name} (subset)",
            validate_prerequisites=False,
        )

    def shared_item_ids(self, other: "Catalog") -> Tuple[str, ...]:
        """Ids present in both catalogs (used by transfer learning)."""
        return tuple(i for i in self.item_ids if i in other)

    def _check_prerequisite_integrity(self) -> None:
        for item in self._items:
            for ref in item.prerequisites.referenced_ids():
                if ref not in self._by_id:
                    raise DataModelError(
                        f"item {item.item_id!r} requires unknown "
                        f"prerequisite {ref!r}"
                    )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Summary statistics used in logs, docs, and tests."""
        return {
            "name": self.name,
            "num_items": len(self),
            "num_primary": len(self.primaries()),
            "num_secondary": len(self.secondaries()),
            "num_topics": self.num_topics,
            "num_with_prerequisites": sum(
                1 for i in self._items if not i.prerequisites.is_empty
            ),
            "total_credits": sum(i.credits for i in self._items),
        }

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Catalog({self.name!r}, items={len(self)}, "
            f"topics={self.num_topics})"
        )
