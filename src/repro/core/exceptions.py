"""Typed exceptions raised by the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subclass corresponds to a distinct failure domain
(data model, constraints, planning, datasets, on-disk artifacts), which
keeps error handling at call sites explicit without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DataModelError(ReproError):
    """An item, catalog, or constraint object was constructed inconsistently.

    Examples: a topic vector of the wrong length, a duplicate item id, a
    prerequisite referencing an unknown item.
    """


class ConstraintError(ReproError):
    """A constraint specification is invalid (not merely unsatisfied).

    Raised when hard/soft constraint *definitions* are malformed — e.g. a
    negative credit requirement or an interleaving template whose length
    disagrees with the primary/secondary split.
    """


class PlanningError(ReproError):
    """The planner could not produce a plan at all.

    Distinct from producing a plan that fails validation: validation
    failures are reported through :class:`repro.core.validation.ValidationReport`,
    while :class:`PlanningError` means the search itself broke down (e.g. an
    empty catalog, an unknown start item, or an untrained policy).
    """


class UntrainedPolicyError(PlanningError):
    """A recommendation was requested before the policy was learned."""


class ArtifactError(PlanningError):
    """An on-disk artifact (policy, checkpoint, manifest) is unusable.

    Raised when a run-directory file cannot be read, does not parse, or
    fails its integrity checksum — i.e. the bytes on disk are wrong, as
    opposed to a well-formed file describing an invalid configuration.
    Subclasses :class:`PlanningError` because a corrupt artifact stops a
    resume the same way a missing policy stops a recommendation.
    """


class UnknownItemError(DataModelError):
    """An item id was referenced that does not exist in the catalog."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"unknown item id: {item_id!r}")
        self.item_id = item_id


class DatasetError(ReproError):
    """A dataset loader or generator was asked for something impossible."""


class TransferError(ReproError):
    """Transfer learning between two catalogs could not be set up."""
