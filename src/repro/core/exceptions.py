"""Typed exceptions raised by the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subclass corresponds to a distinct failure domain
(data model, constraints, planning, datasets, on-disk artifacts), which
keeps error handling at call sites explicit without string matching.

Orthogonally to the failure domain, every concrete error is classified
as *retriable* or *non-retriable* through the :class:`RetriableError` /
:class:`NonRetriableError` mixins, the split the serving layer's
degradation ladder keys on:

* **Retriable** — the operation may succeed on a later attempt without
  changing the request: a missing/corrupt artifact can be rebuilt, an
  untrained policy can be trained or loaded.  Retrying (or falling to a
  lower rung and trying again later) is reasonable.
* **Non-retriable** — the input itself is wrong (malformed data model,
  invalid constraint specification, provably unsatisfiable task).
  Retrying with the same request can never succeed; the request must be
  rejected and the caller told why.

``except RetriableError`` / ``except NonRetriableError`` both work as
catch clauses (the mixins subclass :class:`Exception` so they are legal
in ``except``), and a single error class may carry exactly one of the
two mixins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class RetriableError(Exception):
    """Mixin: a later attempt (after repair/training/reload) may succeed.

    Marker class only — concrete errors derive from both a failure-domain
    class and exactly one of the retriable/non-retriable mixins.
    """


class NonRetriableError(Exception):
    """Mixin: the request itself is invalid; retrying can never succeed."""


class DataModelError(NonRetriableError, ReproError):
    """An item, catalog, or constraint object was constructed inconsistently.

    Examples: a topic vector of the wrong length, a duplicate item id, a
    prerequisite referencing an unknown item.
    """


class ConstraintError(NonRetriableError, ReproError):
    """A constraint specification is invalid (not merely unsatisfied).

    Raised when hard/soft constraint *definitions* are malformed — e.g. a
    negative credit requirement or an interleaving template whose length
    disagrees with the primary/secondary split.
    """


class PlanningError(ReproError):
    """The planner could not produce a plan at all.

    Distinct from producing a plan that fails validation: validation
    failures are reported through :class:`repro.core.validation.ValidationReport`,
    while :class:`PlanningError` means the search itself broke down (e.g. an
    empty catalog, an unknown start item, or an untrained policy).

    The base class carries neither retriability mixin — whether a
    planning breakdown is worth retrying depends on the concrete
    subclass (an untrained policy is, an infeasible task is not).
    """


class UntrainedPolicyError(RetriableError, PlanningError):
    """A recommendation was requested before the policy was learned.

    Retriable: training (or loading a saved policy) and asking again
    succeeds — the serving ladder treats this as "policy rung not ready
    yet", not as a broken request.
    """


class ArtifactError(RetriableError, PlanningError):
    """An on-disk artifact (policy, checkpoint, manifest) is unusable.

    Raised when a run-directory file cannot be read, does not parse, or
    fails its integrity checksum — i.e. the bytes on disk are wrong, as
    opposed to a well-formed file describing an invalid configuration.
    Subclasses :class:`PlanningError` because a corrupt artifact stops a
    resume the same way a missing policy stops a recommendation.
    Retriable: the artifact can be regenerated (or a previous rotation
    restored) and the operation repeated.
    """


class InfeasibleError(NonRetriableError, PlanningError):
    """The task's hard constraints are provably unsatisfiable.

    Distinct from a planner breakdown: no amount of retraining or
    retrying can produce a valid plan when the catalog cannot cover the
    constraints (total attainable credits below ``#cr``, primary pool
    smaller than ``#primary``, required items locked behind prerequisite
    cycles).  The admission layer raises this so callers can reject the
    request instead of burning the deadline on a doomed search.
    """


class UnknownItemError(DataModelError):
    """An item id was referenced that does not exist in the catalog."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"unknown item id: {item_id!r}")
        self.item_id = item_id


class DanglingPrerequisiteError(DataModelError):
    """A catalog subset would leave prerequisite edges pointing at
    removed items and the caller asked for rejection instead of pruning.

    Raised by :meth:`repro.core.catalog.Catalog.subset` with
    ``on_dangling="reject"``; carries the typed findings so the caller
    can report exactly which edges and items were affected.
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class DeltaError(NonRetriableError, ReproError):
    """A catalog/constraint delta event is malformed or inapplicable.

    Examples: closing an item the base catalog never contained, a
    credit change without a credit value, an unknown delta kind on the
    wire.  Non-retriable: the event itself is wrong.
    """


class DatasetError(NonRetriableError, ReproError):
    """A dataset loader or generator was asked for something impossible."""


class TransferError(NonRetriableError, ReproError):
    """Transfer learning between two catalogs could not be set up."""
