"""Hard-constraint validation of finished plans.

Theorem 1 of the paper argues the reward design satisfies ``P_hard``; the
validator here is the independent referee used by the experiments to
decide whether a plan "counts" (invalid plans score 0 in Figures 1 and
Tables IX–XVI) and by the test suite to check the theorem empirically.

Checked constraints:

1. minimum total credits (courses) / time budget not exceeded (trips),
2. primary count — with the paper's Case-I relaxation: *surplus* primary
   items may stand in for secondary ones ("a core course could be
   construed as an elective"), so the real requirements are
   ``num_primary >= #primary`` and total length == plan length,
3. secondary count (via total length, per the same argument),
4. prerequisite gap for every item with antecedents (AND/OR aware),
5. optional per-category credit minima (Univ-2's six sub-disciplines),
6. optional trip extras: total travel distance threshold and the
   no-two-consecutive-POIs-of-the-same-theme rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .constraints import HardConstraints
from .items import Item
from .plan import Plan


@dataclass(frozen=True)
class Violation:
    """One failed hard constraint, with a human-readable explanation."""

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a plan against hard constraints."""

    plan_length: int
    violations: Tuple[Violation, ...] = ()

    @property
    def is_valid(self) -> bool:
        """True when every hard constraint is satisfied."""
        return not self.violations

    def codes(self) -> Tuple[str, ...]:
        """Violation codes, for compact assertions in tests."""
        return tuple(v.code for v in self.violations)

    def describe(self) -> str:
        """Multi-line summary for logs."""
        if self.is_valid:
            return "valid"
        return "; ".join(str(v) for v in self.violations)


def _item_distance_km(a: Item, b: Item) -> Optional[float]:
    """Great-circle distance between two POIs, or None without geo data."""
    lat_a, lon_a = a.meta("lat"), a.meta("lon")
    lat_b, lon_b = b.meta("lat"), b.meta("lon")
    if None in (lat_a, lon_a, lat_b, lon_b):
        return None
    return haversine_km(float(lat_a), float(lon_a), float(lat_b), float(lon_b))


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two WGS84 points."""
    radius_km = 6371.0088
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * radius_km * math.asin(min(1.0, math.sqrt(a)))


def plan_travel_distance_km(plan: Plan) -> Optional[float]:
    """Total leg-by-leg travel distance of an itinerary.

    Returns None when any POI lacks coordinates (course plans).
    """
    if len(plan) < 2:
        return 0.0
    total = 0.0
    for a, b in zip(plan.items, plan.items[1:]):
        d = _item_distance_km(a, b)
        if d is None:
            return None
        total += d
    return total


class PlanValidator:
    """Validates plans against a :class:`HardConstraints` specification.

    Parameters
    ----------
    hard:
        The hard constraints to enforce.
    credits_are_budget:
        When True (trip domain), ``min_credits`` is interpreted as an
        *upper* bound on total visit time; when False (course domain) it
        is a lower bound on total credits.
    """

    def __init__(self, hard: HardConstraints, credits_are_budget: bool = False) -> None:
        self.hard = hard
        self.credits_are_budget = credits_are_budget

    def validate(self, plan: Plan) -> ValidationReport:
        """Run every hard-constraint check and collect violations."""
        violations: List[Violation] = []
        self._check_credits(plan, violations)
        self._check_split(plan, violations)
        self._check_gaps(plan, violations)
        self._check_categories(plan, violations)
        self._check_distance(plan, violations)
        self._check_theme_adjacency(plan, violations)
        return ValidationReport(
            plan_length=len(plan), violations=tuple(violations)
        )

    def is_valid(self, plan: Plan) -> bool:
        """Shorthand for ``validate(plan).is_valid``."""
        return self.validate(plan).is_valid

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------

    def _check_credits(self, plan: Plan, out: List[Violation]) -> None:
        total = plan.total_credits
        if self.credits_are_budget:
            if total > self.hard.min_credits + 1e-9:
                out.append(
                    Violation(
                        "time_budget",
                        f"total visit time {total:g} exceeds the budget "
                        f"{self.hard.min_credits:g}",
                    )
                )
        elif total < self.hard.min_credits - 1e-9:
            out.append(
                Violation(
                    "credits",
                    f"total credits {total:g} below the required "
                    f"{self.hard.min_credits:g}",
                )
            )

    def _check_split(self, plan: Plan, out: List[Violation]) -> None:
        required_len = self.hard.plan_length
        if len(plan) != required_len:
            out.append(
                Violation(
                    "length",
                    f"plan has {len(plan)} items; the split requires "
                    f"{required_len}",
                )
            )
        # Case-I relaxation: extra primaries may serve as secondaries, so
        # only a primary *shortfall* is a violation.
        if plan.num_primary < self.hard.num_primary:
            out.append(
                Violation(
                    "primary_count",
                    f"plan has {plan.num_primary} primary items; "
                    f"{self.hard.num_primary} required",
                )
            )

    def _check_gaps(self, plan: Plan, out: List[Violation]) -> None:
        positions = plan.positions()
        for item in plan.items:
            if item.prerequisites.is_empty:
                continue
            pos = positions[item.item_id]
            if not item.prerequisites.satisfied_by(
                positions, pos, self.hard.gap
            ):
                out.append(
                    Violation(
                        "prerequisite_gap",
                        f"{item.item_id} requires "
                        f"{item.prerequisites.describe()} at least "
                        f"{self.hard.gap} positions earlier",
                    )
                )

    def _check_categories(self, plan: Plan, out: List[Violation]) -> None:
        requirements = self.hard.category_credit_map
        if not requirements:
            return
        earned = plan.credits_by_category()
        for category, minimum in sorted(requirements.items()):
            got = earned.get(category, 0.0)
            if got < minimum - 1e-9:
                out.append(
                    Violation(
                        "category_credits",
                        f"category {category!r}: {got:g} credits earned, "
                        f"{minimum:g} required",
                    )
                )

    def _check_distance(self, plan: Plan, out: List[Violation]) -> None:
        if self.hard.max_distance is None:
            return
        total = plan_travel_distance_km(plan)
        if total is None:
            out.append(
                Violation(
                    "distance_data",
                    "distance threshold set but items lack coordinates",
                )
            )
        elif total > self.hard.max_distance + 1e-9:
            out.append(
                Violation(
                    "distance",
                    f"total travel distance {total:.2f} km exceeds the "
                    f"threshold {self.hard.max_distance:g} km",
                )
            )

    def _check_theme_adjacency(self, plan: Plan, out: List[Violation]) -> None:
        if not self.hard.theme_adjacency_gap:
            return
        for a, b in zip(plan.items, plan.items[1:]):
            shared = a.topics & b.topics
            if shared:
                out.append(
                    Violation(
                        "theme_adjacency",
                        f"consecutive items {a.item_id} and {b.item_id} "
                        f"share theme(s) {sorted(shared)}",
                    )
                )
                return  # one violation is enough to fail the plan
