"""Hard and soft constraint specifications for TPP.

Section II-A of the paper defines

* hard constraints ``P_hard = <#cr, #primary, #secondary, gap>``, and
* soft constraints ``P_soft = <T_ideal, IT>``

where ``T_ideal`` is the user's desired topic/theme set and ``IT`` is the
*interleaving template*: a set of ideal permutations of primary/secondary
labels that the recommended sequence should resemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from .exceptions import ConstraintError
from .items import ItemType


# Type alias: a template permutation is a tuple of item types such as
# (PRIMARY, SECONDARY, SECONDARY, PRIMARY, ...).
TemplatePermutation = Tuple[ItemType, ...]


def _parse_label(label: object) -> ItemType:
    """Coerce a template entry (ItemType, 'primary'/'secondary', 'P'/'S')."""
    if isinstance(label, ItemType):
        return label
    if isinstance(label, str):
        text = label.strip().lower()
        if text in ("primary", "p", "core"):
            return ItemType.PRIMARY
        if text in ("secondary", "s", "elective"):
            return ItemType.SECONDARY
    raise ConstraintError(f"unrecognized template label: {label!r}")


@dataclass(frozen=True)
class InterleavingTemplate:
    """The soft-constraint template ``IT``: a set of ideal permutations.

    Every permutation must have the same length (``#primary + #secondary``
    in the paper); each position is an :class:`ItemType` label.
    """

    permutations: Tuple[TemplatePermutation, ...]

    def __post_init__(self) -> None:
        if not self.permutations:
            raise ConstraintError("template must contain >= 1 permutation")
        lengths = {len(p) for p in self.permutations}
        if len(lengths) != 1:
            raise ConstraintError(
                f"all template permutations must share one length, "
                f"got lengths {sorted(lengths)}"
            )

    @classmethod
    def from_labels(
        cls, permutations: Iterable[Iterable[object]]
    ) -> "InterleavingTemplate":
        """Build a template from e.g. ``[["P","S","P"], ["P","P","S"]]``."""
        parsed = tuple(
            tuple(_parse_label(label) for label in perm)
            for perm in permutations
        )
        return cls(parsed)

    @property
    def length(self) -> int:
        """Length of each permutation in the template."""
        return len(self.permutations[0])

    def __len__(self) -> int:
        return len(self.permutations)

    def __iter__(self):
        return iter(self.permutations)

    def count_of(self, item_type: ItemType) -> int:
        """Number of ``item_type`` slots in the first permutation.

        Well-formed templates agree across permutations; this is used for
        consistency checks against the hard-constraint split.
        """
        return sum(1 for label in self.permutations[0] if label is item_type)

    def describe(self) -> str:
        """Render like ``[P,P,S,...] | [P,S,S,...]`` for logs and tables."""
        def short(perm: TemplatePermutation) -> str:
            return "[" + ",".join(
                "P" if t is ItemType.PRIMARY else "S" for t in perm
            ) + "]"

        return " | ".join(short(p) for p in self.permutations)


@dataclass(frozen=True)
class HardConstraints:
    """``P_hard = <#cr, #primary, #secondary, gap>`` plus domain extras.

    Attributes
    ----------
    min_credits:
        ``#cr`` — minimum total credit hours (courses) or the total time
        budget in hours (trips; acts as an upper bound on cumulative visit
        time in the trip domain, see :mod:`repro.core.env`).
    num_primary / num_secondary:
        The required primary/secondary split.
    gap:
        Lower bound on the positional distance between an item and its
        antecedents (e.g. ``gap=3`` = "at least one semester earlier" when
        3 courses are taken per semester).
    category_credits:
        Optional per-category minimum credits (Univ-2's six sub-discipline
        requirement).  Keys are category names as on :attr:`Item.category`.
    max_distance:
        Trip-only: maximum total inter-POI travel distance (km); ``None``
        disables the check.
    theme_adjacency_gap:
        Trip-only: when True, two consecutive POIs may not share a theme
        (the paper instantiates the trip ``gap`` this way).
    """

    min_credits: float
    num_primary: int
    num_secondary: int
    gap: int
    category_credits: Tuple[Tuple[str, float], ...] = ()
    max_distance: Optional[float] = None
    theme_adjacency_gap: bool = False

    def __post_init__(self) -> None:
        if self.min_credits <= 0:
            raise ConstraintError("min_credits must be positive")
        if self.num_primary < 0 or self.num_secondary < 0:
            raise ConstraintError("primary/secondary counts must be >= 0")
        if self.num_primary + self.num_secondary == 0:
            raise ConstraintError("plan must contain at least one item")
        if self.gap < 0:
            raise ConstraintError("gap must be >= 0")
        if self.max_distance is not None and self.max_distance <= 0:
            raise ConstraintError("max_distance must be positive when set")

    @property
    def plan_length(self) -> int:
        """Total number of items, ``#primary + #secondary``."""
        return self.num_primary + self.num_secondary

    @property
    def category_credit_map(self) -> Dict[str, float]:
        """Per-category minimum credits as a dict (possibly empty)."""
        return dict(self.category_credits)

    @classmethod
    def for_courses(
        cls,
        min_credits: float,
        num_primary: int,
        num_secondary: int,
        gap: int,
        category_credits: Optional[Mapping[str, float]] = None,
    ) -> "HardConstraints":
        """Course-planning constructor (no geo/time extras)."""
        cat = tuple(sorted((category_credits or {}).items()))
        return cls(
            min_credits=min_credits,
            num_primary=num_primary,
            num_secondary=num_secondary,
            gap=gap,
            category_credits=cat,
        )

    @classmethod
    def for_trips(
        cls,
        time_budget: float,
        num_primary: int,
        num_secondary: int,
        gap: int = 1,
        max_distance: Optional[float] = None,
        theme_adjacency_gap: bool = True,
    ) -> "HardConstraints":
        """Trip-planning constructor.

        ``time_budget`` plays the role of ``#cr``; ``gap=1`` means
        antecedent POIs merely need to come earlier in the itinerary.
        """
        return cls(
            min_credits=time_budget,
            num_primary=num_primary,
            num_secondary=num_secondary,
            gap=gap,
            max_distance=max_distance,
            theme_adjacency_gap=theme_adjacency_gap,
        )


@dataclass(frozen=True)
class SoftConstraints:
    """``P_soft = <T_ideal, IT>``.

    Attributes
    ----------
    ideal_topics:
        The topics/themes the user wishes the plan to cover (``T_ideal``).
    template:
        The :class:`InterleavingTemplate` provided by the domain expert.
    """

    ideal_topics: FrozenSet[str]
    template: InterleavingTemplate

    def __post_init__(self) -> None:
        object.__setattr__(self, "ideal_topics", frozenset(self.ideal_topics))
        if not self.ideal_topics:
            raise ConstraintError("ideal_topics must be non-empty")

    def ideal_vector(self, vocabulary: Sequence[str]) -> Tuple[int, ...]:
        """Boolean ``T_ideal`` vector over a topic vocabulary."""
        return tuple(1 if t in self.ideal_topics else 0 for t in vocabulary)


@dataclass(frozen=True)
class TaskSpec:
    """A full TPP instance: hard + soft constraints bundled together.

    This is the single object end users hand to planners; planners never
    need the two halves separately.
    """

    hard: HardConstraints
    soft: SoftConstraints
    name: str = "task"

    def __post_init__(self) -> None:
        template = self.soft.template
        if template.length != self.hard.plan_length:
            raise ConstraintError(
                f"template length {template.length} != plan length "
                f"{self.hard.plan_length} implied by the primary/secondary "
                f"split"
            )
        for perm in template:
            n_primary = sum(1 for t in perm if t is ItemType.PRIMARY)
            if n_primary != self.hard.num_primary:
                raise ConstraintError(
                    f"template permutation {perm} has {n_primary} primary "
                    f"slots but the hard constraints require "
                    f"{self.hard.num_primary}"
                )
