"""Interleaving similarity (Equations 6 and 7 of the paper).

Given the prefix of a plan of length ``k`` and an ideal permutation ``I``
from the interleaving template ``IT``, the paper compares the two
sequences position-wise (a Levenshtein-distance-inspired notion on the
primary/secondary label strings), producing a binary *match vector*
``c_I`` of length ``k``.  The per-template similarity is then

    Sim(s, I)^k = zeta * sum(c_I) / k                          (Eq. 6)

where ``zeta`` is the length of the longest run of consecutive matches
(``zeta in [0, k]``), and the aggregate over the whole template is

    AvgSim(s, IT)^k = mean_I Sim(s, I)^k                       (Eq. 7)

The paper also evaluates a *minimum* aggregation (take the min over
templates instead of the mean); both are provided here, plus the max
aggregation used for final plan scoring (Section IV-A "the highest value
is selected as the final score").

Worked example from the paper (Section III-B-4): the chosen prefix is
``[primary, secondary, primary, primary]`` and the template of Example 1
yields match vectors ``[1,0,0,1]``, ``[1,1,0,0]``, ``[1,1,0,1]``, giving
``Sim = [0.5, 1, 1.5]`` and ``AvgSim = 1``.  The tests pin this example.
"""

from __future__ import annotations

import enum
import weakref
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .constraints import InterleavingTemplate, TemplatePermutation
from .exceptions import ConstraintError
from .items import ItemType


class SimilarityMode(enum.Enum):
    """How per-template similarities are aggregated over ``IT``."""

    AVERAGE = "average"
    MINIMUM = "minimum"
    MAXIMUM = "maximum"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def match_vector(
    sequence: Sequence[ItemType], permutation: TemplatePermutation
) -> Tuple[int, ...]:
    """Position-wise binary match vector ``c_I`` between a plan prefix
    and the same-length prefix of a template permutation.

    ``sequence`` may be shorter than the permutation (a partial plan) but
    never longer.
    """
    k = len(sequence)
    if k > len(permutation):
        raise ConstraintError(
            f"plan prefix of length {k} exceeds template length "
            f"{len(permutation)}"
        )
    return tuple(
        1 if sequence[j] is permutation[j] else 0 for j in range(k)
    )


def longest_run(bits: Sequence[int]) -> int:
    """Length of the longest run of consecutive 1s (the weight ``zeta``)."""
    best = 0
    current = 0
    for b in bits:
        if b:
            current += 1
            if current > best:
                best = current
        else:
            current = 0
    return best


def template_similarity(
    sequence: Sequence[ItemType], permutation: TemplatePermutation
) -> float:
    """``Sim(s, I)^k`` of Equation 6 for one template permutation.

    Returns 0.0 for an empty prefix (no evidence either way).
    """
    k = len(sequence)
    if k == 0:
        return 0.0
    c = match_vector(sequence, permutation)
    zeta = longest_run(c)
    return zeta * sum(c) / k


def aggregate_similarity(
    sequence: Sequence[ItemType],
    template: InterleavingTemplate,
    mode: SimilarityMode = SimilarityMode.AVERAGE,
) -> float:
    """Aggregate Eq. 6 over all permutations in ``IT`` (Eq. 7 for AVERAGE).

    ``MINIMUM`` is the alternative studied in the paper's robustness
    experiments; ``MAXIMUM`` is the scoring aggregation of Section IV-A.

    Past the template horizon (``len(sequence) > template.length``,
    possible in trip mode before the time budget bites) template
    adherence is moot and the similarity is defined as 0.0 — the same
    convention as :meth:`IncrementalSimilarity.value` and
    ``RewardFunction.interleaving_similarity``, so the scalar
    diagnostics, the incremental tracker, and the reward path can never
    disagree.  (:func:`template_similarity` against a *single*
    permutation still raises for an over-long prefix: with no template
    horizon in play, that call is genuinely malformed.)
    """
    if len(sequence) > template.length:
        return 0.0
    sims = [template_similarity(sequence, perm) for perm in template]
    if mode is SimilarityMode.AVERAGE:
        return sum(sims) / len(sims)
    if mode is SimilarityMode.MINIMUM:
        return min(sims)
    if mode is SimilarityMode.MAXIMUM:
        return max(sims)
    raise ConstraintError(f"unknown similarity mode: {mode!r}")


def avg_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """``AvgSim`` (Eq. 7): mean of per-permutation similarities."""
    return aggregate_similarity(sequence, template, SimilarityMode.AVERAGE)


def min_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """``MinSim``: the minimum-aggregation variant of Eq. 7."""
    return aggregate_similarity(sequence, template, SimilarityMode.MINIMUM)


def max_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """Best-template similarity, used as the final plan score."""
    return aggregate_similarity(sequence, template, SimilarityMode.MAXIMUM)


_TEMPLATE_CODE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def template_codes(template: InterleavingTemplate) -> np.ndarray:
    """The template as an ``(|IT|, length)`` int8 matrix (1=P, 0=S).

    Cached per template object so every :class:`IncrementalSimilarity`
    over the same template shares one immutable matrix.
    """
    codes = _TEMPLATE_CODE_CACHE.get(template)
    if codes is None:
        codes = np.array(
            [
                [1 if label is ItemType.PRIMARY else 0 for label in perm]
                for perm in template
            ],
            dtype=np.int8,
        )
        codes.setflags(write=False)
        _TEMPLATE_CODE_CACHE[template] = codes
    return codes


class IncrementalSimilarity:
    """O(|IT|) incremental form of :func:`aggregate_similarity`.

    Instead of rematching the whole plan prefix against every template
    permutation on each reward evaluation (O(k * |IT|) per candidate),
    this carries three per-permutation integers — the match count
    ``sum(c_I)``, the longest run ``zeta``, and the run ending at the
    current position — and updates them in O(|IT|) per appended item.

    The batched reward exploits that all candidates extend the same
    prefix at the same position, so only the candidate's *type* matters:
    :meth:`peek` evaluates Eq. 6/7 for a hypothetical append of one type
    without mutating state, and there are only two types.

    Invariants (maintained by :meth:`append` / checked by tests):

    * ``value()`` equals ``aggregate_similarity(prefix, template, mode)``
      for the sequence of types appended so far,
    * ``peek(t)`` equals ``value()`` of a copy after ``append(t)``,
    * past the template horizon (``position > length``) both are 0.0,
      matching ``RewardFunction.interleaving_similarity``.
    """

    def __init__(
        self,
        template: InterleavingTemplate,
        mode: SimilarityMode = SimilarityMode.AVERAGE,
    ) -> None:
        self.template = template
        self.mode = mode
        self._codes = template_codes(template)
        self._length = self._codes.shape[1]
        n_perms = self._codes.shape[0]
        self._position = 0
        self._matches = np.zeros(n_perms, dtype=np.int64)
        self._best_run = np.zeros(n_perms, dtype=np.int64)
        self._current_run = np.zeros(n_perms, dtype=np.int64)

    @property
    def position(self) -> int:
        """Number of items appended so far (the prefix length ``k``)."""
        return self._position

    def reset(self) -> None:
        """Clear all state for a fresh plan."""
        self._position = 0
        self._matches[:] = 0
        self._best_run[:] = 0
        self._current_run[:] = 0

    def append(self, item_type: ItemType) -> None:
        """Advance the state by one appended item of ``item_type``."""
        k = self._position
        self._position = k + 1
        if k >= self._length:
            # Beyond the template horizon template adherence is moot;
            # only the position counter advances.
            return
        match = self._codes[:, k] == (
            1 if item_type is ItemType.PRIMARY else 0
        )
        self._matches += match
        self._current_run = np.where(match, self._current_run + 1, 0)
        np.maximum(self._best_run, self._current_run, out=self._best_run)

    def _aggregate(self, sims: np.ndarray) -> float:
        # The sequential-sum mean mirrors aggregate_similarity() exactly
        # (bit-for-bit), which the batch-vs-scalar equality tests pin.
        if self.mode is SimilarityMode.AVERAGE:
            total = 0.0
            for value in sims.tolist():
                total += value
            return total / sims.shape[0]
        if self.mode is SimilarityMode.MINIMUM:
            return float(sims.min())
        if self.mode is SimilarityMode.MAXIMUM:
            return float(sims.max())
        raise ConstraintError(f"unknown similarity mode: {self.mode!r}")

    def value(self) -> float:
        """Aggregated Eq. 6/7 similarity of the current prefix."""
        k = self._position
        if k == 0 or k > self._length:
            return 0.0
        return self._aggregate(self._best_run * self._matches / k)

    def peek(self, item_type: ItemType) -> float:
        """Aggregated similarity if one ``item_type`` item were appended.

        Does not mutate state; O(|IT|).
        """
        k = self._position + 1
        if k > self._length:
            return 0.0
        match = self._codes[:, self._position] == (
            1 if item_type is ItemType.PRIMARY else 0
        )
        matches = self._matches + match
        current = np.where(match, self._current_run + 1, 0)
        best = np.maximum(self._best_run, current)
        return self._aggregate(best * matches / k)

    def peek_types(self) -> Tuple[float, float]:
        """``(peek(PRIMARY), peek(SECONDARY))`` — all a batch step needs."""
        return self.peek(ItemType.PRIMARY), self.peek(ItemType.SECONDARY)


def similarity_profile(
    sequence: Sequence[ItemType],
    template: InterleavingTemplate,
    mode: SimilarityMode = SimilarityMode.AVERAGE,
) -> List[float]:
    """Aggregated similarity after each prefix length 1..len(sequence).

    Useful for diagnostics: shows how template adherence evolves while a
    plan is being built.  Entries past the template horizon are 0.0,
    matching an :class:`IncrementalSimilarity` replay of the same
    sequence position for position.
    """
    return [
        aggregate_similarity(sequence[:k], template, mode)
        for k in range(1, len(sequence) + 1)
    ]


def type_sequence(items: Iterable) -> Tuple[ItemType, ...]:
    """Project a sequence of :class:`~repro.core.items.Item` (or anything
    exposing ``item_type``) onto its primary/secondary label string."""
    return tuple(item.item_type for item in items)
