"""Interleaving similarity (Equations 6 and 7 of the paper).

Given the prefix of a plan of length ``k`` and an ideal permutation ``I``
from the interleaving template ``IT``, the paper compares the two
sequences position-wise (a Levenshtein-distance-inspired notion on the
primary/secondary label strings), producing a binary *match vector*
``c_I`` of length ``k``.  The per-template similarity is then

    Sim(s, I)^k = zeta * sum(c_I) / k                          (Eq. 6)

where ``zeta`` is the length of the longest run of consecutive matches
(``zeta in [0, k]``), and the aggregate over the whole template is

    AvgSim(s, IT)^k = mean_I Sim(s, I)^k                       (Eq. 7)

The paper also evaluates a *minimum* aggregation (take the min over
templates instead of the mean); both are provided here, plus the max
aggregation used for final plan scoring (Section IV-A "the highest value
is selected as the final score").

Worked example from the paper (Section III-B-4): the chosen prefix is
``[primary, secondary, primary, primary]`` and the template of Example 1
yields match vectors ``[1,0,0,1]``, ``[1,1,0,0]``, ``[1,1,0,1]``, giving
``Sim = [0.5, 1, 1.5]`` and ``AvgSim = 1``.  The tests pin this example.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence, Tuple

from .constraints import InterleavingTemplate, TemplatePermutation
from .exceptions import ConstraintError
from .items import ItemType


class SimilarityMode(enum.Enum):
    """How per-template similarities are aggregated over ``IT``."""

    AVERAGE = "average"
    MINIMUM = "minimum"
    MAXIMUM = "maximum"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def match_vector(
    sequence: Sequence[ItemType], permutation: TemplatePermutation
) -> Tuple[int, ...]:
    """Position-wise binary match vector ``c_I`` between a plan prefix
    and the same-length prefix of a template permutation.

    ``sequence`` may be shorter than the permutation (a partial plan) but
    never longer.
    """
    k = len(sequence)
    if k > len(permutation):
        raise ConstraintError(
            f"plan prefix of length {k} exceeds template length "
            f"{len(permutation)}"
        )
    return tuple(
        1 if sequence[j] is permutation[j] else 0 for j in range(k)
    )


def longest_run(bits: Sequence[int]) -> int:
    """Length of the longest run of consecutive 1s (the weight ``zeta``)."""
    best = 0
    current = 0
    for b in bits:
        if b:
            current += 1
            if current > best:
                best = current
        else:
            current = 0
    return best


def template_similarity(
    sequence: Sequence[ItemType], permutation: TemplatePermutation
) -> float:
    """``Sim(s, I)^k`` of Equation 6 for one template permutation.

    Returns 0.0 for an empty prefix (no evidence either way).
    """
    k = len(sequence)
    if k == 0:
        return 0.0
    c = match_vector(sequence, permutation)
    zeta = longest_run(c)
    return zeta * sum(c) / k


def aggregate_similarity(
    sequence: Sequence[ItemType],
    template: InterleavingTemplate,
    mode: SimilarityMode = SimilarityMode.AVERAGE,
) -> float:
    """Aggregate Eq. 6 over all permutations in ``IT`` (Eq. 7 for AVERAGE).

    ``MINIMUM`` is the alternative studied in the paper's robustness
    experiments; ``MAXIMUM`` is the scoring aggregation of Section IV-A.
    """
    sims = [template_similarity(sequence, perm) for perm in template]
    if mode is SimilarityMode.AVERAGE:
        return sum(sims) / len(sims)
    if mode is SimilarityMode.MINIMUM:
        return min(sims)
    if mode is SimilarityMode.MAXIMUM:
        return max(sims)
    raise ConstraintError(f"unknown similarity mode: {mode!r}")


def avg_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """``AvgSim`` (Eq. 7): mean of per-permutation similarities."""
    return aggregate_similarity(sequence, template, SimilarityMode.AVERAGE)


def min_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """``MinSim``: the minimum-aggregation variant of Eq. 7."""
    return aggregate_similarity(sequence, template, SimilarityMode.MINIMUM)


def max_similarity(
    sequence: Sequence[ItemType], template: InterleavingTemplate
) -> float:
    """Best-template similarity, used as the final plan score."""
    return aggregate_similarity(sequence, template, SimilarityMode.MAXIMUM)


def similarity_profile(
    sequence: Sequence[ItemType],
    template: InterleavingTemplate,
    mode: SimilarityMode = SimilarityMode.AVERAGE,
) -> List[float]:
    """Aggregated similarity after each prefix length 1..len(sequence).

    Useful for diagnostics: shows how template adherence evolves while a
    plan is being built.
    """
    return [
        aggregate_similarity(sequence[:k], template, mode)
        for k in range(1, len(sequence) + 1)
    ]


def type_sequence(items: Iterable) -> Tuple[ItemType, ...]:
    """Project a sequence of :class:`~repro.core.items.Item` (or anything
    exposing ``item_type``) onto its primary/secondary label string."""
    return tuple(item.item_type for item in items)
