"""Fluent construction of TPP task specifications.

``TaskSpec`` + ``HardConstraints`` + ``SoftConstraints`` are precise but
verbose for interactive use; :class:`TaskBuilder` provides the
chainable front door the examples and downstream users reach for::

    task = (
        TaskBuilder("M.S. DS-CT")
        .credits(30)
        .primaries(5)
        .secondaries(5)
        .gap(3)
        .ideal_topics(["clustering", "classification"])
        .template(["P", "P", "S", "P", "S", "S", "P", "S", "P", "S"])
        .build()
    )

Every setter validates eagerly where it can; :meth:`build` performs the
cross-field checks by delegating to the underlying dataclasses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from .exceptions import ConstraintError


class TaskBuilder:
    """Chainable builder for :class:`~repro.core.constraints.TaskSpec`."""

    def __init__(self, name: str = "task") -> None:
        self._name = name
        self._credits: Optional[float] = None
        self._primaries: Optional[int] = None
        self._secondaries: Optional[int] = None
        self._gap: int = 1
        self._ideal: Optional[frozenset] = None
        self._templates: List[Sequence[str]] = []
        self._categories: dict = {}
        self._max_distance: Optional[float] = None
        self._theme_adjacency: bool = False
        self._trip_mode: bool = False

    # ------------------------------------------------------------------
    # Hard-constraint setters
    # ------------------------------------------------------------------

    def credits(self, amount: float) -> "TaskBuilder":
        """Minimum credits (courses) / time budget in hours (trips)."""
        if amount <= 0:
            raise ConstraintError("credits must be positive")
        self._credits = float(amount)
        return self

    def time_budget(self, hours: float) -> "TaskBuilder":
        """Trip alias of :meth:`credits`; switches to trip semantics."""
        self._trip_mode = True
        return self.credits(hours)

    def primaries(self, count: int) -> "TaskBuilder":
        """Required number of primary (core / must-see) items."""
        if count < 0:
            raise ConstraintError("primaries must be >= 0")
        self._primaries = count
        return self

    def secondaries(self, count: int) -> "TaskBuilder":
        """Required number of secondary (elective / optional) items."""
        if count < 0:
            raise ConstraintError("secondaries must be >= 0")
        self._secondaries = count
        return self

    def gap(self, positions: int) -> "TaskBuilder":
        """Minimum antecedent distance (positions)."""
        if positions < 0:
            raise ConstraintError("gap must be >= 0")
        self._gap = positions
        return self

    def category_minimum(
        self, category: str, credits: float
    ) -> "TaskBuilder":
        """Add a per-category credit minimum (Univ-2 style)."""
        if credits <= 0:
            raise ConstraintError("category minimum must be positive")
        self._categories[category] = float(credits)
        return self

    def max_distance(self, km: float) -> "TaskBuilder":
        """Trip-only: total travel distance threshold."""
        if km <= 0:
            raise ConstraintError("max_distance must be positive")
        self._trip_mode = True
        self._max_distance = float(km)
        return self

    def no_adjacent_same_theme(self, enabled: bool = True) -> "TaskBuilder":
        """Trip-only: forbid consecutive same-theme POIs."""
        self._trip_mode = True
        self._theme_adjacency = enabled
        return self

    # ------------------------------------------------------------------
    # Soft-constraint setters
    # ------------------------------------------------------------------

    def ideal_topics(self, topics: Iterable[str]) -> "TaskBuilder":
        """The user's desired topic/theme set (T_ideal)."""
        self._ideal = frozenset(topics)
        return self

    def template(self, labels: Sequence[str]) -> "TaskBuilder":
        """Add one ideal permutation ("P"/"S" labels); call repeatedly."""
        self._templates.append(tuple(labels))
        return self

    def templates(
        self, permutations: Iterable[Sequence[str]]
    ) -> "TaskBuilder":
        """Add several permutations at once."""
        for labels in permutations:
            self.template(labels)
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self) -> TaskSpec:
        """Assemble and cross-validate the TaskSpec."""
        missing = [
            field
            for field, value in (
                ("credits/time_budget", self._credits),
                ("primaries", self._primaries),
                ("secondaries", self._secondaries),
                ("ideal_topics", self._ideal),
            )
            if value is None
        ]
        if missing:
            raise ConstraintError(
                f"TaskBuilder is missing: {', '.join(missing)}"
            )
        templates = self._templates
        if not templates:
            # A sensible default: strict alternation padded with the
            # leftover type.
            p, s = self._primaries, self._secondaries
            labels: List[str] = []
            while p or s:
                if p:
                    labels.append("P")
                    p -= 1
                if s:
                    labels.append("S")
                    s -= 1
            templates = [tuple(labels)]

        if self._trip_mode:
            hard = HardConstraints.for_trips(
                time_budget=self._credits,
                num_primary=self._primaries,
                num_secondary=self._secondaries,
                gap=self._gap,
                max_distance=self._max_distance,
                theme_adjacency_gap=self._theme_adjacency,
            )
        else:
            hard = HardConstraints.for_courses(
                min_credits=self._credits,
                num_primary=self._primaries,
                num_secondary=self._secondaries,
                gap=self._gap,
                category_credits=self._categories or None,
            )
        soft = SoftConstraints(
            ideal_topics=self._ideal,
            template=InterleavingTemplate.from_labels(templates),
        )
        return TaskSpec(hard=hard, soft=soft, name=self._name)
